//! Offline stand-in for `criterion`, vendored so `cargo bench` works
//! with no registry access. It implements the API subset the workspace's
//! benches use — `criterion_group!`/`criterion_main!`, `Criterion`
//! builder methods, benchmark groups, `BenchmarkId` and `Bencher::iter`
//! — over a plain wall-clock sampler: warm up, pick an iteration count
//! that fills one sample, time `sample_size` samples, report
//! min/median/max nanoseconds per iteration on stdout.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
// A wall-clock sampler cannot avoid the wall clock: the workspace-wide
// determinism ban on `Instant` (clippy.toml) does not apply to the bench
// scaffolding, which only observes the simulation from outside.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up period before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total sampling budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies a substring filter from the command line (`cargo bench foo`).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(id.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    fn run_one(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            sample_time: self.measurement_time.div_f64(self.sample_size as f64),
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            return;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!(
            "{id:<40} time: [{} {} {}]",
            format_ns(samples[0]),
            format_ns(median),
            format_ns(*samples.last().expect("non-empty")),
        );
    }
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for this group (accepted for API parity;
    /// the stub keeps its own fixed sampling).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time for this group (accepted for API
    /// parity; the stub keeps its own fixed sampling).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(full, f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(full, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, usually derived from the input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Times the closure handed to it and records per-iteration samples.
pub struct Bencher {
    warm_up_time: Duration,
    sample_time: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Benchmarks the routine: warm up, calibrate an iteration count
    /// that fills one sample window, then record the samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up, and a per-call estimate from its last iteration.
        let warm_up_start = Instant::now();
        let one_call = loop {
            let t0 = Instant::now();
            black_box(routine());
            let elapsed = t0.elapsed().max(Duration::from_nanos(1));
            if warm_up_start.elapsed() >= self.warm_up_time {
                break elapsed;
            }
        };
        let iters = (self.sample_time.as_nanos() / one_call.as_nanos()).clamp(1, u32::MAX as u128);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut ran = 0u32;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran >= 5);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(500).id, "500");
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
    }
}
