//! Offline stand-in for `serde`, vendored so the workspace builds with
//! no registry access. It provides the two marker traits and re-exports
//! the no-op derive macros; nothing in this workspace serializes at
//! runtime (there is no `serde_json`-style consumer), the derives exist
//! so type definitions keep the upstream-compatible annotations.
//!
//! Swapping the real `serde` back in is a one-line change in the
//! workspace `Cargo.toml`; no source file needs to change.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

/// Marker for types declaring themselves serializable.
pub trait Serialize {}

/// Marker for types declaring themselves deserializable.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
