//! The case runner's support types: configuration, failure reporting and
//! the deterministic per-test RNG.

use std::fmt;

/// How many cases `proptest!` runs per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion (carried out of the case body by the
/// `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic case generator: a SplitMix64 stream keyed by the
/// property's fully qualified name and the case index, so every run of
/// every build generates the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for one case of one property.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng { state: hash ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) };
        // One warm-up step decorrelates nearby case indices.
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot draw below zero");
        let mask = u64::MAX >> (bound - 1).leading_zeros().min(63);
        loop {
            let candidate = self.next_u64() & mask;
            if candidate < bound {
                return candidate;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_streams_are_reproducible() {
        let mut a = TestRng::for_case("some::test", 3);
        let mut b = TestRng::for_case("some::test", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_names_and_cases_diverge() {
        let mut a = TestRng::for_case("some::test", 0);
        let mut b = TestRng::for_case("some::test", 1);
        let mut c = TestRng::for_case("other::test", 0);
        let first = a.next_u64();
        assert_ne!(first, b.next_u64());
        assert_ne!(first, c.next_u64());
    }

    #[test]
    fn below_respects_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }
}
