//! Value-generation strategies: the `Strategy` trait and the
//! implementations the workspace's properties draw from.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// Generates values of an associated type from the test RNG.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// `generate` produces a finished value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let x = self.start + rng.f64() * (self.end - self.start);
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

/// A strategy for a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.f64() - 0.5) * 2e9
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy computed by a closure; see [`from_fn`].
pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
    f: F,
    _marker: PhantomData<fn() -> T>,
}

/// Wraps a generation closure as a strategy (used by `prop_compose!`).
pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<T, F> {
    FnStrategy { f, _marker: PhantomData }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Boxes a strategy for storage in a [`Union`] (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// A uniform choice among boxed strategies with a common value type.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union over the given options.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String patterns of the form `[class]{m,n}`: a single character class
/// (literals and `a-z` ranges) with a bounded repetition count. This is
/// the only regex shape the workspace's properties use.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern `{self}`"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` is a range unless `-` opens or closes the class.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            alphabet.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match reps.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy::ranges", 0);
        for _ in 0..1000 {
            let x = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&x));
            let y = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&y));
            let z = (-1.5f64..2.5).generate(&mut rng);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn string_patterns_match_class_and_length() {
        let mut rng = TestRng::for_case("strategy::strings", 0);
        let pattern = "[a-c X-]{2,5}";
        for _ in 0..200 {
            let s = pattern.generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc X-".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::for_case("strategy::union", 0);
        let union = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[union.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }
}
