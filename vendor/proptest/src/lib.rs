//! Offline stand-in for `proptest`, vendored so the workspace tests run
//! with no registry access. It implements the API subset the workspace
//! uses — `proptest!`, `prop_compose!`, `prop_oneof!`, the `prop_assert*`
//! macros, range/tuple/string strategies, `any`, `Just`,
//! `collection::vec`, `option::of` and `sample::select` — over a
//! deterministic per-test case generator (no shrinking, no persistence).
//!
//! Each test draws its cases from a stream seeded by the test's module
//! path and name, so failures reproduce exactly across runs and
//! machines. Known regressions are pinned as explicit `#[test]` cases in
//! the test files themselves rather than replayed from
//! `.proptest-regressions` seeds.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy wrapping another's values in `Option`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` four times out of five, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Strategies sampling from explicit value sets.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy choosing uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses uniformly among the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// The common imports: strategies, config and the test macros.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Runs each test body over deterministically generated inputs.
///
/// Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]` and any number of
/// `#[test] fn name(binding in strategy, ...) { body }` items. Inputs are
/// debug-printed into the panic message when a case fails.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $($(#[$meta:meta])* fn $name:ident($($field:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $field = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let mut inputs = ::std::string::String::new();
                    $(
                        inputs.push_str(concat!(stringify!($field), " = "));
                        inputs.push_str(&::std::format!("{:?}, ", &$field));
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest `{}` case {} failed: {}\n  inputs: {}",
                            stringify!($name),
                            case,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the enclosing proptest case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing proptest case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the enclosing proptest case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Defines a function returning a composite strategy.
///
/// Supports the single-argument-list form used in this workspace:
/// `fn name()(binding in strategy, ...) -> Type { body }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)($($field:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |rng| {
                $(let $field = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Chooses uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
