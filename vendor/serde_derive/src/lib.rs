//! No-op `Serialize`/`Deserialize` derives for the vendored `serde`
//! stand-in. They accept (and ignore) `#[serde(...)]` helper attributes
//! and expand to nothing: the workspace keeps its derive annotations,
//! and nothing downstream requires the trait bounds to hold.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
