//! Property-based tests for the simulation kernel: event ordering,
//! statistics algebra and time arithmetic.

use aria_sim::{stats, EventQueue, SimDuration, SimRng, SimTime, Summary, TimeSeries};
use proptest::prelude::*;

proptest! {
    /// The event queue is a stable priority queue: output is sorted by
    /// time, and equal-time events keep insertion order.
    #[test]
    fn event_queue_is_stable_and_sorted(times in proptest::collection::vec(0u64..1000, 0..300)) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.schedule(SimTime::from_millis(t), (t, i));
        }
        let mut out = Vec::new();
        while let Some((at, (t, i))) = queue.pop() {
            prop_assert_eq!(at, SimTime::from_millis(t));
            out.push((t, i));
        }
        prop_assert_eq!(out.len(), times.len());
        // Sorted by (time, insertion index): exactly a stable sort.
        let mut expected: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        prop_assert_eq!(out, expected);
    }

    /// Summary::merge is associative with respect to the data: merging
    /// partitions equals summarizing the concatenation.
    #[test]
    fn summary_merge_equals_concatenation(
        left in proptest::collection::vec(-1e6f64..1e6, 0..100),
        right in proptest::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let mut merged: Summary = left.iter().copied().collect();
        let rhs: Summary = right.iter().copied().collect();
        merged.merge(&rhs);
        let full: Summary = left.iter().chain(right.iter()).copied().collect();
        prop_assert_eq!(merged.count(), full.count());
        prop_assert!((merged.mean() - full.mean()).abs() <= 1e-6 * (1.0 + full.mean().abs()));
        prop_assert!(
            (merged.variance() - full.variance()).abs()
                <= 1e-5 * (1.0 + full.variance().abs())
        );
        prop_assert_eq!(merged.min(), full.min());
        prop_assert_eq!(merged.max(), full.max());
    }

    /// Percentiles are order statistics: within [min, max], monotone in q,
    /// and members of the sample.
    #[test]
    fn percentile_is_an_order_statistic(
        values in proptest::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let p_lo = stats::percentile(&values, lo);
        let p_hi = stats::percentile(&values, hi);
        prop_assert!(p_lo <= p_hi);
        prop_assert!(values.contains(&p_lo));
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p_lo >= min && p_hi <= max);
    }

    /// Time arithmetic: (t + d) - d == t and saturating_since is the
    /// inverse of addition.
    #[test]
    fn time_arithmetic_round_trips(t in 0u64..1_000_000_000, d in 0u64..1_000_000) {
        let time = SimTime::from_millis(t);
        let duration = SimDuration::from_millis(d);
        let later = time + duration;
        prop_assert_eq!(later - duration, time);
        prop_assert_eq!(later.saturating_since(time), duration);
        prop_assert_eq!(time.saturating_since(later), SimDuration::ZERO);
        prop_assert_eq!(later.signed_delta(time), d as i64);
    }

    /// Duration scaling: div then mul by the same factor stays within
    /// rounding error of the original.
    #[test]
    fn duration_scaling_round_trips(ms in 1000u64..100_000_000, factor in 1.0f64..2.0) {
        let d = SimDuration::from_millis(ms);
        let there_and_back = d.div_f64(factor).mul_f64(factor);
        let error = there_and_back.as_millis().abs_diff(d.as_millis());
        prop_assert!(error <= 2, "{d} -> {there_and_back}");
    }

    /// Forked RNG streams are reproducible and chance() frequencies track
    /// their probability.
    #[test]
    fn rng_forks_reproduce(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        let mut fa = a.fork(stream);
        let mut fb = b.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    /// TimeSeries::average of identical series is the series itself, and
    /// thinning preserves the first sample.
    #[test]
    fn series_average_identity(values in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
        let mut ts = TimeSeries::new(SimDuration::from_mins(1));
        for &v in &values {
            ts.push(v);
        }
        let avg = TimeSeries::average([&ts, &ts]).unwrap();
        prop_assert_eq!(avg.values(), ts.values());
        let thinned = ts.thin(3);
        prop_assert_eq!(thinned.values()[0], values[0]);
    }
}
