//! Seeded randomness for reproducible simulation runs.

/// A deterministic random number source.
///
/// Implements xoshiro256++ (Blackman & Vigna) seeded through SplitMix64
/// behind a small domain-oriented API, so that the rest of the workspace
/// never touches raw generator state directly, and so that a run is a
/// pure function of its seed. Independent sub-streams can be split off
/// with [`SimRng::fork`] to decorrelate components (topology vs.
/// workload vs. protocol jitter) while keeping every stream reproducible.
///
/// # Example
///
/// ```
/// use aria_sim::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step: expands a 64-bit seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        SimRng { state }
    }

    /// Splits off an independent, reproducible sub-stream.
    ///
    /// The child stream is keyed by both the parent state and `stream`, so
    /// distinct labels yield decorrelated generators.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        self.state = [n0, n1, n2, n3.rotate_left(45)];
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 high bits of a raw draw).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn f64_range(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "empty range [{low}, {high})");
        let x = low + self.f64() * (high - low);
        // Floating rounding can land exactly on `high`; fold it back in.
        if x < high {
            x
        } else {
            low
        }
    }

    /// Uniform `u64` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn u64_range(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "empty range [{low}, {high})");
        low + self.bounded(high - low)
    }

    /// Unbiased draw in `[0, bound)` via bitmask rejection.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mask = u64::MAX >> (bound - 1).leading_zeros().min(63);
        loop {
            let candidate = self.next_u64() & mask;
            if candidate < bound {
                return candidate;
            }
        }
    }

    /// Uniform index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot sample an index from an empty collection");
        self.bounded(len as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniformly chooses one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Chooses up to `n` distinct elements of a slice, uniformly without
    /// replacement (partial Fisher-Yates over indices).
    pub fn choose_multiple<T: Clone>(&mut self, items: &[T], n: usize) -> Vec<T> {
        let take = n.min(items.len());
        let mut idx: Vec<usize> = (0..items.len()).collect();
        for i in 0..take {
            let j = i + self.index(idx.len() - i);
            idx.swap(i, j);
        }
        idx[..take].iter().map(|&i| items[i].clone()).collect()
    }

    /// Allocation-free [`SimRng::choose_multiple`]: writes up to `n`
    /// distinct elements into `out` (cleared first), reusing its capacity.
    ///
    /// Draws the exact same random sequence as `choose_multiple` on the
    /// same input — the partial Fisher-Yates runs over the copied elements
    /// instead of an index array — so the two are interchangeable without
    /// perturbing a simulation's determinism.
    pub fn choose_multiple_into<T: Copy>(&mut self, items: &[T], n: usize, out: &mut Vec<T>) {
        out.clear();
        out.extend_from_slice(items);
        self.sample_in_place(out, n);
    }

    /// Uniformly samples `min(n, len)` elements of `items` in place,
    /// truncating the vector to the sample. Draws the same random
    /// sequence as [`SimRng::choose_multiple`] over the same items.
    pub fn sample_in_place<T>(&mut self, items: &mut Vec<T>, n: usize) {
        let take = n.min(items.len());
        for i in 0..take {
            let j = i + self.index(items.len() - i);
            items.swap(i, j);
        }
        items.truncate(take);
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// Weights need not be normalized.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must be non-empty with positive sum");
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Standard normal sample via the Box-Muller transform.
    ///
    /// Implemented locally to avoid an extra dependency on `rand_distr`.
    pub fn standard_normal(&mut self) -> f64 {
        // Guard against log(0).
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_reproducible_and_distinct() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent = SimRng::seed_from(9);
        let mut a = parent.fork(1);
        let mut parent = SimRng::seed_from(9);
        let mut b = parent.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let x = rng.f64_range(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let y = rng.u64_range(10, 20);
            assert!((10..20).contains(&y));
            let i = rng.index(7);
            assert!(i < 7);
        }
    }

    #[test]
    fn full_width_range_is_reachable() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..32 {
            let _ = rng.u64_range(0, u64::MAX);
        }
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = SimRng::seed_from(77);
        let items: Vec<u32> = (0..50).collect();
        for n in [0, 1, 5, 50, 80] {
            let picked = rng.choose_multiple(&items, n);
            assert_eq!(picked.len(), n.min(items.len()));
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), picked.len(), "duplicates in sample");
        }
    }

    #[test]
    fn choose_multiple_into_matches_allocating_variant() {
        // Same seed, same input: the buffered variant must consume the
        // same draws and produce the same sample, or swapping it into the
        // simulation hot path would change every seeded run.
        let items: Vec<u32> = (0..37).collect();
        let mut out = Vec::new();
        for n in [0, 1, 4, 36, 37, 50] {
            let mut a = SimRng::seed_from(123);
            let mut b = SimRng::seed_from(123);
            let picked = a.choose_multiple(&items, n);
            b.choose_multiple_into(&items, n, &mut out);
            assert_eq!(picked, out, "n={n}");
            assert_eq!(a.next_u64(), b.next_u64(), "rng states diverged at n={n}");
        }
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut rng = SimRng::seed_from(42);
        let weights = [0.872, 0.11, 0.012, 0.002, 0.002, 0.002];
        let mut counts = [0usize; 6];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.weighted_index(&weights)] += 1;
        }
        let freq0 = counts[0] as f64 / n as f64;
        assert!((freq0 - 0.872).abs() < 0.01, "freq0 = {freq0}");
        assert!(counts[1] > counts[2]);
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = SimRng::seed_from(31);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std = {}", var.sqrt());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_index_panics() {
        SimRng::seed_from(0).index(0);
    }
}
