//! Periodically sampled time series (the raw material of the paper's
//! time-evolution figures: completed jobs, idle nodes, ...).

use crate::time::{SimDuration, SimTime};

/// A fixed-interval time series of `f64` samples.
///
/// The simulation samples gauges (e.g. number of idle nodes) at a fixed
/// period; series from different seeds can then be averaged point-wise
/// because they share the same time base.
///
/// # Example
///
/// ```
/// use aria_sim::{TimeSeries, SimTime, SimDuration};
/// let mut ts = TimeSeries::new(SimDuration::from_mins(10));
/// ts.push(5.0);
/// ts.push(7.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.time_at(1), SimTime::from_mins(10));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    period: SimDuration,
    samples: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with the given sampling period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: SimDuration) -> Self {
        assert!(!period.is_zero(), "sampling period must be positive");
        TimeSeries { period, samples: Vec::new() }
    }

    /// Sampling period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Appends the next sample (taken at `len() * period`).
    pub fn push(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.samples
    }

    /// Instant of the `i`-th sample.
    pub fn time_at(&self, i: usize) -> SimTime {
        SimTime::ZERO + self.period * i as u64
    }

    /// Iterator over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples.iter().enumerate().map(|(i, &v)| (self.time_at(i), v))
    }

    /// Point-wise average of several series sharing the same period.
    ///
    /// Shorter series are treated as absent past their end (the average is
    /// taken over the series that still have data at that index), so
    /// averaging runs with slightly different lengths keeps the tail.
    ///
    /// Returns `None` if `series` is empty or the periods disagree.
    pub fn average<'a, I>(series: I) -> Option<TimeSeries>
    where
        I: IntoIterator<Item = &'a TimeSeries>,
    {
        let all: Vec<&TimeSeries> = series.into_iter().collect();
        let first = *all.first()?;
        if all.iter().any(|s| s.period != first.period) {
            return None;
        }
        let max_len = all.iter().map(|s| s.len()).max().unwrap_or(0);
        let mut out = TimeSeries::new(first.period);
        for i in 0..max_len {
            let (sum, n) = all
                .iter()
                .filter_map(|s| s.samples.get(i))
                .fold((0.0, 0u32), |(sum, n), v| (sum + v, n + 1));
            out.push(sum / n as f64);
        }
        Some(out)
    }

    /// Largest sample value, or 0 for an empty series.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Smallest sample value, or 0 for an empty series.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Value of the series at an arbitrary instant (sample-and-hold), or
    /// `None` before the first sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        let idx = (t.as_millis() / self.period.as_millis()) as usize;
        self.samples.get(idx.min(self.samples.len().saturating_sub(1))).copied()
    }

    /// Downsamples by keeping every `stride`-th point (useful for compact
    /// textual figure output).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn thin(&self, stride: usize) -> TimeSeries {
        assert!(stride > 0, "stride must be positive");
        TimeSeries {
            period: self.period * stride as u64,
            samples: self.samples.iter().step_by(stride).copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(period_mins: u64, vals: &[f64]) -> TimeSeries {
        let mut ts = TimeSeries::new(SimDuration::from_mins(period_mins));
        for &v in vals {
            ts.push(v);
        }
        ts
    }

    #[test]
    fn timestamps_follow_period() {
        let ts = series(5, &[1.0, 2.0, 3.0]);
        let times: Vec<u64> = ts.iter().map(|(t, _)| t.as_secs()).collect();
        assert_eq!(times, [0, 300, 600]);
    }

    #[test]
    fn average_pointwise() {
        let a = series(1, &[1.0, 2.0, 3.0]);
        let b = series(1, &[3.0, 4.0, 5.0]);
        let avg = TimeSeries::average([&a, &b]).unwrap();
        assert_eq!(avg.values(), [2.0, 3.0, 4.0]);
    }

    #[test]
    fn average_handles_ragged_lengths() {
        let a = series(1, &[1.0, 2.0, 3.0, 4.0]);
        let b = series(1, &[3.0, 4.0]);
        let avg = TimeSeries::average([&a, &b]).unwrap();
        assert_eq!(avg.values(), [2.0, 3.0, 3.0, 4.0]);
    }

    #[test]
    fn average_rejects_mismatched_periods() {
        let a = series(1, &[1.0]);
        let b = series(2, &[1.0]);
        assert!(TimeSeries::average([&a, &b]).is_none());
        assert!(TimeSeries::average(std::iter::empty()).is_none());
    }

    #[test]
    fn value_at_sample_and_hold() {
        let ts = series(10, &[5.0, 7.0, 9.0]);
        assert_eq!(ts.value_at(SimTime::ZERO), Some(5.0));
        assert_eq!(ts.value_at(SimTime::from_mins(14)), Some(7.0));
        // Past the end: hold the last sample.
        assert_eq!(ts.value_at(SimTime::from_hours(10)), Some(9.0));
    }

    #[test]
    fn thin_keeps_every_stride() {
        let ts = series(1, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let thin = ts.thin(2);
        assert_eq!(thin.values(), [0.0, 2.0, 4.0]);
        assert_eq!(thin.period(), SimDuration::from_mins(2));
    }

    #[test]
    fn min_max() {
        let ts = series(1, &[3.0, -1.0, 7.0]);
        assert_eq!(ts.max(), 7.0);
        assert_eq!(ts.min(), -1.0);
        let empty = TimeSeries::new(SimDuration::from_mins(1));
        assert_eq!(empty.max(), 0.0);
        assert_eq!(empty.min(), 0.0);
    }
}
