//! The event queue at the heart of the discrete-event engine.

use crate::time::SimTime;

/// A deterministic priority queue of timestamped events.
///
/// Events are delivered in non-decreasing time order; events scheduled for
/// the same instant are delivered in scheduling order (FIFO), which makes
/// simulation runs reproducible regardless of payload type.
///
/// Internally a 4-ary min-heap ordered on `(time, seq)`: popping the
/// minimum dominates a simulation run's profile, and the wider fan-out
/// halves the sift-down depth over a binary heap while the children of a
/// node share a cache line or two. Every key is unique (the sequence
/// number breaks ties), so *any* correct heap pops the same order — the
/// layout is a pure performance choice with no effect on determinism.
///
/// # Example
///
/// ```
/// use aria_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1), 'b');
/// q.schedule(SimTime::from_secs(1), 'c'); // same instant: FIFO
/// q.schedule(SimTime::ZERO, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: Vec<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    clamped: u64,
    peak: usize,
}

/// Heap arity. Four children per node: sift-down compares one extra pair
/// per level but needs half the levels, a known win for pop-heavy heaps.
const ARITY: usize = 4;

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue { heap: Vec::new(), next_seq: 0, now: SimTime::ZERO, clamped: 0, peak: 0 }
    }

    /// Restores the heap invariant upward from `pos` after a push.
    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if self.heap[pos].key() < self.heap[parent].key() {
                self.heap.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    /// Restores the heap invariant downward from `pos` after a pop.
    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let first = ARITY * pos + 1;
            if first >= self.heap.len() {
                break;
            }
            let end = (first + ARITY).min(self.heap.len());
            let mut best = first;
            for child in first + 1..end {
                if self.heap[child].key() < self.heap[best].key() {
                    best = child;
                }
            }
            if self.heap[pos].key() <= self.heap[best].key() {
                break;
            }
            self.heap.swap(pos, best);
            pos = best;
        }
    }

    /// Schedules `event` for delivery at instant `at`.
    ///
    /// Scheduling in the past is a logic error in the simulation layers
    /// above; it is tolerated here (the event fires "now") but flagged in
    /// debug builds and counted in [`EventQueue::clamped_count`] so release
    /// builds can assert the count stayed zero instead of silently
    /// reordering causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        if at < self.now {
            self.clamped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at: at.max(self.now), seq, event });
        self.peak = self.peak.max(self.heap.len());
        self.sift_up(self.heap.len() - 1);
    }

    /// How many events were scheduled in the past and clamped to `now`.
    ///
    /// Always zero in a causally sound simulation; see
    /// [`EventQueue::schedule`].
    pub fn clamped_count(&self) -> u64 {
        self.clamped
    }

    /// Removes and returns the earliest event together with its timestamp,
    /// advancing the queue clock, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(|(at, _, event)| (at, event))
    }

    /// Like [`EventQueue::pop`] but also exposing the popped event's FIFO
    /// sequence number. Drivers that audit delivery use the number to
    /// tell pre-existing events from freshly scheduled ones — the sharded
    /// executor checks every in-window delivery against the sequence
    /// boundary captured at the window barrier.
    pub fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        self.now = entry.at;
        Some((entry.at, entry.seq, entry.event))
    }

    /// The sequence number the next [`EventQueue::schedule`] call will
    /// assign. Every currently pending event carries a smaller number, so
    /// this is the boundary between "was pending at this instant" and
    /// "scheduled afterwards".
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// The next event (the one [`EventQueue::pop`] would return) without
    /// removing it.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.first().map(|e| (e.at, &e.event))
    }

    // --- exploration hooks ------------------------------------------------
    //
    // The bounded model checker (crates/model) treats this queue as a
    // *pending set* rather than a timeline: it removes events out of
    // delivery order to enumerate alternative message interleavings. The
    // two hooks below exist for that driver only; [`EventQueue::pop`]
    // remains the sole delivery path of the event-queue driver.

    /// Removes and returns the earliest (smallest `(time, seq)`) pending
    /// event satisfying `pred`, **without** advancing the queue clock.
    ///
    /// `None` if no pending event matches. Used by the exploration driver
    /// to force a specific delivery; pair with
    /// [`EventQueue::advance_clock`] when the removed event should also
    /// move time forward.
    pub fn remove_where(&mut self, mut pred: impl FnMut(&E) -> bool) -> Option<(SimTime, E)> {
        let mut best: Option<usize> = None;
        for (i, entry) in self.heap.iter().enumerate() {
            if pred(&entry.event) && best.is_none_or(|b| entry.key() < self.heap[b].key()) {
                best = Some(i);
            }
        }
        let pos = best?;
        let entry = self.heap.swap_remove(pos);
        if pos < self.heap.len() {
            // The swapped-in tail element may violate the heap invariant
            // in either direction.
            self.sift_down(pos);
            self.sift_up(pos);
        }
        Some((entry.at, entry.event))
    }

    /// Advances the queue clock to `to` without delivering anything.
    ///
    /// # Panics
    ///
    /// Panics if `to` is in the past: the exploration driver may reorder
    /// deliveries but never time itself.
    pub fn advance_clock(&mut self, to: SimTime) {
        assert!(to >= self.now, "clock moved backwards: {to} < {}", self.now);
        self.now = to;
    }

    /// Iterates over every pending event with its timestamp and sequence
    /// number, in unspecified (heap) order.
    ///
    /// Like [`EventQueue::iter`] but exposing the FIFO tie-break key, so
    /// state canonicalization can order same-instant events exactly as
    /// [`EventQueue::pop`] would deliver them.
    pub fn entries(&self) -> impl Iterator<Item = (SimTime, u64, &E)> + '_ {
        self.heap.iter().map(|e| (e.at, e.seq, &e.event))
    }

    /// Visits every pending entry scheduled strictly before `bound`, in
    /// unspecified order. The traversal prunes on the heap property —
    /// an entry at or past the bound cannot have an earlier descendant —
    /// so the cost is O(matches · arity), not O(pending). This is what
    /// keeps the sharded executor's per-window snapshot linear in the
    /// window's own events rather than in the whole queue.
    pub fn entries_before(&self, bound: SimTime, mut visit: impl FnMut(SimTime, u64, &E)) {
        let mut stack = if self.heap.is_empty() { Vec::new() } else { vec![0usize] };
        while let Some(i) = stack.pop() {
            let entry = &self.heap[i];
            if entry.at >= bound {
                continue;
            }
            visit(entry.at, entry.seq, &entry.event);
            let first = ARITY * i + 1;
            stack.extend(first..(first + ARITY).min(self.heap.len()));
        }
    }

    /// Iterates over every pending event in unspecified (heap) order.
    ///
    /// This is an inspection hook for state-machine auditing — e.g.
    /// `World::check_invariants` cross-checks per-flood in-flight counts
    /// against the messages actually pending here. Delivery order is
    /// still decided exclusively by [`EventQueue::pop`].
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &E)> + '_ {
        self.heap.iter().map(|e| (e.at, &e.event))
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of [`EventQueue::len`] over the queue's lifetime —
    /// the deepest the pending set has ever been. Purely observational
    /// (feeds the probe layer's gauge events); never affects delivery.
    pub fn peak_len(&self) -> usize {
        self.peak
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), 3);
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_resolve_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(42), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(42));
    }

    #[test]
    fn interleaved_scheduling_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        let (t, _) = q.pop().unwrap();
        // schedule relative to popped time
        q.schedule(t + SimDuration::from_secs(5), "c");
        q.schedule(t + SimDuration::from_secs(1), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peak_len_is_a_high_water_mark() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        q.schedule(SimTime::ZERO, 3);
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.peak_len(), 3, "draining must not lower the mark");
        q.schedule(SimTime::from_secs(1), 4);
        assert_eq!(q.peak_len(), 3, "returning below the mark keeps it");
    }

    #[test]
    fn clamped_count_stays_zero_for_sound_schedules() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 'a');
        q.pop();
        q.schedule(SimTime::from_secs(1), 'b'); // exactly `now` is fine
        q.schedule(SimTime::from_secs(2), 'c');
        assert_eq!(q.clamped_count(), 0);
    }

    // The two halves of the past-scheduling guard: debug builds panic at
    // the offending `schedule` call, release builds clamp silently and
    // bump the counter for `World::check_invariants` to catch.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_schedules_panic_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 'a');
        q.pop();
        q.schedule(SimTime::from_secs(3), 'b');
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn past_schedules_are_clamped_and_counted() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 'a');
        q.pop();
        q.schedule(SimTime::from_secs(3), 'b');
        assert_eq!(q.clamped_count(), 1);
        // The clamped event fires at `now`, not in the past.
        let (at, e) = q.pop().unwrap();
        assert_eq!((at, e), (SimTime::from_secs(10), 'b'));
    }

    #[test]
    fn heap_pops_total_order_under_interleaving() {
        // Exercise the 4-ary heap with a scrambled schedule: pops must
        // come out sorted by (time, scheduling order) whatever the push
        // order was, including pushes interleaved with pops.
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        for i in 0..400u64 {
            let t = SimTime::from_millis((i * 7919) % 1000);
            q.schedule(t, i);
            expected.push((t, i));
        }
        expected.sort();
        let mut popped = Vec::new();
        for _ in 0..100 {
            popped.push(q.pop().unwrap());
        }
        // Later schedules clamp to the clock but keep FIFO order.
        let now = q.now();
        for i in 400..420u64 {
            q.schedule(now + SimDuration::from_millis(i), i);
            expected.push((now + SimDuration::from_millis(i), i));
        }
        expected.sort();
        popped.extend(std::iter::from_fn(|| q.pop()));
        assert_eq!(popped, expected);
    }

    #[test]
    fn iter_visits_every_pending_event_without_consuming() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), 'b');
        q.schedule(SimTime::from_secs(1), 'a');
        let mut seen: Vec<(SimTime, char)> = q.iter().map(|(t, &e)| (t, e)).collect();
        seen.sort();
        assert_eq!(
            seen,
            [(SimTime::from_secs(1), 'a'), (SimTime::from_secs(2), 'b')]
        );
        assert_eq!(q.len(), 2, "iteration must not consume");
    }

    #[test]
    fn peek_time_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), 'x');
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.peek(), Some((SimTime::from_secs(7), &'x')));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn remove_where_takes_the_earliest_match_and_keeps_the_heap() {
        let mut q = EventQueue::new();
        for i in 0..50u64 {
            q.schedule(SimTime::from_secs((i * 13) % 20), i);
        }
        // Remove all odd events, earliest-first; they must come out in
        // (time, seq) order among themselves.
        let mut odd = Vec::new();
        while let Some((at, e)) = q.remove_where(|e| e % 2 == 1) {
            odd.push((at, e));
        }
        let mut sorted = odd.clone();
        sorted.sort_by_key(|&(t, e)| (t, e));
        assert_eq!(odd.len(), 25);
        assert!(odd.iter().zip(&sorted).all(|(a, b)| a.0 == b.0), "matches out of order");
        // The clock never moved and the survivors still pop in order.
        assert_eq!(q.now(), SimTime::ZERO);
        let rest: Vec<(SimTime, u64)> = std::iter::from_fn(|| q.pop()).collect();
        let mut expected = rest.clone();
        expected.sort_by_key(|&(t, e)| (t, e));
        assert_eq!(rest.iter().map(|r| r.0).collect::<Vec<_>>(),
                   expected.iter().map(|r| r.0).collect::<Vec<_>>());
        assert!(rest.iter().all(|(_, e)| e % 2 == 0));
    }

    #[test]
    fn remove_where_without_match_is_a_no_op() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 'a');
        assert_eq!(q.remove_where(|&e| e == 'z'), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn advance_clock_moves_time_without_delivering() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(9), 'a');
        q.advance_clock(SimTime::from_secs(5));
        assert_eq!(q.now(), SimTime::from_secs(5));
        assert_eq!(q.len(), 1);
        // Scheduling relative to the advanced clock stays causal.
        q.schedule(SimTime::from_secs(5), 'b');
        assert_eq!(q.clamped_count(), 0);
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn advance_clock_refuses_to_rewind() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_clock(SimTime::from_secs(5));
        q.advance_clock(SimTime::from_secs(4));
    }

    #[test]
    fn entries_expose_fifo_sequence_numbers() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let mut seen: Vec<(SimTime, u64, char)> =
            q.entries().map(|(t, s, &e)| (t, s, e)).collect();
        seen.sort();
        assert_eq!(seen.len(), 2);
        assert!(seen[0].1 < seen[1].1, "seq must break the tie");
        assert_eq!((seen[0].2, seen[1].2), ('a', 'b'));
    }

    #[test]
    fn pop_entry_exposes_the_seq_boundary() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(1), 'b');
        let boundary = q.next_seq();
        assert_eq!(boundary, 2);
        let (_, seq_a, a) = q.pop_entry().unwrap();
        assert_eq!((seq_a, a), (0, 'a'));
        // An event scheduled after the boundary capture gets a number at
        // or above it — the property the sharded window audit relies on.
        q.schedule(SimTime::from_secs(2), 'c');
        q.pop_entry().unwrap();
        let (_, seq_c, c) = q.pop_entry().unwrap();
        assert_eq!(c, 'c');
        assert!(seq_c >= boundary);
    }

    #[test]
    fn entries_before_matches_a_full_filtered_scan() {
        let mut q = EventQueue::new();
        // Pseudo-shuffled times, so pruning has to cut real subtrees.
        for i in 0..200u64 {
            q.schedule(SimTime::from_millis(997 * i % 400), i);
        }
        for bound_ms in [0u64, 1, 150, 399, 400, 10_000] {
            let bound = SimTime::from_millis(bound_ms);
            let mut pruned: Vec<(SimTime, u64, u64)> = Vec::new();
            q.entries_before(bound, |at, seq, &e| pruned.push((at, seq, e)));
            let mut full: Vec<(SimTime, u64, u64)> =
                q.entries().filter(|&(at, _, _)| at < bound).map(|(a, s, &e)| (a, s, e)).collect();
            pruned.sort_unstable();
            full.sort_unstable();
            assert_eq!(pruned, full, "bound {bound_ms}ms");
        }
    }

    #[test]
    fn cloned_queues_replay_identically() {
        let mut q = EventQueue::new();
        for i in 0..20u64 {
            q.schedule(SimTime::from_secs((i * 7) % 10), i);
        }
        let mut fork = q.clone();
        let a: Vec<(SimTime, u64)> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<(SimTime, u64)> = std::iter::from_fn(|| fork.pop()).collect();
        assert_eq!(a, b);
    }
}
