//! The event queue at the heart of the discrete-event engine.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic priority queue of timestamped events.
///
/// Events are delivered in non-decreasing time order; events scheduled for
/// the same instant are delivered in scheduling order (FIFO), which makes
/// simulation runs reproducible regardless of payload type.
///
/// # Example
///
/// ```
/// use aria_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1), 'b');
/// q.schedule(SimTime::from_secs(1), 'c'); // same instant: FIFO
/// q.schedule(SimTime::ZERO, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }

    /// Schedules `event` for delivery at instant `at`.
    ///
    /// Scheduling in the past is a logic error in the simulation layers
    /// above; it is tolerated here (the event fires "now") but flagged in
    /// debug builds.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { key: Reverse((at.max(self.now), seq)), event });
    }

    /// Removes and returns the earliest event together with its timestamp,
    /// advancing the queue clock, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        let Reverse((at, _)) = entry.key;
        self.now = at;
        Some((at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), 3);
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_resolve_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(42), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(42));
    }

    #[test]
    fn interleaved_scheduling_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        let (t, _) = q.pop().unwrap();
        // schedule relative to popped time
        q.schedule(t + SimDuration::from_secs(5), "c");
        q.schedule(t + SimDuration::from_secs(1), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), 'x');
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
    }
}
