//! The event queue at the heart of the discrete-event engine.

use crate::time::SimTime;

/// A deterministic priority queue of timestamped events.
///
/// Events are delivered in non-decreasing time order; events scheduled for
/// the same instant are delivered in scheduling order (FIFO), which makes
/// simulation runs reproducible regardless of payload type.
///
/// Internally a 4-ary min-heap ordered on `(time, seq)`: popping the
/// minimum dominates a simulation run's profile, and the wider fan-out
/// halves the sift-down depth over a binary heap while the children of a
/// node share a cache line or two. Every key is unique (the sequence
/// number breaks ties), so *any* correct heap pops the same order — the
/// layout is a pure performance choice with no effect on determinism.
///
/// # Example
///
/// ```
/// use aria_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1), 'b');
/// q.schedule(SimTime::from_secs(1), 'c'); // same instant: FIFO
/// q.schedule(SimTime::ZERO, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: Vec<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    clamped: u64,
}

/// Heap arity. Four children per node: sift-down compares one extra pair
/// per level but needs half the levels, a known win for pop-heavy heaps.
const ARITY: usize = 4;

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue { heap: Vec::new(), next_seq: 0, now: SimTime::ZERO, clamped: 0 }
    }

    /// Restores the heap invariant upward from `pos` after a push.
    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if self.heap[pos].key() < self.heap[parent].key() {
                self.heap.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    /// Restores the heap invariant downward from `pos` after a pop.
    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let first = ARITY * pos + 1;
            if first >= self.heap.len() {
                break;
            }
            let end = (first + ARITY).min(self.heap.len());
            let mut best = first;
            for child in first + 1..end {
                if self.heap[child].key() < self.heap[best].key() {
                    best = child;
                }
            }
            if self.heap[pos].key() <= self.heap[best].key() {
                break;
            }
            self.heap.swap(pos, best);
            pos = best;
        }
    }

    /// Schedules `event` for delivery at instant `at`.
    ///
    /// Scheduling in the past is a logic error in the simulation layers
    /// above; it is tolerated here (the event fires "now") but flagged in
    /// debug builds and counted in [`EventQueue::clamped_count`] so release
    /// builds can assert the count stayed zero instead of silently
    /// reordering causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        if at < self.now {
            self.clamped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at: at.max(self.now), seq, event });
        self.sift_up(self.heap.len() - 1);
    }

    /// How many events were scheduled in the past and clamped to `now`.
    ///
    /// Always zero in a causally sound simulation; see
    /// [`EventQueue::schedule`].
    pub fn clamped_count(&self) -> u64 {
        self.clamped
    }

    /// Removes and returns the earliest event together with its timestamp,
    /// advancing the queue clock, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// Iterates over every pending event in unspecified (heap) order.
    ///
    /// This is an inspection hook for state-machine auditing — e.g.
    /// `World::check_invariants` cross-checks per-flood in-flight counts
    /// against the messages actually pending here. Delivery order is
    /// still decided exclusively by [`EventQueue::pop`].
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &E)> + '_ {
        self.heap.iter().map(|e| (e.at, &e.event))
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), 3);
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_resolve_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(42), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(42));
    }

    #[test]
    fn interleaved_scheduling_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        let (t, _) = q.pop().unwrap();
        // schedule relative to popped time
        q.schedule(t + SimDuration::from_secs(5), "c");
        q.schedule(t + SimDuration::from_secs(1), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clamped_count_stays_zero_for_sound_schedules() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 'a');
        q.pop();
        q.schedule(SimTime::from_secs(1), 'b'); // exactly `now` is fine
        q.schedule(SimTime::from_secs(2), 'c');
        assert_eq!(q.clamped_count(), 0);
    }

    // The two halves of the past-scheduling guard: debug builds panic at
    // the offending `schedule` call, release builds clamp silently and
    // bump the counter for `World::check_invariants` to catch.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_schedules_panic_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 'a');
        q.pop();
        q.schedule(SimTime::from_secs(3), 'b');
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn past_schedules_are_clamped_and_counted() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 'a');
        q.pop();
        q.schedule(SimTime::from_secs(3), 'b');
        assert_eq!(q.clamped_count(), 1);
        // The clamped event fires at `now`, not in the past.
        let (at, e) = q.pop().unwrap();
        assert_eq!((at, e), (SimTime::from_secs(10), 'b'));
    }

    #[test]
    fn heap_pops_total_order_under_interleaving() {
        // Exercise the 4-ary heap with a scrambled schedule: pops must
        // come out sorted by (time, scheduling order) whatever the push
        // order was, including pushes interleaved with pops.
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        for i in 0..400u64 {
            let t = SimTime::from_millis((i * 7919) % 1000);
            q.schedule(t, i);
            expected.push((t, i));
        }
        expected.sort();
        let mut popped = Vec::new();
        for _ in 0..100 {
            popped.push(q.pop().unwrap());
        }
        // Later schedules clamp to the clock but keep FIFO order.
        let now = q.now();
        for i in 400..420u64 {
            q.schedule(now + SimDuration::from_millis(i), i);
            expected.push((now + SimDuration::from_millis(i), i));
        }
        expected.sort();
        popped.extend(std::iter::from_fn(|| q.pop()));
        assert_eq!(popped, expected);
    }

    #[test]
    fn iter_visits_every_pending_event_without_consuming() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), 'b');
        q.schedule(SimTime::from_secs(1), 'a');
        let mut seen: Vec<(SimTime, char)> = q.iter().map(|(t, &e)| (t, e)).collect();
        seen.sort();
        assert_eq!(
            seen,
            [(SimTime::from_secs(1), 'a'), (SimTime::from_secs(2), 'b')]
        );
        assert_eq!(q.len(), 2, "iteration must not consume");
    }

    #[test]
    fn peek_time_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), 'x');
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
    }
}
