//! Shared bounded worker-permit pool.
//!
//! Every parallel surface in the workspace — the multi-seed scenario
//! [`Runner`](../../scenarios), the sharded deterministic executor in
//! `aria_core::shard`, the explorer's frontier fan-out — draws its
//! worker threads from one process-wide budget sized to the machine's
//! core count. Without a shared budget, nested parallelism multiplies:
//! N scenario workers each running an M-shard world would put N×M
//! threads on the scheduler, and oversubscription turns a speedup into
//! context-switch thrash.
//!
//! The pool hands out *permits*, not threads. A caller that wants up to
//! `n` workers calls [`reserve`], receives a [`Reservation`] granting
//! `min(n, permits still available)` (possibly zero — the caller then
//! runs serially on its own thread), spawns that many *scoped* threads,
//! and returns the permits when the reservation drops. The calling
//! thread itself is never counted: it is already scheduled.
//!
//! [`reserve`] never blocks. Blocking would deadlock the nested case
//! (a runner worker reserving shard permits while the runner holds the
//! rest), and determinism never depends on the grant anyway: each
//! consumer produces bit-identical results at any worker count,
//! including zero. The budget only shapes wall-clock time.

use std::sync::{Mutex, OnceLock};

/// Process-wide count of unreserved worker permits.
///
/// Initialized on first use to `available_parallelism - 1` (the calling
/// thread is already running; a budget of the full core count would
/// oversubscribe by one per nesting level).
static AVAILABLE: OnceLock<Mutex<usize>> = OnceLock::new();

fn budget() -> &'static Mutex<usize> {
    AVAILABLE.get_or_init(|| Mutex::new(default_budget()))
}

/// The initial permit budget: one less than the core count, floor 1.
pub fn default_budget() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().saturating_sub(1).max(1))
}

/// A grant of worker permits, returned to the shared budget on drop.
///
/// The grant may be smaller than requested — including zero, in which
/// case the caller should run its work serially on the current thread.
#[derive(Debug)]
pub struct Reservation {
    granted: usize,
}

impl Reservation {
    /// Number of worker threads this reservation entitles the holder to
    /// spawn (in addition to the calling thread).
    pub fn workers(&self) -> usize {
        self.granted
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        if self.granted > 0 {
            let mut avail = budget().lock().expect("worker-permit budget poisoned");
            *avail += self.granted;
        }
    }
}

/// Reserves up to `want` worker permits from the shared budget.
///
/// Returns immediately with a grant of `min(want, available)`; never
/// blocks, so nested reservations (scenario runner → shard executor)
/// cannot deadlock. A zero grant means the budget is exhausted and the
/// caller should fall back to running serially.
pub fn reserve(want: usize) -> Reservation {
    if want == 0 {
        return Reservation { granted: 0 };
    }
    let mut avail = budget().lock().expect("worker-permit budget poisoned");
    let granted = want.min(*avail);
    *avail -= granted;
    Reservation { granted }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tests share one process-global budget, so each exercises only
    // relative behaviour (what it took comes back) rather than absolute
    // availability, keeping them order-independent under parallel `cargo
    // test`.

    #[test]
    fn grant_is_bounded_by_request() {
        let r = reserve(1);
        assert!(r.workers() <= 1);
    }

    #[test]
    fn zero_request_takes_nothing() {
        let r = reserve(0);
        assert_eq!(r.workers(), 0);
    }

    #[test]
    fn dropping_a_reservation_returns_its_permits() {
        let first = reserve(usize::MAX);
        let taken = first.workers();
        // Everything is reserved now; a second request gets nothing.
        assert_eq!(reserve(1).workers(), 0);
        drop(first);
        // After the drop the permits are back.
        let again = reserve(usize::MAX);
        assert_eq!(again.workers(), taken);
    }

    #[test]
    fn budget_never_goes_negative() {
        let a = reserve(2);
        let b = reserve(usize::MAX);
        let c = reserve(usize::MAX);
        assert_eq!(c.workers(), 0);
        drop(a);
        drop(b);
    }
}
