//! Simulated time: instants ([`SimTime`]) and spans ([`SimDuration`]).
//!
//! Both types are thin millisecond-resolution wrappers around `u64`/`i64`
//! with the arithmetic needed by the scheduler and the protocol. A
//! dedicated pair of newtypes (instead of `std::time`) keeps simulated
//! time strictly separated from wall-clock time and makes saturating
//! semantics explicit.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of simulated time, measured in milliseconds since the start
/// of the simulation.
///
/// # Example
///
/// ```
/// use aria_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_mins(90);
/// assert_eq!(t.as_secs(), 5400);
/// assert_eq!(format!("{t}"), "1h30m00s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time in milliseconds.
///
/// Durations are non-negative; subtraction saturates at zero. Use
/// [`SimTime::signed_delta`] when a signed difference (e.g. lateness) is
/// required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Builds an instant from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60_000)
    }

    /// Builds an instant from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600_000)
    }

    /// Raw milliseconds since the simulation origin.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the simulation origin (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional hours since the simulation origin.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Signed difference `self - other` in milliseconds.
    ///
    /// Used for lateness computations (`deadline - completion`), which may
    /// legitimately be negative.
    pub fn signed_delta(self, other: SimTime) -> i64 {
        self.0 as i64 - other.0 as i64
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Builds a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Builds a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// millisecond and clamping negatives to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        // det:allow(lossy-float-cast): rounded and clamped non-negative by construction
        SimDuration((secs * 1000.0).round().max(0.0) as u64)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration scaled by a non-negative factor, rounding to the nearest
    /// millisecond.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration scale factor must be non-negative");
        // det:allow(lossy-float-cast): factor asserted non-negative; round() then truncate
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Duration divided by a positive factor, rounding to the nearest
    /// millisecond.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is not strictly positive.
    pub fn div_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor > 0.0, "duration divisor must be positive");
        // det:allow(lossy-float-cast): factor asserted positive; round() then truncate
        SimDuration((self.0 as f64 / factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs();
        write!(f, "{}h{:02}m{:02}s", secs / 3600, (secs % 3600) / 60, secs % 60)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs();
        write!(f, "{}h{:02}m{:02}s", secs / 3600, (secs % 3600) / 60, secs % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_scale() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_mins(1), SimTime::from_secs(60));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimDuration::from_hours(2), SimDuration::from_mins(120));
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_mins(20) + SimDuration::from_secs(30);
        assert_eq!(t.as_millis(), 20 * 60_000 + 30_000);
    }

    #[test]
    fn saturating_since_is_zero_for_future_instants() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(10));
    }

    #[test]
    fn signed_delta_may_be_negative() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(8);
        assert_eq!(a.signed_delta(b), -3000);
        assert_eq!(b.signed_delta(a), 3000);
    }

    #[test]
    fn duration_scaling_rounds() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(15_000));
        assert_eq!(d.div_f64(4.0), SimDuration::from_millis(2500));
        // ERTp = ERT / p with p in [1,2]
        assert_eq!(SimDuration::from_hours(2).div_f64(2.0), SimDuration::from_hours(1));
    }

    #[test]
    fn duration_sub_saturates() {
        let a = SimDuration::from_secs(3);
        let b = SimDuration::from_secs(7);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(b - a, SimDuration::from_secs(4));
    }

    #[test]
    fn display_formats_hours_minutes_seconds() {
        assert_eq!(SimTime::from_millis(0).to_string(), "0h00m00s");
        assert_eq!(SimDuration::from_secs(3 * 3600 + 7 * 60 + 9).to_string(), "3h07m09s");
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimDuration::from_secs_f64(-4.2), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.2345), SimDuration::from_millis(1235));
    }
}
