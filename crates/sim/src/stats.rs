//! Summary statistics used throughout the measurement layer.

use std::fmt;

/// Single-pass summary of a set of `f64` observations.
///
/// Tracks count, mean, variance (Welford's online algorithm), minimum and
/// maximum. Cheap to update and merge, which is what the multi-seed
/// scenario runner needs when aggregating runs.
///
/// # Example
///
/// ```
/// use aria_sim::Summary;
/// let s: Summary = [2.0, 4.0, 6.0].into_iter().collect();
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or 0 for an empty summary.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 for an empty summary.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} std={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// Percentile of a sample (nearest-rank on a copy; `q` in `[0, 1]`).
///
/// Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "percentile must be within [0,1]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    // det:allow(lossy-float-cast): ceil of q*len <= len, clamped below anyway
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn mean_variance_match_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: Summary = data.into_iter().collect();
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (left, right) = data.split_at(37);
        let mut a: Summary = left.iter().copied().collect();
        let b: Summary = right.iter().copied().collect();
        a.merge(&b);
        let full: Summary = data.iter().copied().collect();
        assert_eq!(a.count(), full.count());
        assert!((a.mean() - full.mean()).abs() < 1e-9);
        assert!((a.variance() - full.variance()).abs() < 1e-9);
        assert_eq!(a.min(), full.min());
        assert_eq!(a.max(), full.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), 15.0);
        assert_eq!(percentile(&v, 0.3), 20.0);
        assert_eq!(percentile(&v, 0.5), 35.0);
        assert_eq!(percentile(&v, 1.0), 50.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s: Summary = [1.0].into_iter().collect();
        assert!(s.to_string().contains("n=1"));
    }
}
