//! # aria-sim — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the ARiA reproduction: a small,
//! deterministic discrete-event simulation kernel with millisecond
//! resolution, a seedable random number source, and the statistics
//! utilities used by the measurement layer.
//!
//! The engine is deliberately generic: it knows nothing about grids,
//! overlays or scheduling. Higher layers define an event payload type and
//! drive the simulation loop themselves, which keeps the kernel trivially
//! testable and reusable.
//!
//! ## Determinism
//!
//! Two runs with the same event schedule and the same [`SimRng`] seed
//! produce bit-identical results: ties in event time are broken by a
//! monotonically increasing sequence number assigned at scheduling time.
//!
//! ## Example
//!
//! ```
//! use aria_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_secs(5), "hello");
//! queue.schedule(SimTime::ZERO + SimDuration::from_secs(1), "world");
//!
//! let (t1, e1) = queue.pop().unwrap();
//! assert_eq!((t1.as_secs(), e1), (1, "world"));
//! let (t2, e2) = queue.pop().unwrap();
//! assert_eq!((t2.as_secs(), e2), (5, "hello"));
//! assert!(queue.pop().is_none());
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod event;
pub mod pool;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::Summary;
pub use time::{SimDuration, SimTime};
