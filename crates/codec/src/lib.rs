//! # aria-codec — the ARiA live-node wire format
//!
//! A length-prefixed, versioned binary codec for [`LiveMsg`], the
//! self-contained messages exchanged by `aria-node` runtimes over UDP.
//! The simulator never touches this layer (its messages live in the
//! in-memory event queue); the codec sits exactly at the sans-io
//! boundary: [`encode`] turns a driver's `Send` output into a datagram,
//! [`decode`] turns a received datagram into a driver input.
//!
//! ## Frame layout
//!
//! ```text
//! [len: u32 LE] [version: u8] [kind: u8] [body…]
//! └── payload length (version byte onward), bounded by MAX_PAYLOAD ──┘
//! ```
//!
//! All integers are little-endian fixed width. Node ids are `u32`, job
//! ids `u64`, durations/instants unsigned milliseconds, costs signed
//! milliseconds. Enums travel as their index into the crate-published
//! `ALL` tables ([`aria_grid::Architecture::ALL`] and friends), so the
//! wire values are stable across enum reorderings that keep the table.
//!
//! ## Validation contract
//!
//! [`decode`] is **strict** and **total**: it never panics on arbitrary
//! bytes (fuzzed in the crate tests), rejects unknown versions and kinds,
//! rejects any frame whose body is shorter *or longer* than its message
//! (exact consumption — trailing bytes are an error, not padding), and
//! bounds every length field before allocating. A datagram either parses
//! to exactly one [`LiveMsg`] or yields a [`CodecError`].

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use aria_core::driver::{FloodUid, LiveMsg};
use aria_grid::{
    Architecture, Cost, JobId, JobPriority, JobRequirements, JobSpec, OperatingSystem,
};
use aria_overlay::NodeId;
use aria_sim::{SimDuration, SimTime};
use std::fmt;

/// Current wire-format version, first payload byte of every frame.
pub const VERSION: u8 = 1;

/// Upper bound on a frame's payload (version byte onward). Generous for
/// the largest legal message (an INFORM with a full visited list) while
/// keeping hostile length prefixes from driving allocations.
pub const MAX_PAYLOAD: usize = 16 * 1024;

/// Upper bound on the visited list a flood message may carry; mirrors
/// `NodeDriver::MAX_VISITED` with headroom so the codec never rejects a
/// frame the driver can produce.
pub const MAX_VISITED_WIRE: usize = 1024;

/// Why a buffer failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ends before the frame does.
    Truncated,
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(usize),
    /// The length prefix is too small to hold version and kind bytes.
    Undersized(usize),
    /// Unknown wire-format version.
    BadVersion(u8),
    /// Unknown message kind tag.
    BadKind(u8),
    /// An enum field carried an out-of-table index.
    BadEnum {
        /// Which field rejected the value.
        field: &'static str,
        /// The rejected wire value.
        value: u8,
    },
    /// A visited list claimed more entries than [`MAX_VISITED_WIRE`].
    VisitedTooLong(usize),
    /// The frame's body is longer than its message (strict decoding
    /// treats padding as corruption).
    TrailingBytes(usize),
    /// The buffer continues past the end of the frame (a datagram must
    /// hold exactly one frame).
    TrailingFrame(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::Oversized(len) => {
                write!(f, "payload length {len} exceeds the {MAX_PAYLOAD}-byte bound")
            }
            CodecError::Undersized(len) => {
                write!(f, "payload length {len} cannot hold a version and kind")
            }
            CodecError::BadVersion(v) => write!(f, "unknown wire version {v}"),
            CodecError::BadKind(k) => write!(f, "unknown message kind {k}"),
            CodecError::BadEnum { field, value } => {
                write!(f, "field {field} rejects wire value {value}")
            }
            CodecError::VisitedTooLong(n) => {
                write!(f, "visited list claims {n} entries, bound is {MAX_VISITED_WIRE}")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} unconsumed byte(s) inside the frame"),
            CodecError::TrailingFrame(n) => write!(f, "{n} byte(s) after the frame"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Message kind tags (payload byte 1).
mod kind {
    pub const REQUEST: u8 = 1;
    pub const ACCEPT: u8 = 2;
    pub const INFORM: u8 = 3;
    pub const ASSIGN: u8 = 4;
    pub const ACK: u8 = 5;
    pub const JOIN: u8 = 6;
    pub const LEAVE: u8 = 7;
    pub const SUBMIT: u8 = 8;
    pub const DONE: u8 = 9;
    pub const SHUTDOWN: u8 = 10;
    pub const HEARTBEAT: u8 = 11;
    pub const HOLDING: u8 = 12;
}

// --- encoding ------------------------------------------------------------

/// Encodes one message as a complete frame (length prefix included).
pub fn encode(msg: &LiveMsg) -> Vec<u8> {
    let mut out = vec![0u8; 4]; // length prefix back-patched below
    match msg {
        LiveMsg::Request { initiator, spec, hops_left, flood, visited } => {
            out.extend_from_slice(&[VERSION, kind::REQUEST]);
            put_node(&mut out, *initiator);
            put_spec(&mut out, spec);
            put_u32(&mut out, *hops_left);
            put_flood(&mut out, *flood);
            put_visited(&mut out, visited);
        }
        LiveMsg::Accept { from, job, cost } => {
            out.extend_from_slice(&[VERSION, kind::ACCEPT]);
            put_node(&mut out, *from);
            put_job(&mut out, *job);
            put_i64(&mut out, cost.as_millis());
        }
        LiveMsg::Inform { assignee, spec, cost, hops_left, flood, visited } => {
            out.extend_from_slice(&[VERSION, kind::INFORM]);
            put_node(&mut out, *assignee);
            put_spec(&mut out, spec);
            put_i64(&mut out, cost.as_millis());
            put_u32(&mut out, *hops_left);
            put_flood(&mut out, *flood);
            put_visited(&mut out, visited);
        }
        LiveMsg::Assign { initiator, spec } => {
            out.extend_from_slice(&[VERSION, kind::ASSIGN]);
            put_node(&mut out, *initiator);
            put_spec(&mut out, spec);
        }
        LiveMsg::Ack { from, job } => {
            out.extend_from_slice(&[VERSION, kind::ACK]);
            put_node(&mut out, *from);
            put_job(&mut out, *job);
        }
        LiveMsg::Join { node } => {
            out.extend_from_slice(&[VERSION, kind::JOIN]);
            put_node(&mut out, *node);
        }
        LiveMsg::Leave { node } => {
            out.extend_from_slice(&[VERSION, kind::LEAVE]);
            put_node(&mut out, *node);
        }
        LiveMsg::Submit { spec } => {
            out.extend_from_slice(&[VERSION, kind::SUBMIT]);
            put_spec(&mut out, spec);
        }
        LiveMsg::Done { job, node } => {
            out.extend_from_slice(&[VERSION, kind::DONE]);
            put_job(&mut out, *job);
            put_node(&mut out, *node);
        }
        LiveMsg::Shutdown => out.extend_from_slice(&[VERSION, kind::SHUTDOWN]),
        LiveMsg::Heartbeat { node } => {
            out.extend_from_slice(&[VERSION, kind::HEARTBEAT]);
            put_node(&mut out, *node);
        }
        LiveMsg::Holding { job, node } => {
            out.extend_from_slice(&[VERSION, kind::HOLDING]);
            put_job(&mut out, *job);
            put_node(&mut out, *node);
        }
    }
    let payload = out.len() - 4;
    debug_assert!(payload <= MAX_PAYLOAD, "encoder produced an oversized frame");
    out[..4].copy_from_slice(&(payload as u32).to_le_bytes());
    out
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_node(out: &mut Vec<u8>, node: NodeId) {
    put_u32(out, node.raw());
}

fn put_job(out: &mut Vec<u8>, job: JobId) {
    put_u64(out, job.raw());
}

fn put_flood(out: &mut Vec<u8>, flood: FloodUid) {
    put_node(out, flood.origin);
    put_u32(out, flood.seq);
}

fn put_visited(out: &mut Vec<u8>, visited: &[NodeId]) {
    debug_assert!(visited.len() <= MAX_VISITED_WIRE, "visited list over the wire bound");
    put_u16(out, visited.len() as u16);
    for &node in visited {
        put_node(out, node);
    }
}

fn enum_index<T: PartialEq + Copy>(table: &[T], value: T) -> u8 {
    table
        .iter()
        .position(|t| *t == value)
        .expect("value is in its own ALL table") as u8
}

fn put_spec(out: &mut Vec<u8>, spec: &JobSpec) {
    put_job(out, spec.id);
    out.push(enum_index(&Architecture::ALL, spec.requirements.arch));
    out.push(enum_index(&OperatingSystem::ALL, spec.requirements.os));
    put_u16(out, spec.requirements.min_memory_gb);
    put_u16(out, spec.requirements.min_disk_gb);
    put_u64(out, spec.ert.as_millis());
    match spec.deadline {
        None => out.push(0),
        Some(at) => {
            out.push(1);
            put_u64(out, at.as_millis());
        }
    }
    out.push(spec.priority.0);
}

// --- decoding ------------------------------------------------------------

/// Decodes a buffer holding exactly one frame (as every `aria-node`
/// datagram does). Strict: unknown versions/kinds, short reads, bad enum
/// values and any unconsumed bytes are errors, never panics.
pub fn decode(buf: &[u8]) -> Result<LiveMsg, CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(CodecError::Oversized(len));
    }
    if len < 2 {
        return Err(CodecError::Undersized(len));
    }
    let rest = &buf[4..];
    if rest.len() < len {
        return Err(CodecError::Truncated);
    }
    if rest.len() > len {
        return Err(CodecError::TrailingFrame(rest.len() - len));
    }
    let mut r = Reader { buf: &rest[..len] };
    let version = r.u8()?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let tag = r.u8()?;
    let msg = match tag {
        kind::REQUEST => LiveMsg::Request {
            initiator: r.node()?,
            spec: r.spec()?,
            hops_left: r.u32()?,
            flood: r.flood()?,
            visited: r.visited()?,
        },
        kind::ACCEPT => LiveMsg::Accept {
            from: r.node()?,
            job: r.job()?,
            cost: Cost::from_nal(r.i64()?),
        },
        kind::INFORM => LiveMsg::Inform {
            assignee: r.node()?,
            spec: r.spec()?,
            cost: Cost::from_nal(r.i64()?),
            hops_left: r.u32()?,
            flood: r.flood()?,
            visited: r.visited()?,
        },
        kind::ASSIGN => LiveMsg::Assign { initiator: r.node()?, spec: r.spec()? },
        kind::ACK => LiveMsg::Ack { from: r.node()?, job: r.job()? },
        kind::JOIN => LiveMsg::Join { node: r.node()? },
        kind::LEAVE => LiveMsg::Leave { node: r.node()? },
        kind::SUBMIT => LiveMsg::Submit { spec: r.spec()? },
        kind::DONE => LiveMsg::Done { job: r.job()?, node: r.node()? },
        kind::SHUTDOWN => LiveMsg::Shutdown,
        kind::HEARTBEAT => LiveMsg::Heartbeat { node: r.node()? },
        kind::HOLDING => LiveMsg::Holding { job: r.job()?, node: r.node()? },
        other => return Err(CodecError::BadKind(other)),
    };
    if !r.buf.is_empty() {
        return Err(CodecError::TrailingBytes(r.buf.len()));
    }
    Ok(msg)
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    fn node(&mut self) -> Result<NodeId, CodecError> {
        Ok(NodeId::new(self.u32()?))
    }

    fn job(&mut self) -> Result<JobId, CodecError> {
        Ok(JobId::new(self.u64()?))
    }

    fn flood(&mut self) -> Result<FloodUid, CodecError> {
        Ok(FloodUid { origin: self.node()?, seq: self.u32()? })
    }

    fn visited(&mut self) -> Result<Vec<NodeId>, CodecError> {
        let count = self.u16()? as usize;
        if count > MAX_VISITED_WIRE {
            return Err(CodecError::VisitedTooLong(count));
        }
        // The count is validated against the remaining bytes before any
        // allocation sized by it.
        if self.buf.len() < count * 4 {
            return Err(CodecError::Truncated);
        }
        (0..count).map(|_| self.node()).collect()
    }

    fn spec(&mut self) -> Result<JobSpec, CodecError> {
        let id = self.job()?;
        let arch_idx = self.u8()?;
        let arch = *Architecture::ALL
            .get(arch_idx as usize)
            .ok_or(CodecError::BadEnum { field: "architecture", value: arch_idx })?;
        let os_idx = self.u8()?;
        let os = *OperatingSystem::ALL
            .get(os_idx as usize)
            .ok_or(CodecError::BadEnum { field: "operating-system", value: os_idx })?;
        let min_memory_gb = self.u16()?;
        let min_disk_gb = self.u16()?;
        let ert = SimDuration::from_millis(self.u64()?);
        let deadline = match self.u8()? {
            0 => None,
            1 => Some(SimTime::from_millis(self.u64()?)),
            other => return Err(CodecError::BadEnum { field: "deadline-tag", value: other }),
        };
        let priority = JobPriority(self.u8()?);
        Ok(JobSpec {
            id,
            requirements: JobRequirements { arch, os, min_memory_gb, min_disk_gb },
            ert,
            deadline,
            priority,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::batch(
            JobId::new(7),
            JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 4, 10),
            SimDuration::from_secs(90),
        )
    }

    /// The golden byte-level encoding of a REQUEST frame. Any change to
    /// this layout is a wire-format break and must bump [`VERSION`].
    #[test]
    fn golden_request_encoding() {
        let msg = LiveMsg::Request {
            initiator: NodeId::new(3),
            spec: spec(),
            hops_left: 9,
            flood: FloodUid { origin: NodeId::new(3), seq: 2 },
            visited: vec![NodeId::new(3), NodeId::new(1)],
        };
        let bytes = encode(&msg);
        #[rustfmt::skip]
        let expected: Vec<u8> = vec![
            52, 0, 0, 0,              // payload length = 52
            1,                        // version
            1,                        // kind = REQUEST
            3, 0, 0, 0,               // initiator n3
            7, 0, 0, 0, 0, 0, 0, 0,   // job id 7
            0,                        // arch = Amd64 (ALL[0])
            0,                        // os = Linux (ALL[0])
            4, 0,                     // min memory 4 GB
            10, 0,                    // min disk 10 GB
            0x90, 0x5F, 1, 0, 0, 0, 0, 0, // ert 90 000 ms
            0,                        // no deadline
            0,                        // default priority
            9, 0, 0, 0,               // hops_left
            3, 0, 0, 0,               // flood origin n3
            2, 0, 0, 0,               // flood seq 2
            2, 0,                     // visited count
            3, 0, 0, 0,               // visited[0] = n3
            1, 0, 0, 0,               // visited[1] = n1
        ];
        assert_eq!(bytes, expected);
        assert_eq!(decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn golden_shutdown_is_the_minimal_frame() {
        let bytes = encode(&LiveMsg::Shutdown);
        assert_eq!(bytes, vec![2, 0, 0, 0, 1, 10]);
        assert_eq!(decode(&bytes).unwrap(), LiveMsg::Shutdown);
    }

    /// Membership frames are additive kinds under the same version:
    /// their byte layout is part of the wire contract too.
    #[test]
    fn golden_membership_frames() {
        let hb = encode(&LiveMsg::Heartbeat { node: NodeId::new(5) });
        assert_eq!(hb, vec![6, 0, 0, 0, 1, 11, 5, 0, 0, 0]);
        assert_eq!(decode(&hb).unwrap(), LiveMsg::Heartbeat { node: NodeId::new(5) });

        let holding = encode(&LiveMsg::Holding { job: JobId::new(9), node: NodeId::new(2) });
        #[rustfmt::skip]
        let expected: Vec<u8> = vec![
            14, 0, 0, 0,             // payload length = 14
            1,                       // version
            12,                      // kind = HOLDING
            9, 0, 0, 0, 0, 0, 0, 0,  // job id 9
            2, 0, 0, 0,              // holder n2
        ];
        assert_eq!(holding, expected);
        assert_eq!(
            decode(&holding).unwrap(),
            LiveMsg::Holding { job: JobId::new(9), node: NodeId::new(2) }
        );
    }

    #[test]
    fn rejects_bad_version_kind_and_sizes() {
        assert_eq!(decode(&[]), Err(CodecError::Truncated));
        assert_eq!(decode(&[2, 0, 0]), Err(CodecError::Truncated));
        assert_eq!(decode(&[2, 0, 0, 0, 9, 10]), Err(CodecError::BadVersion(9)));
        assert_eq!(decode(&[2, 0, 0, 0, 1, 77]), Err(CodecError::BadKind(77)));
        assert_eq!(decode(&[1, 0, 0, 0, 1]), Err(CodecError::Undersized(1)));
        assert_eq!(
            decode(&[255, 255, 255, 255, 1, 10]),
            Err(CodecError::Oversized(u32::MAX as usize))
        );
        // One valid frame followed by another is not one datagram.
        let mut two = encode(&LiveMsg::Shutdown);
        two.extend(encode(&LiveMsg::Shutdown));
        assert_eq!(decode(&two), Err(CodecError::TrailingFrame(6)));
        // Length prefix claiming more than the message body consumes.
        let mut padded = encode(&LiveMsg::Shutdown);
        padded.extend_from_slice(&[0, 0]);
        padded[..4].copy_from_slice(&4u32.to_le_bytes());
        assert_eq!(decode(&padded), Err(CodecError::TrailingBytes(2)));
    }

    #[test]
    fn rejects_out_of_table_enums_and_hostile_visited_counts() {
        let mut assign = encode(&LiveMsg::Assign { initiator: NodeId::new(0), spec: spec() });
        // Byte 18 is the architecture index (4 len + 2 header + 4 node + 8 job).
        assign[18] = 200;
        assert_eq!(
            decode(&assign),
            Err(CodecError::BadEnum { field: "architecture", value: 200 })
        );
        let mut request = encode(&LiveMsg::Request {
            initiator: NodeId::new(0),
            spec: spec(),
            hops_left: 1,
            flood: FloodUid { origin: NodeId::new(0), seq: 0 },
            visited: Vec::new(),
        });
        // The final two bytes are the visited count; claim an absurd one.
        let n = request.len();
        request[n - 2..].copy_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(decode(&request), Err(CodecError::VisitedTooLong(u16::MAX as usize)));
    }
}
