//! Property-based tests: every [`LiveMsg`] survives an encode/decode
//! round trip exactly, and the decoder is panic-free (and strict) on
//! arbitrary and corrupted bytes.

use aria_codec::{decode, encode, CodecError, MAX_PAYLOAD};
use aria_core::driver::{FloodUid, LiveMsg};
use aria_grid::{
    Architecture, Cost, JobId, JobPriority, JobRequirements, JobSpec, OperatingSystem,
};
use aria_overlay::NodeId;
use aria_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_arch() -> impl Strategy<Value = Architecture> {
    proptest::sample::select(Architecture::ALL.to_vec())
}

fn arb_os() -> impl Strategy<Value = OperatingSystem> {
    proptest::sample::select(OperatingSystem::ALL.to_vec())
}

prop_compose! {
    fn arb_spec()(
        id in 0u64..u64::MAX,
        arch in arb_arch(),
        os in arb_os(),
        mem in 0u16..u16::MAX,
        disk in 0u16..u16::MAX,
        ert_ms in 0u64..100_000_000_000,
        deadline_ms in proptest::option::of(0u64..100_000_000_000),
        priority in 0u8..u8::MAX,
    ) -> JobSpec {
        JobSpec {
            id: JobId::new(id),
            requirements: JobRequirements::new(arch, os, mem, disk),
            ert: SimDuration::from_millis(ert_ms),
            deadline: deadline_ms.map(SimTime::from_millis),
            priority: JobPriority(priority),
        }
    }
}

prop_compose! {
    fn arb_flood()(origin in 0u32..1_000_000, seq in 0u32..u32::MAX) -> FloodUid {
        FloodUid { origin: NodeId::new(origin), seq }
    }
}

prop_compose! {
    fn arb_visited()(raw in proptest::collection::vec(0u32..1_000_000, 0..40)) -> Vec<NodeId> {
        raw.into_iter().map(NodeId::new).collect()
    }
}

prop_compose! {
    /// One arbitrary message of any of the twelve wire kinds.
    fn arb_msg()(
        kind in 0u8..12,
        spec in arb_spec(),
        node_a in 0u32..1000,
        node_b in 0u32..1000,
        job in 0u64..1_000_000,
        cost_ms in -1_000_000_000_000i64..1_000_000_000_000,
        hops_left in 0u32..64,
        flood in arb_flood(),
        visited in arb_visited(),
    ) -> LiveMsg {
        let a = NodeId::new(node_a);
        let b = NodeId::new(node_b);
        let job = JobId::new(job);
        let cost = Cost::from_nal(cost_ms);
        match kind {
            0 => LiveMsg::Request { initiator: a, spec, hops_left, flood, visited },
            1 => LiveMsg::Accept { from: a, job, cost },
            2 => LiveMsg::Inform { assignee: a, spec, cost, hops_left, flood, visited },
            3 => LiveMsg::Assign { initiator: a, spec },
            4 => LiveMsg::Ack { from: a, job },
            5 => LiveMsg::Join { node: a },
            6 => LiveMsg::Leave { node: a },
            7 => LiveMsg::Submit { spec },
            8 => LiveMsg::Done { job, node: b },
            9 => LiveMsg::Heartbeat { node: a },
            10 => LiveMsg::Holding { job, node: b },
            _ => LiveMsg::Shutdown,
        }
    }
}

proptest! {
    /// Every message survives encode → decode exactly.
    #[test]
    fn round_trips(msg in arb_msg()) {
        let bytes = encode(&msg);
        prop_assert!(bytes.len() - 4 <= MAX_PAYLOAD, "encoder stays under the payload bound");
        let back = decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, msg);
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn decoder_is_panic_free_on_garbage(bytes in proptest::collection::vec(0u8..255, 0..200)) {
        let _ = decode(&bytes);
    }

    /// Single-byte corruption of a valid frame never panics, and
    /// anything that still decodes re-encodes cleanly (the decoder only
    /// accepts well-formed messages).
    #[test]
    fn corrupt_byte_never_panics(msg in arb_msg(), pos in 0usize..4096, delta in 1u8..255) {
        let mut bytes = encode(&msg);
        let pos = pos % bytes.len();
        bytes[pos] = bytes[pos].wrapping_add(delta);
        if let Ok(decoded) = decode(&bytes) {
            let _ = encode(&decoded);
        }
    }

    /// Truncation at every length yields an error, never a panic or a
    /// bogus success (a strict frame cannot parse from a prefix).
    #[test]
    fn every_truncation_is_rejected(msg in arb_msg(), cut in 0usize..4096) {
        let bytes = encode(&msg);
        let cut = cut % bytes.len();
        let result = decode(&bytes[..cut]);
        prop_assert!(result.is_err(), "prefix of {} bytes decoded: {:?}", cut, result);
    }
}

/// Pinned case: flipping the visited-count bytes of a REQUEST to a huge
/// value must be rejected by the bound check, not attempt an allocation.
#[test]
fn hostile_visited_count_is_bounded() {
    let msg = LiveMsg::Request {
        initiator: NodeId::new(1),
        spec: JobSpec::batch(
            JobId::new(1),
            JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1),
            SimDuration::from_secs(60),
        ),
        hops_left: 3,
        flood: FloodUid { origin: NodeId::new(1), seq: 0 },
        visited: vec![NodeId::new(1)],
    };
    let mut bytes = encode(&msg);
    let count_at = bytes.len() - 4 - 2; // one visited entry + the count field
    bytes[count_at..count_at + 2].copy_from_slice(&u16::MAX.to_le_bytes());
    assert_eq!(decode(&bytes), Err(CodecError::VisitedTooLong(u16::MAX as usize)));
}
