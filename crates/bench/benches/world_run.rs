//! End-to-end hot-path benchmark: one full paper-scale `World::run`.
//!
//! This is the number the dense-state refactor is judged by — the iMixed
//! baseline (500 mixed-policy nodes, 1000 jobs, rescheduling on) from
//! submission to an empty event queue. The companion `bench_core` binary
//! reports the same run as JSON (`BENCH_core.json`) with a determinism
//! fingerprint; this bench gives criterion-tracked history, plus a
//! smaller scaled variant quick enough for iterating.

use aria_scenarios::{Runner, Scenario};
use aria_workload::JobGenerator;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// The paper-scale baseline: 500 nodes, 1000 jobs, dynamic rescheduling.
fn world_run_paper(c: &mut Criterion) {
    let scenario = Scenario::IMixed;
    let mut group = c.benchmark_group("world_run");
    group.sample_size(10).measurement_time(Duration::from_secs(20));
    group.bench_function("imixed_500n_1000j", |b| {
        b.iter(|| {
            let mut world = aria_core::World::new(scenario.world_config(), 1);
            let mut jobs = JobGenerator::new(scenario.job_config());
            world.submit_schedule(&scenario.submission_schedule(), &mut jobs);
            world.run();
            black_box(world.metrics().completed_count())
        })
    });
    group.finish();
}

/// A scaled-down run for quick comparisons while iterating.
fn world_run_scaled(c: &mut Criterion) {
    c.bench_function("world_run/scaled_60n_120j", |b| {
        b.iter(|| {
            let runner = Runner::scaled(60, 120);
            let stats = runner.run_once(Scenario::IMixed, 1);
            black_box(stats.completed)
        })
    });
}

criterion_group!(benches, world_run_paper, world_run_scaled);
criterion_main!(benches);
