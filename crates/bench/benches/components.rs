//! Component micro-benchmarks: the building blocks whose cost dominates
//! a simulation run — overlay construction, flood forwarding, local
//! scheduler operations and the two cost functions.

use aria_core::{World, WorldConfig};
use aria_grid::{
    Architecture, JobId, JobRequirements, JobSpec, NodeProfile, OperatingSystem, PerfIndex,
    Policy, SchedulerQueue,
};
use aria_overlay::{Blatant, LatencyModel};
use aria_sim::{EventQueue, SimDuration, SimRng, SimTime};
use aria_workload::{JobGenerator, ProfileGenerator, SubmissionSchedule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn overlay_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_build");
    for n in [100usize, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = SimRng::seed_from(1);
                let topo = Blatant::new(9.0, LatencyModel::default()).build(n, &mut rng);
                black_box(topo.link_count())
            })
        });
    }
    group.finish();
}

fn overlay_join(c: &mut Criterion) {
    c.bench_function("overlay_join_100", |b| {
        let mut rng = SimRng::seed_from(2);
        let mut blatant = Blatant::new(9.0, LatencyModel::default());
        let base = blatant.build(500, &mut rng);
        b.iter(|| {
            let mut topo = base.clone();
            for _ in 0..100 {
                blatant.integrate_node(&mut topo, &mut rng);
            }
            black_box(topo.len())
        })
    });
}

fn profile() -> NodeProfile {
    NodeProfile::new(Architecture::Amd64, OperatingSystem::Linux, 8, 8, PerfIndex::BASELINE)
}

fn batch_job(id: u64, mins: u64) -> JobSpec {
    let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
    JobSpec::batch(JobId::new(id), req, SimDuration::from_mins(mins))
}

fn deadline_job(id: u64, mins: u64, deadline_mins: u64) -> JobSpec {
    let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
    JobSpec::with_deadline(
        JobId::new(id),
        req,
        SimDuration::from_mins(mins),
        SimTime::from_mins(deadline_mins),
    )
}

fn scheduler_queue_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_queue");
    for policy in [Policy::Fcfs, Policy::Sjf, Policy::Edf] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut queue = SchedulerQueue::new(policy);
                    let p = profile();
                    for i in 0..100u64 {
                        let job = if policy == Policy::Edf {
                            deadline_job(i, 60 + i, 600 + 7 * i)
                        } else {
                            batch_job(i, 60 + (i * 37) % 180)
                        };
                        queue.enqueue(job, SimTime::from_mins(i), &p);
                    }
                    while queue.start_next(SimTime::ZERO).is_some() {
                        queue.complete_running();
                    }
                    black_box(queue.is_idle())
                })
            },
        );
    }
    group.finish();
}

fn cost_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_function");
    // ETTC over a 50-deep SJF queue.
    group.bench_function("ettc_depth50", |b| {
        let mut queue = SchedulerQueue::new(Policy::Sjf);
        let p = profile();
        for i in 0..50u64 {
            queue.enqueue(batch_job(i, 60 + (i * 13) % 120), SimTime::ZERO, &p);
        }
        let candidate = batch_job(999, 90);
        b.iter(|| black_box(queue.ettc_of_candidate(&candidate, SimTime::from_mins(5), &p)))
    });
    // NAL over a 50-deep EDF queue (quadratic-ish: full queue walk).
    group.bench_function("nal_depth50", |b| {
        let mut queue = SchedulerQueue::new(Policy::Edf);
        let p = profile();
        for i in 0..50u64 {
            queue.enqueue(deadline_job(i, 60, 600 + 11 * i), SimTime::ZERO, &p);
        }
        let candidate = deadline_job(999, 90, 900);
        b.iter(|| black_box(queue.nal_of_candidate(&candidate, SimTime::from_mins(5), &p)))
    });
    group.finish();
}

fn event_queue_throughput(c: &mut Criterion) {
    c.bench_function("event_queue_100k", |b| {
        b.iter(|| {
            let mut queue = EventQueue::new();
            for i in 0..100_000u64 {
                queue.schedule(SimTime::from_millis((i * 7919) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = queue.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
}

fn workload_generation(c: &mut Criterion) {
    c.bench_function("workload_1000_feasible_jobs", |b| {
        let mut rng = SimRng::seed_from(3);
        let grid = ProfileGenerator::paper().generate_many(500, &mut rng);
        b.iter(|| {
            let mut generator = JobGenerator::paper_batch();
            let mut rng = SimRng::seed_from(4);
            let jobs: Vec<JobSpec> = (0..1000)
                .map(|_| generator.generate_feasible(SimTime::ZERO, &grid, &mut rng))
                .collect();
            black_box(jobs.len())
        })
    });
}

fn full_small_simulation(c: &mut Criterion) {
    // The end-to-end unit of all figure benches: one small world run.
    c.bench_function("world_60n_60j", |b| {
        b.iter(|| {
            let mut world = World::new(WorldConfig::small_test(60), 1);
            let mut jobs = JobGenerator::paper_batch();
            let schedule =
                SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_secs(30), 60);
            world.submit_schedule(&schedule, &mut jobs);
            world.run();
            black_box(world.metrics().completed_count())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = overlay_build, overlay_join, scheduler_queue_ops, cost_functions,
        event_queue_throughput, workload_generation, full_small_simulation
}
criterion_main!(benches);
