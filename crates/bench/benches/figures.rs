//! One benchmark per paper artifact: each target runs the (scaled-down)
//! simulation campaign that regenerates the corresponding table/figure,
//! so `cargo bench` exercises every experiment path end to end.
//!
//! For the full-scale numbers, run the reproduction harness instead:
//! `cargo run --release -p aria-scenarios --bin reproduce -- all`.

use aria_scenarios::{Campaign, Runner, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Scaled-down campaign shared by the table benches: 40 nodes, 40 jobs,
/// one seed, so a bench iteration stays in the tens of milliseconds.
fn campaign() -> Campaign {
    Campaign::new(Runner::scaled(40, 40).workers(1), vec![1])
}

fn bench_artifact(c: &mut Criterion, id: &str) {
    c.bench_function(&format!("{id}_campaign"), |b| {
        b.iter(|| {
            let mut campaign = campaign();
            black_box(campaign.render(id).expect("known artifact"))
        })
    });
}

fn table1(c: &mut Criterion) {
    bench_artifact(c, "table1");
}

fn table2(c: &mut Criterion) {
    bench_artifact(c, "table2");
}

fn fig01_completed_jobs(c: &mut Criterion) {
    // Figures 1-3 share the six policy scenarios; each figure bench runs
    // a representative pair to keep total bench time sane.
    c.bench_function("fig01_completed_jobs", |b| {
        b.iter(|| {
            let runner = Runner::scaled(40, 40).workers(1);
            black_box(runner.run_many(&[Scenario::Mixed, Scenario::IMixed], &[1]))
        })
    });
}

fn fig02_completion_time(c: &mut Criterion) {
    c.bench_function("fig02_completion_time", |b| {
        b.iter(|| {
            let runner = Runner::scaled(40, 40).workers(1);
            let results = runner.run_many(&[Scenario::Sjf, Scenario::ISjf], &[1]);
            black_box(results.iter().map(|r| r.completion().mean()).collect::<Vec<_>>())
        })
    });
}

fn fig03_idle_nodes(c: &mut Criterion) {
    c.bench_function("fig03_idle_nodes", |b| {
        b.iter(|| {
            let runner = Runner::scaled(40, 40).workers(1);
            let results = runner.run_many(&[Scenario::Fcfs, Scenario::IFcfs], &[1]);
            black_box(results.iter().map(|r| r.avg_idle_series()).collect::<Vec<_>>())
        })
    });
}

fn fig04_deadlines(c: &mut Criterion) {
    c.bench_function("fig04_deadlines", |b| {
        b.iter(|| {
            let runner = Runner::scaled(40, 40).workers(1);
            let results = runner.run_many(&[Scenario::DeadlineH, Scenario::IDeadlineH], &[1]);
            black_box(results.iter().map(|r| r.avg_missed_deadlines()).collect::<Vec<_>>())
        })
    });
}

fn fig05_expanding(c: &mut Criterion) {
    c.bench_function("fig05_expanding", |b| {
        b.iter(|| {
            let runner = Runner::scaled(40, 40).workers(1);
            black_box(runner.run_many(&[Scenario::IExpanding], &[1]))
        })
    });
}

fn fig06_load_idle(c: &mut Criterion) {
    c.bench_function("fig06_load_idle", |b| {
        b.iter(|| {
            let runner = Runner::scaled(40, 40).workers(1);
            black_box(runner.run_many(&[Scenario::LowLoad, Scenario::IHighLoad], &[1]))
        })
    });
}

fn fig07_load_completion(c: &mut Criterion) {
    c.bench_function("fig07_load_completion", |b| {
        b.iter(|| {
            let runner = Runner::scaled(40, 40).workers(1);
            let results = runner.run_many(&[Scenario::HighLoad, Scenario::IHighLoad], &[1]);
            black_box(results.iter().map(|r| r.completion().mean()).collect::<Vec<_>>())
        })
    });
}

fn fig08_resched_policies(c: &mut Criterion) {
    c.bench_function("fig08_resched_policies", |b| {
        b.iter(|| {
            let runner = Runner::scaled(40, 40).workers(1);
            black_box(runner.run_many(&[Scenario::IInform1, Scenario::IInform4], &[1]))
        })
    });
}

fn fig09_ert_accuracy(c: &mut Criterion) {
    c.bench_function("fig09_ert_accuracy", |b| {
        b.iter(|| {
            let runner = Runner::scaled(40, 40).workers(1);
            black_box(runner.run_many(&[Scenario::IPrecise, Scenario::IAccuracyBad], &[1]))
        })
    });
}

fn fig10_traffic(c: &mut Criterion) {
    c.bench_function("fig10_traffic", |b| {
        b.iter(|| {
            let runner = Runner::scaled(40, 40).workers(1);
            let results = runner.run_many(&[Scenario::IMixed], &[1]);
            black_box(results[0].avg_total_bytes())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = table1, table2, fig01_completed_jobs, fig02_completion_time,
        fig03_idle_nodes, fig04_deadlines, fig05_expanding, fig06_load_idle,
        fig07_load_completion, fig08_resched_policies, fig09_ert_accuracy,
        fig10_traffic
}
criterion_main!(benches);
