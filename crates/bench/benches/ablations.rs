//! Ablation benches for the design choices called out in DESIGN.md §7:
//! REQUEST flood semantics, overlay family, local-scheduler extensions,
//! and the distributed protocol against the omniscient centralized
//! baseline. Each bench measures the full (scaled-down) simulation; the
//! interesting output is both the wall time and the printed quality
//! metric.

use aria_core::{
    CentralScheduler, GossipScheduler, MultiRequestScheduler, PolicyMix, ReservationPlan, World,
    WorldConfig,
};
use aria_grid::Policy;
use aria_overlay::{builders, LatencyModel, Topology};
use aria_sim::{SimDuration, SimRng, SimTime};
use aria_workload::{JobGenerator, SubmissionSchedule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn run_world(mut config: WorldConfig, seed: u64) -> f64 {
    let mut world = World::new(std::mem::replace(&mut config, WorldConfig::small_test(1)), seed);
    let mut jobs = JobGenerator::paper_batch();
    let schedule =
        SubmissionSchedule::new(SimTime::from_mins(2), SimDuration::from_secs(20), 80);
    world.submit_schedule(&schedule, &mut jobs);
    world.run();
    world.metrics().completion_summary().mean()
}

/// DESIGN.md ablation 1: matching nodes forwarding the flood vs. not.
fn ablate_forward_on_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_forward_on_match");
    for forward in [false, true] {
        group.bench_with_input(BenchmarkId::from_parameter(forward), &forward, |b, &forward| {
            b.iter(|| {
                let mut config = WorldConfig::small_test(60);
                config.aria.forward_on_match = forward;
                black_box(run_world(config, 1))
            })
        });
    }
    group.finish();
}

/// DESIGN.md ablation 2 is covered by Figure 8 (reschedule thresholds).
/// DESIGN.md ablation 3: overlay family (the paper's §VI future work).
/// An overlay construction function under benchmark.
type OverlayBuilder = fn(&mut SimRng) -> Topology;

fn ablate_overlay(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_overlay");
    let families: [(&str, OverlayBuilder); 3] = [
        ("random_regular", |rng| builders::random_regular(60, 4, &LatencyModel::default(), rng)),
        ("ring", |rng| builders::ring(60, &LatencyModel::default(), rng)),
        ("small_world", |rng| {
            builders::watts_strogatz(60, 4, 0.2, &LatencyModel::default(), rng)
        }),
    ];
    // The Blatant overlay is what World builds internally; benchmark the
    // alternatives' graph quality via their average path length inside a
    // flood-heavy metric: path length drives flood reach.
    for (name, build) in families {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let mut rng = SimRng::seed_from(7);
                let topo = build(&mut rng);
                black_box((topo.avg_path_length(), topo.avg_degree()))
            })
        });
    }
    group.finish();
}

/// DESIGN.md ablation 4: local-scheduler extensions (LJF, Priority).
fn ablate_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_schedulers");
    for policy in [Policy::Fcfs, Policy::Sjf, Policy::Ljf, Policy::Priority] {
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |b, &policy| {
            b.iter(|| {
                let mut config = WorldConfig::small_test(60);
                config.policies = PolicyMix::Uniform(policy);
                black_box(run_world(config, 2))
            })
        });
    }
    group.finish();
}

/// Reservation-load ablation (paper future work §VI): strict FCFS vs.
/// EASY backfill under advance reservations.
fn ablate_reservations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_reservations");
    for policy in [Policy::Fcfs, Policy::Backfill] {
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |b, &policy| {
            b.iter(|| {
                let mut config = WorldConfig::small_test(60);
                config.policies = PolicyMix::Uniform(policy);
                config.reservations = Some(ReservationPlan::moderate());
                black_box(run_world(config, 4))
            })
        });
    }
    group.finish();
}

/// DESIGN.md ablation 5: ARiA vs. the omniscient centralized baseline
/// and the multiple-simultaneous-requests scheme (paper reference [13]).
fn ablate_central(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_baselines");
    group.bench_function("aria_distributed", |b| {
        b.iter(|| black_box(run_world(WorldConfig::small_test(60), 3)))
    });
    group.bench_function("central_omniscient", |b| {
        b.iter(|| {
            let mut central = CentralScheduler::new(
                60,
                PolicyMix::paper_mixed(),
                SimTime::from_hours(12),
                SimDuration::from_mins(5),
                3,
            );
            let mut jobs = JobGenerator::paper_batch();
            let schedule =
                SubmissionSchedule::new(SimTime::from_mins(2), SimDuration::from_secs(20), 80);
            central.submit_schedule(&schedule, &mut jobs);
            central.run();
            black_box(central.metrics().completion_summary().mean())
        })
    });
    group.bench_function("gossip_caches", |b| {
        b.iter(|| {
            let mut grid = GossipScheduler::new(
                60,
                PolicyMix::paper_mixed(),
                SimTime::from_hours(12),
                SimDuration::from_mins(5),
                3,
            );
            let mut jobs = JobGenerator::paper_batch();
            let schedule =
                SubmissionSchedule::new(SimTime::from_mins(2), SimDuration::from_secs(20), 80);
            grid.submit_schedule(&schedule, &mut jobs);
            grid.run();
            black_box(grid.metrics().completion_summary().mean())
        })
    });
    group.bench_function("multireq_k3", |b| {
        b.iter(|| {
            let mut grid = MultiRequestScheduler::new(
                60,
                PolicyMix::paper_mixed(),
                3,
                SimTime::from_hours(12),
                SimDuration::from_mins(5),
                3,
            );
            let mut jobs = JobGenerator::paper_batch();
            let schedule =
                SubmissionSchedule::new(SimTime::from_mins(2), SimDuration::from_secs(20), 80);
            grid.submit_schedule(&schedule, &mut jobs);
            grid.run();
            black_box(grid.metrics().completion_summary().mean())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = ablate_forward_on_match, ablate_overlay, ablate_schedulers,
        ablate_reservations, ablate_central
}
criterion_main!(benches);
