//! Scale benchmark harness: events/sec and peak RSS at 5k/50k/500k
//! nodes, written to `BENCH_scale.json`.
//!
//! Each tier runs a mixed-policy world with dynamic rescheduling (the
//! iMixed protocol setting) over a `random-regular(4)` overlay — the
//! O(n·d) builder, because the BLATANT-S convergence loop is superlinear
//! in `n` and stops being tractable past a few thousand nodes (see
//! DESIGN.md §12). Job counts shrink as tiers grow so a tier measures
//! protocol throughput, not submission volume.
//!
//! Peak RSS is a *process-wide* high-water mark (`VmHWM` in
//! `/proc/self/status`), so the driver runs every tier in its own child
//! process; a tier that dies or exceeds its time budget is reported as
//! failed instead of sinking the whole run.
//!
//! ```text
//! cargo run --release -p aria-bench --bin bench_scale            # all tiers -> BENCH_scale.json
//! cargo run --release -p aria-bench --bin bench_scale -- --tier 5000   # one tier, JSON to stdout
//! cargo run --release -p aria-bench --bin bench_scale -- \
//!     --tier 5000 --min-events-per-sec 500000 --max-peak-rss-mb 2048   # CI smoke gate
//! ```

// Measuring wall time and spawning timed subprocesses is this harness's
// entire purpose; the workspace determinism ban on `Instant` (clippy.toml,
// mirrored by `cargo xtask lint`) deliberately does not apply here.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use aria_core::{OverlayKind, World, WorldConfig};
use aria_sim::{SimDuration, SimTime};
use aria_workload::{JobGenerator, SubmissionSchedule};
use std::time::{Duration, Instant};

const SEED: u64 = 1;
const TIERS: &[usize] = &[5_000, 50_000, 500_000];
/// Wall-clock budget per tier before the driver kills the child and
/// reports the tier as failed (the 500k tier is an *attempt* by design).
const TIER_TIMEOUT: Duration = Duration::from_secs(1500);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flag_value(&args, "--tier") {
        Some(nodes) => run_tier(nodes, &args),
        None => run_driver(&args),
    }
}

/// `--flag N` lookup; panics on a malformed value.
fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    let at = args.iter().position(|a| a == flag)?;
    let raw = args.get(at + 1).unwrap_or_else(|| panic!("{flag} needs a value"));
    Some(raw.parse().unwrap_or_else(|_| panic!("{flag} value {raw:?} is not a number")))
}

/// Jobs submitted at a tier: enough to load the grid, scaled down as
/// floods get bigger (a saturating REQUEST flood costs O(min(N, fanout ·
/// branching^hops)) messages, so events/job grows with N).
fn tier_jobs(nodes: usize) -> usize {
    match nodes {
        n if n <= 5_000 => 2_000,
        n if n <= 50_000 => 1_000,
        _ => 200,
    }
}

/// The world a tier runs: paper protocol parameters, mixed FCFS/SJF
/// policies, rescheduling on, 12h horizon, scalable overlay.
fn tier_config(nodes: usize) -> WorldConfig {
    WorldConfig {
        nodes,
        overlay: OverlayKind::RandomRegular { degree: 4 },
        horizon: SimTime::from_hours(12),
        ..WorldConfig::paper_baseline()
    }
}

/// Worker mode: one tier in this process, a single JSON object to
/// stdout, progress to stderr. Exits non-zero if a `--min-events-per-sec`
/// floor or `--max-peak-rss-mb` ceiling (the CI smoke gate) is violated.
fn run_tier(nodes: usize, args: &[String]) {
    let jobs = tier_jobs(nodes);
    eprintln!("bench_scale: tier {nodes} nodes, {jobs} jobs, seed {SEED}");
    let build_start = Instant::now();
    let mut world = World::new(tier_config(nodes), SEED);
    let build_secs = build_start.elapsed().as_secs_f64();
    let schedule = SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_secs(10), jobs);
    let mut generator = JobGenerator::paper_batch();
    world.submit_schedule(&schedule, &mut generator);

    let run_start = Instant::now();
    world.run();
    let run_secs = run_start.elapsed().as_secs_f64();

    let events = world.processed_events();
    let eps = events as f64 / run_secs;
    let (flood_slots, spilled) = world.flood_stats();
    let completed = world.metrics().completed_count();
    let messages = world.metrics().traffic().total_messages();
    let peak_rss_kb = peak_rss_kb();
    let json = format!(
        "{{ \"nodes\": {nodes}, \"jobs\": {jobs}, \"overlay\": \"random-regular-4\", \
         \"horizon_hours\": 12, \"build_secs\": {build_secs:.3}, \"run_secs\": {run_secs:.3}, \
         \"events\": {events}, \"events_per_sec\": {eps:.0}, \"completed\": {completed}, \
         \"messages\": {messages}, \"flood_slots\": {flood_slots}, \
         \"spilled_flood_slots\": {spilled}, \"peak_rss_mb\": {rss:.1} }}",
        rss = peak_rss_kb as f64 / 1024.0,
    );
    println!("{json}");
    eprintln!(
        "bench_scale: tier {nodes}: {events} events in {run_secs:.1}s ({eps:.0}/s), \
         peak RSS {:.0} MB, {flood_slots} flood slot(s), {spilled} spilled",
        peak_rss_kb as f64 / 1024.0
    );

    let mut violations = 0;
    if let Some(floor) = flag_value(args, "--min-events-per-sec") {
        if eps < floor as f64 {
            eprintln!("bench_scale: FAIL {eps:.0} events/s under the {floor} floor");
            violations += 1;
        }
    }
    if let Some(ceiling) = flag_value(args, "--max-peak-rss-mb") {
        if peak_rss_kb > ceiling as u64 * 1024 {
            eprintln!(
                "bench_scale: FAIL peak RSS {:.0} MB over the {ceiling} MB ceiling",
                peak_rss_kb as f64 / 1024.0
            );
            violations += 1;
        }
    }
    if violations > 0 {
        std::process::exit(1);
    }
}

/// Driver mode: every tier in a fresh child process (per-tier `VmHWM`),
/// results assembled into one JSON report.
fn run_driver(args: &[String]) {
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let exe = std::env::current_exe().expect("own executable path");
    let mut tiers = Vec::new();
    for &nodes in TIERS {
        match run_tier_process(&exe, nodes) {
            Ok(line) => tiers.push(format!("    {line}")),
            Err(reason) => {
                eprintln!("bench_scale: tier {nodes} failed: {reason}");
                tiers.push(format!(
                    "    {{ \"nodes\": {nodes}, \"jobs\": {}, \"failed\": \"{reason}\" }}",
                    tier_jobs(nodes)
                ));
            }
        }
    }
    let json = format!(
        "{{\n  \"benchmark\": \"bench_scale\",\n  \"seed\": {SEED},\n  \
         \"tier_timeout_secs\": {},\n  \"tiers\": [\n{}\n  ]\n}}\n",
        TIER_TIMEOUT.as_secs(),
        tiers.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("bench_scale: report -> {out_path}");
    print!("{json}");
}

/// Runs one tier as a child process under the tier time budget; returns
/// the tier's JSON line from its stdout.
fn run_tier_process(exe: &std::path::Path, nodes: usize) -> Result<String, String> {
    let mut child = std::process::Command::new(exe)
        .arg("--tier")
        .arg(nodes.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn: {e}"))?;
    let start = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) if status.success() => break,
            Ok(Some(status)) => return Err(format!("exit status {status}")),
            Ok(None) if start.elapsed() > TIER_TIMEOUT => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("timed out after {}s", TIER_TIMEOUT.as_secs()));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(200)),
            Err(e) => return Err(format!("wait: {e}")),
        }
    }
    let mut out = String::new();
    use std::io::Read as _;
    child
        .stdout
        .take()
        .expect("piped stdout")
        .read_to_string(&mut out)
        .map_err(|e| format!("read stdout: {e}"))?;
    let line = out.lines().find(|l| l.trim_start().starts_with('{'));
    line.map(str::to_string).ok_or_else(|| "no JSON line on stdout".to_string())
}

/// This process's peak resident set (`VmHWM`) in kB, from
/// `/proc/self/status`; 0 when unavailable (non-Linux).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().unwrap_or(0);
        }
    }
    0
}
