//! Scale benchmark harness: events/sec and peak RSS at 5k/50k/500k
//! nodes, written to `BENCH_scale.json`.
//!
//! Each tier runs a mixed-policy world with dynamic rescheduling (the
//! iMixed protocol setting) over a `random-regular(4)` overlay — the
//! O(n·d) builder, because the BLATANT-S convergence loop is superlinear
//! in `n` and stops being tractable past a few thousand nodes (see
//! DESIGN.md §12). Job counts shrink as tiers grow so a tier measures
//! protocol throughput, not submission volume.
//!
//! Peak RSS is a *process-wide* high-water mark (`VmHWM` in
//! `/proc/self/status`), so the driver runs every tier in its own child
//! process; a tier that dies or exceeds its time budget is reported as
//! failed instead of sinking the whole run.
//!
//! The `--threads` axis measures parallel throughput on the mid (50k)
//! tier along two lanes: *aggregate* — N independent worlds run
//! concurrently on scoped threads (the `Runner::run_many` shape) — and
//! *sharded* — one world under the latency-horizon executor
//! (`World::run_sharded`, bit-identical to serial by construction).
//! `--parallel` sweeps thread counts and writes `BENCH_parallel.json`.
//! Both reports record the host's core count: on a single-core runner
//! the speedup floor gate is informational only, because no executor
//! can beat physics.
//!
//! ```text
//! cargo run --release -p aria-bench --bin bench_scale            # all tiers -> BENCH_scale.json
//! cargo run --release -p aria-bench --bin bench_scale -- --tier 5000   # one tier, JSON to stdout
//! cargo run --release -p aria-bench --bin bench_scale -- \
//!     --tier 5000 --min-events-per-sec 500000 --max-peak-rss-mb 2048   # CI smoke gate
//! cargo run --release -p aria-bench --bin bench_scale -- --parallel    # -> BENCH_parallel.json
//! cargo run --release -p aria-bench --bin bench_scale -- \
//!     --threads 4 --min-thread-speedup 2                               # CI parallel smoke gate
//! ```

// Measuring wall time and spawning timed subprocesses is this harness's
// entire purpose; the workspace determinism ban on `Instant` (clippy.toml,
// mirrored by `cargo xtask lint`) deliberately does not apply here.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use aria_core::{OverlayKind, World, WorldConfig};
use aria_sim::{SimDuration, SimTime};
use aria_workload::{JobGenerator, SubmissionSchedule};
use std::time::{Duration, Instant};

const SEED: u64 = 1;
const TIERS: &[usize] = &[5_000, 50_000, 500_000];
/// Wall-clock budget per tier before the driver kills the child and
/// reports the tier as failed (the 500k tier is an *attempt* by design).
const TIER_TIMEOUT: Duration = Duration::from_secs(1500);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(threads) = flag_value(&args, "--threads") {
        return run_threads(threads.max(1), &args);
    }
    if args.iter().any(|a| a == "--parallel") {
        return run_parallel_driver(&args);
    }
    match flag_value(&args, "--tier") {
        Some(nodes) => run_tier(nodes, &args),
        None => run_driver(&args),
    }
}

/// Host core count as the scheduler sees it (cgroup/affinity aware).
fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// `--flag N` lookup; panics on a malformed value.
fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    let at = args.iter().position(|a| a == flag)?;
    let raw = args.get(at + 1).unwrap_or_else(|| panic!("{flag} needs a value"));
    Some(raw.parse().unwrap_or_else(|_| panic!("{flag} value {raw:?} is not a number")))
}

/// Jobs submitted at a tier: enough to load the grid, scaled down as
/// floods get bigger (a saturating REQUEST flood costs O(min(N, fanout ·
/// branching^hops)) messages, so events/job grows with N).
fn tier_jobs(nodes: usize) -> usize {
    match nodes {
        n if n <= 5_000 => 2_000,
        n if n <= 50_000 => 1_000,
        _ => 200,
    }
}

/// The world a tier runs: paper protocol parameters, mixed FCFS/SJF
/// policies, rescheduling on, 12h horizon, scalable overlay.
fn tier_config(nodes: usize) -> WorldConfig {
    WorldConfig {
        nodes,
        overlay: OverlayKind::RandomRegular { degree: 4 },
        horizon: SimTime::from_hours(12),
        ..WorldConfig::paper_baseline()
    }
}

/// Worker mode: one tier in this process, a single JSON object to
/// stdout, progress to stderr. Exits non-zero if a `--min-events-per-sec`
/// floor or `--max-peak-rss-mb` ceiling (the CI smoke gate) is violated.
fn run_tier(nodes: usize, args: &[String]) {
    let jobs = tier_jobs(nodes);
    eprintln!("bench_scale: tier {nodes} nodes, {jobs} jobs, seed {SEED}");
    let build_start = Instant::now();
    let mut world = World::new(tier_config(nodes), SEED);
    let build_secs = build_start.elapsed().as_secs_f64();
    let schedule = SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_secs(10), jobs);
    let mut generator = JobGenerator::paper_batch();
    world.submit_schedule(&schedule, &mut generator);

    let run_start = Instant::now();
    world.run();
    let run_secs = run_start.elapsed().as_secs_f64();

    let events = world.processed_events();
    let eps = events as f64 / run_secs;
    let (flood_slots, spilled) = world.flood_stats();
    let completed = world.metrics().completed_count();
    let messages = world.metrics().traffic().total_messages();
    let peak_rss_kb = peak_rss_kb();
    let json = format!(
        "{{ \"nodes\": {nodes}, \"jobs\": {jobs}, \"overlay\": \"random-regular-4\", \
         \"horizon_hours\": 12, \"build_secs\": {build_secs:.3}, \"run_secs\": {run_secs:.3}, \
         \"events\": {events}, \"events_per_sec\": {eps:.0}, \"completed\": {completed}, \
         \"messages\": {messages}, \"flood_slots\": {flood_slots}, \
         \"spilled_flood_slots\": {spilled}, \"peak_rss_mb\": {rss:.1} }}",
        rss = peak_rss_kb as f64 / 1024.0,
    );
    println!("{json}");
    eprintln!(
        "bench_scale: tier {nodes}: {events} events in {run_secs:.1}s ({eps:.0}/s), \
         peak RSS {:.0} MB, {flood_slots} flood slot(s), {spilled} spilled",
        peak_rss_kb as f64 / 1024.0
    );

    let mut violations = 0;
    if let Some(floor) = flag_value(args, "--min-events-per-sec") {
        if eps < floor as f64 {
            eprintln!("bench_scale: FAIL {eps:.0} events/s under the {floor} floor");
            violations += 1;
        }
    }
    if let Some(ceiling) = flag_value(args, "--max-peak-rss-mb") {
        if peak_rss_kb > ceiling as u64 * 1024 {
            eprintln!(
                "bench_scale: FAIL peak RSS {:.0} MB over the {ceiling} MB ceiling",
                peak_rss_kb as f64 / 1024.0
            );
            violations += 1;
        }
    }
    if violations > 0 {
        std::process::exit(1);
    }
}

/// The fixed workload of the parallel axis: the mid tier of the scale
/// sweep, so `BENCH_parallel.json` is directly comparable to
/// `BENCH_scale.json`'s 50k entry.
const PARALLEL_NODES: usize = 50_000;

/// Builds one parallel-axis world, workload already submitted.
fn parallel_world(seed: u64) -> World {
    let jobs = tier_jobs(PARALLEL_NODES);
    let mut world = World::new(tier_config(PARALLEL_NODES), seed);
    let schedule = SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_secs(10), jobs);
    let mut generator = JobGenerator::paper_batch();
    world.submit_schedule(&schedule, &mut generator);
    world
}

/// One serial reference run: (events, run seconds).
fn measure_serial() -> (u64, f64) {
    let mut world = parallel_world(SEED);
    let start = Instant::now();
    world.run();
    (world.processed_events(), start.elapsed().as_secs_f64())
}

/// Aggregate lane: `threads` independent worlds (distinct seeds) run
/// concurrently, one scoped thread each — the multi-scenario shape of
/// `Runner::run_many`, measured without the pool cap because the axis
/// exists precisely to chart raw thread scaling. Returns (total events,
/// wall seconds over all runs).
fn measure_aggregate(threads: usize) -> (u64, f64) {
    let mut worlds: Vec<World> = (0..threads as u64).map(|i| parallel_world(SEED + 1 + i)).collect();
    let start = Instant::now();
    let events: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = worlds
            .iter_mut()
            .map(|world| {
                scope.spawn(|| {
                    world.run();
                    world.processed_events()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("bench world thread panicked")).sum()
    });
    (events, start.elapsed().as_secs_f64())
}

/// Sharded lane: one world under the latency-horizon executor with
/// `threads` shards (bit-identical to serial; only wall time may move).
fn measure_sharded(threads: usize) -> (u64, f64) {
    let mut world = parallel_world(SEED);
    let start = Instant::now();
    world.run_sharded(threads);
    (world.processed_events(), start.elapsed().as_secs_f64())
}

/// One thread-count entry of the parallel report, as a JSON line.
fn threads_entry(threads: usize, serial_eps: f64) -> String {
    let (agg_events, agg_secs) = measure_aggregate(threads);
    let agg_eps = agg_events as f64 / agg_secs;
    let (shard_events, shard_secs) = measure_sharded(threads);
    let shard_eps = shard_events as f64 / shard_secs;
    eprintln!(
        "bench_scale: threads {threads}: aggregate {agg_eps:.0} ev/s ({:.2}x), \
         sharded {shard_eps:.0} ev/s ({:.2}x)",
        agg_eps / serial_eps,
        shard_eps / serial_eps,
    );
    format!(
        "{{ \"threads\": {threads}, \"aggregate_events\": {agg_events}, \
         \"aggregate_wall_secs\": {agg_secs:.3}, \"aggregate_events_per_sec\": {agg_eps:.0}, \
         \"aggregate_speedup\": {agg_speedup:.3}, \"sharded_events\": {shard_events}, \
         \"sharded_wall_secs\": {shard_secs:.3}, \"sharded_events_per_sec\": {shard_eps:.0}, \
         \"sharded_speedup\": {shard_speedup:.3} }}",
        agg_speedup = agg_eps / serial_eps,
        shard_speedup = shard_eps / serial_eps,
    )
}

/// `--threads N` — the CI parallel smoke gate: serial reference plus one
/// thread-count entry. `--min-thread-speedup X` fails the run when the
/// aggregate lane scales worse than `X` — enforced only on multi-core
/// hosts, since a single core cannot exhibit wall-clock speedup.
fn run_threads(threads: usize, args: &[String]) {
    let cores = cores();
    eprintln!(
        "bench_scale: parallel axis, {threads} thread(s) on {cores} core(s), \
         {PARALLEL_NODES} nodes, {} jobs, seed {SEED}",
        tier_jobs(PARALLEL_NODES)
    );
    let (serial_events, serial_secs) = measure_serial();
    let serial_eps = serial_events as f64 / serial_secs;
    eprintln!("bench_scale: serial reference {serial_eps:.0} ev/s ({serial_events} events)");
    let entry = threads_entry(threads, serial_eps);
    println!(
        "{{ \"benchmark\": \"bench_parallel\", \"cores\": {cores}, \
         \"serial_events_per_sec\": {serial_eps:.0}, \"entry\": {entry} }}"
    );
    if let Some(floor) = flag_value(args, "--min-thread-speedup") {
        // Re-derive the measured aggregate speedup from the entry line
        // is needless — recompute from the parts we just printed.
        let agg_speedup = entry
            .split("\"aggregate_speedup\": ")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|v| v.trim().parse::<f64>().ok())
            .expect("own JSON carries aggregate_speedup");
        if cores < 2 {
            eprintln!(
                "bench_scale: --min-thread-speedup {floor} not enforced on a \
                 single-core host (measured {agg_speedup:.2}x)"
            );
        } else if agg_speedup < floor as f64 {
            eprintln!(
                "bench_scale: FAIL aggregate speedup {agg_speedup:.2}x under the {floor}x floor"
            );
            std::process::exit(1);
        }
    }
}

/// `--parallel` — sweeps the thread axis and writes `BENCH_parallel.json`.
fn run_parallel_driver(args: &[String]) {
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let cores = cores();
    eprintln!(
        "bench_scale: parallel sweep on {cores} core(s), {PARALLEL_NODES} nodes, {} jobs",
        tier_jobs(PARALLEL_NODES)
    );
    let (serial_events, serial_secs) = measure_serial();
    let serial_eps = serial_events as f64 / serial_secs;
    eprintln!("bench_scale: serial reference {serial_eps:.0} ev/s ({serial_events} events)");
    let entries: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&threads| format!("    {}", threads_entry(threads, serial_eps)))
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"bench_parallel\",\n  \"seed\": {SEED},\n  \"cores\": {cores},\n  \
         \"nodes\": {PARALLEL_NODES},\n  \"jobs\": {},\n  \
         \"serial_events\": {serial_events},\n  \"serial_run_secs\": {serial_secs:.3},\n  \
         \"serial_events_per_sec\": {serial_eps:.0},\n  \"threads\": [\n{}\n  ]\n}}\n",
        tier_jobs(PARALLEL_NODES),
        entries.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("bench_scale: report -> {out_path}");
    print!("{json}");
}

/// Driver mode: every tier in a fresh child process (per-tier `VmHWM`),
/// results assembled into one JSON report.
fn run_driver(args: &[String]) {
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let exe = std::env::current_exe().expect("own executable path");
    let mut tiers = Vec::new();
    for &nodes in TIERS {
        match run_tier_process(&exe, nodes) {
            Ok(line) => tiers.push(format!("    {line}")),
            Err(reason) => {
                eprintln!("bench_scale: tier {nodes} failed: {reason}");
                tiers.push(format!(
                    "    {{ \"nodes\": {nodes}, \"jobs\": {}, \"failed\": \"{reason}\" }}",
                    tier_jobs(nodes)
                ));
            }
        }
    }
    let json = format!(
        "{{\n  \"benchmark\": \"bench_scale\",\n  \"seed\": {SEED},\n  \
         \"tier_timeout_secs\": {},\n  \"tiers\": [\n{}\n  ]\n}}\n",
        TIER_TIMEOUT.as_secs(),
        tiers.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("bench_scale: report -> {out_path}");
    print!("{json}");
}

/// Runs one tier as a child process under the tier time budget; returns
/// the tier's JSON line from its stdout.
fn run_tier_process(exe: &std::path::Path, nodes: usize) -> Result<String, String> {
    let mut child = std::process::Command::new(exe)
        .arg("--tier")
        .arg(nodes.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn: {e}"))?;
    let start = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) if status.success() => break,
            Ok(Some(status)) => return Err(format!("exit status {status}")),
            Ok(None) if start.elapsed() > TIER_TIMEOUT => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("timed out after {}s", TIER_TIMEOUT.as_secs()));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(200)),
            Err(e) => return Err(format!("wait: {e}")),
        }
    }
    let mut out = String::new();
    use std::io::Read as _;
    child
        .stdout
        .take()
        .expect("piped stdout")
        .read_to_string(&mut out)
        .map_err(|e| format!("read stdout: {e}"))?;
    let line = out.lines().find(|l| l.trim_start().starts_with('{'));
    line.map(str::to_string).ok_or_else(|| "no JSON line on stdout".to_string())
}

/// This process's peak resident set (`VmHWM`) in kB, from
/// `/proc/self/status`; 0 when unavailable (non-Linux).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().unwrap_or(0);
        }
    }
    0
}
