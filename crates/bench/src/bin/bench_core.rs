//! Hot-path benchmark harness: times paper-scale `World::run` and writes
//! the numbers to `BENCH_core.json`.
//!
//! Runs the iMixed scenario (the paper's baseline: 500 mixed-policy nodes
//! with dynamic rescheduling) end to end a few times, reports wall time
//! and event throughput, and records a metrics fingerprint so before/after
//! comparisons can also prove the run is bit-for-bit unchanged.
//!
//! ```text
//! cargo run --release -p aria-bench --bin bench_core [-- OUTPUT.json]
//! ```

// Measuring wall time is this harness's entire purpose: it times the
// simulation from outside and never feeds a reading back in, so the
// workspace-wide determinism ban on `Instant` (clippy.toml, mirrored by
// `cargo xtask lint`) deliberately does not apply here.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use aria_scenarios::Scenario;
use aria_workload::JobGenerator;
use std::time::Instant;

const SEED: u64 = 1;
const RUNS: usize = 5;

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_core.json".to_string());
    let scenario = Scenario::IMixed;
    let config = scenario.world_config();
    let nodes = config.nodes;
    let schedule = scenario.submission_schedule();
    let jobs = schedule.count();

    eprintln!("bench_core: {scenario} at {nodes} nodes, {jobs} jobs, seed {SEED}, {RUNS} runs");

    // One untimed warm-up run, which also provides the fingerprint.
    let (fingerprint, _, events) = run_once(scenario, SEED);

    let mut wall_secs = Vec::with_capacity(RUNS);
    for i in 0..RUNS {
        let (fp, secs, _) = run_once(scenario, SEED);
        assert_eq!(fp, fingerprint, "run {i} diverged from warm-up fingerprint");
        eprintln!("  run {i}: {secs:.3}s ({:.0} events/s)", events as f64 / secs);
        wall_secs.push(secs);
    }
    wall_secs.sort_by(|a, b| a.total_cmp(b));
    let median = wall_secs[wall_secs.len() / 2];

    let json = format!(
        "{{\n  \"scenario\": \"{scenario}\",\n  \"nodes\": {nodes},\n  \"jobs\": {jobs},\n  \
         \"seed\": {SEED},\n  \"runs\": {RUNS},\n  \"wall_time_secs\": {{ \"min\": {min:.6}, \
         \"median\": {median:.6}, \"max\": {max:.6} }},\n  \"events\": {events},\n  \
         \"events_per_sec\": {eps:.0},\n  \"fingerprint\": {{ \"completed\": {completed}, \
         \"messages\": {messages}, \"completion_mean_secs\": {mean:.6} }}\n}}\n",
        min = wall_secs[0],
        max = wall_secs[wall_secs.len() - 1],
        eps = events as f64 / median,
        completed = fingerprint.0,
        messages = fingerprint.1,
        mean = fingerprint.2,
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("bench_core: median {median:.3}s -> {out_path}");
    print!("{json}");
}

/// Runs the scenario once; returns (fingerprint, wall seconds, events).
///
/// The fingerprint (completed jobs, total messages, mean completion time)
/// pins the run's observable results: any change to RNG draws, event
/// ordering or protocol behavior shows up here.
fn run_once(scenario: Scenario, seed: u64) -> ((u64, u64, f64), f64, u64) {
    let config = scenario.world_config();
    let schedule = scenario.submission_schedule();
    let mut world = aria_core::World::new(config, seed);
    let mut generator = JobGenerator::new(scenario.job_config());
    world.submit_schedule(&schedule, &mut generator);
    let start = Instant::now();
    world.run();
    let secs = start.elapsed().as_secs_f64();
    let metrics = world.metrics();
    let fingerprint = (
        metrics.completed_count(),
        metrics.traffic().total_messages(),
        metrics.completion_summary().mean(),
    );
    (fingerprint, secs, world.processed_events())
}
