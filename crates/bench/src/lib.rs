//! # aria-bench
//!
//! Criterion benchmarks for the ARiA reproduction. The benchmark targets
//! live in `benches/`:
//!
//! * `figures` — one bench per paper table/figure, running the
//!   scaled-down campaign that regenerates it.
//! * `components` — micro-benchmarks of the simulation building blocks
//!   (overlay construction, scheduler queues, cost functions, event
//!   queue, workload generation).
//! * `ablations` — the design-choice ablations listed in DESIGN.md §7.
//!
//! Run them with `cargo bench --workspace`. For the full-scale
//! experiment numbers use the reproduction harness instead:
//! `cargo run --release -p aria-scenarios --bin reproduce -- all`.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

