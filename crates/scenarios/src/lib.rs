//! # aria-scenarios — the paper's evaluation campaign
//!
//! Everything needed to regenerate the ARiA paper's evaluation (§IV, §V):
//!
//! * [`Scenario`] — the 26 scenarios of Table II, each mapping to a
//!   [`aria_core::WorldConfig`] plus a workload definition.
//! * [`Runner`] — multi-seed scenario execution (one simulation per
//!   `(scenario, seed)` pair, fanned out over worker threads) producing
//!   [`ScenarioResult`]s with per-run statistics and cross-seed
//!   aggregates.
//! * [`figures`] — textual reproductions of every table and figure:
//!   Table I/II and Figures 1-10.
//!
//! The `reproduce` binary drives the whole campaign:
//!
//! ```text
//! cargo run --release -p aria-scenarios --bin reproduce -- all --seeds 10
//! cargo run --release -p aria-scenarios --bin reproduce -- fig4 fig10
//! ```
//!
//! ## Example
//!
//! ```
//! use aria_scenarios::{Runner, Scenario};
//!
//! // A scaled-down run of the Mixed scenario (40 nodes, 30 jobs).
//! let runner = Runner::scaled(40, 30);
//! let result = runner.run(Scenario::Mixed, &[1]);
//! assert_eq!(result.runs.len(), 1);
//! assert_eq!(result.runs[0].completed, 30);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod catalog;
pub mod figures;
pub mod plot;
pub mod runner;
pub mod sweep;

pub use catalog::Scenario;
pub use figures::Campaign;
pub use runner::{Runner, RunStats, ScenarioResult};
pub use sweep::{loss_sweep, SweepPoint};
