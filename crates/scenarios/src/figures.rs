//! Textual reproduction of every table and figure in the paper.
//!
//! Each `figN` method runs (or reuses) the scenarios that figure needs
//! and renders the same rows/series the paper plots. Output is plain
//! text with CSV-style series so results can be diffed, parsed or
//! re-plotted.

use crate::catalog::Scenario;
use crate::plot::ascii_chart;
use crate::runner::{Runner, ScenarioResult};
use aria_metrics::TrafficClass;
use aria_sim::TimeSeries;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A figure/table reproduction campaign with scenario-result caching:
/// figures sharing scenarios (e.g. Figures 1-3) pay for each simulation
/// only once.
#[derive(Debug)]
pub struct Campaign {
    runner: Runner,
    seeds: Vec<u64>,
    cache: BTreeMap<&'static str, ScenarioResult>,
}

impl Campaign {
    /// Creates a campaign over the given runner and seeds.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn new(runner: Runner, seeds: Vec<u64>) -> Self {
        assert!(!seeds.is_empty(), "at least one seed is required");
        Campaign { runner, seeds, cache: BTreeMap::new() }
    }

    /// Runs any scenarios not yet cached and returns results in order.
    fn results(&mut self, scenarios: &[Scenario]) -> Vec<ScenarioResult> {
        let missing: Vec<Scenario> = scenarios
            .iter()
            .copied()
            .filter(|s| !self.cache.contains_key(s.name()))
            .collect();
        if !missing.is_empty() {
            for result in self.runner.run_many(&missing, &self.seeds) {
                self.cache.insert(result.scenario.name(), result);
            }
        }
        scenarios.iter().map(|s| self.cache[s.name()].clone()).collect()
    }

    /// Table I: protocol messages and their fields/sizes.
    pub fn table1(&mut self) -> String {
        let mut out = String::from("# Table I: protocol messages and fields\n");
        let rows = [
            ("ACCEPT", "Node's address | Job UUID | Cost", TrafficClass::Accept),
            ("REQUEST", "Initiator's address | Job UUID | Job Profile", TrafficClass::Request),
            ("INFORM", "Assignee's address | Job UUID | Job Profile | Cost", TrafficClass::Inform),
            ("ASSIGN", "Initiator's address | Job UUID | Job Profile", TrafficClass::Assign),
        ];
        for (name, fields, class) in rows {
            let _ = writeln!(out, "{name:8} [{} bytes]  {fields}", class.message_bytes());
        }
        out
    }

    /// Table II: the scenario matrix.
    pub fn table2(&mut self) -> String {
        let mut out = String::from("# Table II: summary of evaluation scenarios\n");
        for scenario in Scenario::ALL {
            let _ = writeln!(out, "{:14} {}", scenario.name(), scenario.description());
        }
        out
    }

    /// The six scheduling-policy scenarios shared by Figures 1-3.
    const POLICY_SCENARIOS: [Scenario; 6] = [
        Scenario::Fcfs,
        Scenario::Sjf,
        Scenario::Mixed,
        Scenario::IFcfs,
        Scenario::ISjf,
        Scenario::IMixed,
    ];

    /// The six load scenarios shared by Figures 6-7.
    const LOAD_SCENARIOS: [Scenario; 6] = [
        Scenario::LowLoad,
        Scenario::ILowLoad,
        Scenario::Mixed,
        Scenario::IMixed,
        Scenario::HighLoad,
        Scenario::IHighLoad,
    ];

    /// Figure 1: completed jobs over time per scheduling policy.
    pub fn fig1(&mut self) -> String {
        let results = self.results(&Self::POLICY_SCENARIOS);
        let mut out = String::from("# Figure 1: completed jobs over time\n");
        out.push_str(&series_block(&results, |r| r.avg_completed_series()));
        out
    }

    /// Figure 2: average job completion time split into waiting and
    /// execution time.
    pub fn fig2(&mut self) -> String {
        let results = self.results(&Self::POLICY_SCENARIOS);
        completion_block("# Figure 2: job completion time (s)\n", &results)
    }

    /// Figure 3: idle nodes over time per scheduling policy.
    pub fn fig3(&mut self) -> String {
        let results = self.results(&Self::POLICY_SCENARIOS);
        let mut out = String::from("# Figure 3: idle nodes over time\n");
        out.push_str(&series_block(&results, |r| r.avg_idle_series()));
        out
    }

    /// Figure 4: deadline scheduling performance.
    pub fn fig4(&mut self) -> String {
        let scenarios = [
            Scenario::Deadline,
            Scenario::IDeadline,
            Scenario::DeadlineH,
            Scenario::IDeadlineH,
        ];
        let results = self.results(&scenarios);
        let mut out = String::from(
            "# Figure 4: deadline scheduling performance\nscenario,missed_deadlines,avg_lateness_s,avg_missed_time_s\n",
        );
        for r in &results {
            let _ = writeln!(
                out,
                "{},{:.1},{:.0},{:.0}",
                r.scenario,
                r.avg_missed_deadlines(),
                r.avg_lateness_secs(),
                r.avg_missed_time_secs()
            );
        }
        out
    }

    /// Figure 5: idle nodes over time in an expanding network.
    pub fn fig5(&mut self) -> String {
        let results = self.results(&[Scenario::Expanding, Scenario::IExpanding]);
        let mut out = String::from("# Figure 5: idle nodes over time (expanding network)\n");
        out.push_str(&series_block(&results, |r| r.avg_idle_series()));
        out
    }

    /// Figure 6: idle nodes over time under low/baseline/high load.
    pub fn fig6(&mut self) -> String {
        let results = self.results(&Self::LOAD_SCENARIOS);
        let mut out = String::from("# Figure 6: idle nodes over time (load)\n");
        out.push_str(&series_block(&results, |r| r.avg_idle_series()));
        out
    }

    /// Figure 7: job completion time under low/baseline/high load.
    pub fn fig7(&mut self) -> String {
        let results = self.results(&Self::LOAD_SCENARIOS);
        completion_block("# Figure 7: job completion time under load (s)\n", &results)
    }

    /// Figure 8: job completion time across rescheduling policies.
    pub fn fig8(&mut self) -> String {
        let scenarios = [
            Scenario::IInform1,
            Scenario::IMixed,
            Scenario::IInform4,
            Scenario::IInform15m,
            Scenario::IInform30m,
        ];
        let results = self.results(&scenarios);
        completion_block("# Figure 8: job completion time (rescheduling policies) (s)\n", &results)
    }

    /// Figure 9: sensitivity to ERT accuracy.
    pub fn fig9(&mut self) -> String {
        let scenarios = [
            Scenario::Precise,
            Scenario::IPrecise,
            Scenario::Mixed,
            Scenario::IMixed,
            Scenario::Accuracy25,
            Scenario::IAccuracy25,
            Scenario::AccuracyBad,
            Scenario::IAccuracyBad,
        ];
        let results = self.results(&scenarios);
        completion_block("# Figure 9: sensitivity to ERT accuracy (s)\n", &results)
    }

    /// Figure 10: network overhead per message type for representative
    /// scenarios.
    pub fn fig10(&mut self) -> String {
        let scenarios = [
            Scenario::Mixed,
            Scenario::IMixed,
            Scenario::IInform1,
            Scenario::IInform4,
            Scenario::IExpanding,
            Scenario::IDeadline,
        ];
        let results = self.results(&scenarios);
        let mut out = String::from(
            "# Figure 10: network overhead comparison\nscenario,request_MB,accept_MB,inform_MB,assign_MB,total_MB,per_node_MB,bandwidth_bps\n",
        );
        for r in &results {
            let mb = |class| r.avg_bytes(class) / 1e6;
            let nodes = r.scenario.world_config().nodes;
            let horizon_secs = r.scenario.world_config().horizon.as_millis() / 1000;
            let per_node = r.avg_total_bytes() / nodes as f64;
            let _ = writeln!(
                out,
                "{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.0}",
                r.scenario,
                mb(TrafficClass::Request),
                mb(TrafficClass::Accept),
                mb(TrafficClass::Inform),
                mb(TrafficClass::Assign),
                r.avg_total_bytes() / 1e6,
                per_node / 1e6,
                per_node * 8.0 / horizon_secs as f64,
            );
        }
        out
    }

    /// Beyond the paper: the baseline-scheduler comparison at the
    /// campaign's scale — ARiA (iMixed) against the omniscient
    /// centralized scheduler, gossip state dissemination (\[25\]) and
    /// multiple simultaneous requests (\[13\]), on statistically identical
    /// workloads.
    pub fn baselines(&mut self) -> String {
        use aria_core::{CentralScheduler, GossipScheduler, MultiRequestScheduler, PolicyMix};
        use aria_sim::Summary;

        let aria = self.results(&[Scenario::IMixed]).remove(0);
        let config = Scenario::IMixed.world_config();
        let (nodes, horizon, period) =
            (self.runner.nodes_or(config.nodes), config.horizon, config.sample_period);
        let schedule = self.runner.schedule_for(Scenario::IMixed);

        let mut out = String::from(
            "# Baselines: ARiA vs centralized / gossip [25] / multi-request [13]
scheduler,completion_s,waiting_s,messages
",
        );
        let _ = writeln!(
            out,
            "ARiA(iMixed),{:.0},{:.0},{:.0}",
            aria.completion().mean(),
            aria.waiting().mean(),
            aria.runs.iter().map(|r| r.traffic.total_messages() as f64).sum::<f64>()
                / aria.runs.len() as f64,
        );

        let mut central_completion = Summary::new();
        let mut central_waiting = Summary::new();
        let mut gossip_completion = Summary::new();
        let mut gossip_waiting = Summary::new();
        let mut gossip_msgs = 0.0;
        let mut multi_completion = Summary::new();
        let mut multi_waiting = Summary::new();
        let mut multi_revoked = 0.0;
        for &seed in &self.seeds {
            let mut jobs = aria_workload::JobGenerator::new(Scenario::IMixed.job_config());
            let mut central =
                CentralScheduler::new(nodes, PolicyMix::paper_mixed(), horizon, period, seed);
            central.submit_schedule(&schedule, &mut jobs);
            central.run();
            central_completion.merge(&central.metrics().completion_summary());
            central_waiting.merge(&central.metrics().waiting_summary());

            let mut jobs = aria_workload::JobGenerator::new(Scenario::IMixed.job_config());
            let mut gossip =
                GossipScheduler::new(nodes, PolicyMix::paper_mixed(), horizon, period, seed);
            gossip.submit_schedule(&schedule, &mut jobs);
            gossip.run();
            gossip_completion.merge(&gossip.metrics().completion_summary());
            gossip_waiting.merge(&gossip.metrics().waiting_summary());
            gossip_msgs += gossip.metrics().traffic().total_messages() as f64;

            let mut jobs = aria_workload::JobGenerator::new(Scenario::IMixed.job_config());
            let mut multi = MultiRequestScheduler::new(
                nodes,
                PolicyMix::paper_mixed(),
                3,
                horizon,
                period,
                seed,
            );
            multi.submit_schedule(&schedule, &mut jobs);
            multi.run();
            multi_completion.merge(&multi.metrics().completion_summary());
            multi_waiting.merge(&multi.metrics().waiting_summary());
            multi_revoked += multi.revoked_replicas() as f64;
        }
        let n = self.seeds.len() as f64;
        let _ = writeln!(
            out,
            "central,{:.0},{:.0},0",
            central_completion.mean(),
            central_waiting.mean()
        );
        let _ = writeln!(
            out,
            "gossip,{:.0},{:.0},{:.0}",
            gossip_completion.mean(),
            gossip_waiting.mean(),
            gossip_msgs / n,
        );
        let _ = writeln!(
            out,
            "multireq_k3,{:.0},{:.0},{:.0} revoked replicas",
            multi_completion.mean(),
            multi_waiting.mean(),
            multi_revoked / n,
        );
        out
    }

    /// All tables and figures, in order.
    pub fn all(&mut self) -> String {
        let mut out = String::new();
        out.push_str(&self.table1());
        out.push('\n');
        out.push_str(&self.table2());
        for (i, fig) in [
            Self::fig1 as fn(&mut Self) -> String,
            Self::fig2,
            Self::fig3,
            Self::fig4,
            Self::fig5,
            Self::fig6,
            Self::fig7,
            Self::fig8,
            Self::fig9,
            Self::fig10,
            Self::baselines,
        ]
        .iter()
        .enumerate()
        {
            let _ = i;
            out.push('\n');
            out.push_str(&fig(self));
        }
        out
    }

    /// Renders one artifact by its id (`table1`, `table2`, `fig1`..`fig10`
    /// or `all`). Returns `None` for unknown ids.
    pub fn render(&mut self, id: &str) -> Option<String> {
        let id = id.to_ascii_lowercase();
        Some(match id.as_str() {
            "table1" => self.table1(),
            "table2" => self.table2(),
            "fig1" => self.fig1(),
            "fig2" => self.fig2(),
            "fig3" => self.fig3(),
            "fig4" => self.fig4(),
            "fig5" => self.fig5(),
            "fig6" => self.fig6(),
            "fig7" => self.fig7(),
            "fig8" => self.fig8(),
            "fig9" => self.fig9(),
            "fig10" => self.fig10(),
            "baselines" => self.baselines(),
            "all" => self.all(),
            _ => return None,
        })
    }
}

/// Renders one time series per scenario as CSV (a `time_h` column then
/// one column per scenario, downsampled to half-hour points) followed by
/// an ASCII chart of the same data.
fn series_block(results: &[ScenarioResult], series: impl Fn(&ScenarioResult) -> TimeSeries) -> String {
    let columns: Vec<(String, TimeSeries)> =
        results.iter().map(|r| (r.scenario.to_string(), series(r))).collect();
    let period_mins = columns
        .first()
        .map(|(_, s)| s.period().as_millis() / 60_000)
        .unwrap_or(5)
        .max(1);
    let stride = (30 / period_mins).max(1) as usize;
    let thinned: Vec<(String, TimeSeries)> =
        columns.into_iter().map(|(name, s)| (name, s.thin(stride))).collect();

    let mut out = String::from("time_h");
    for (name, _) in &thinned {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    let rows = thinned.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for i in 0..rows {
        let t = thinned[0].1.time_at(i);
        let _ = write!(out, "{:.2}", t.as_hours_f64());
        for (_, s) in &thinned {
            match s.values().get(i) {
                Some(v) => {
                    let _ = write!(out, ",{v:.1}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    let charted: Vec<(&str, &TimeSeries)> =
        thinned.iter().map(|(name, s)| (name.as_str(), s)).collect();
    out.push('\n');
    out.push_str(&ascii_chart(&charted, 72, 16));
    out
}

/// Renders the waiting/execution/completion means per scenario, plus
/// median and tail percentiles of the completion time.
fn completion_block(header: &str, results: &[ScenarioResult]) -> String {
    let mut out = String::from(header);
    out.push_str("scenario,waiting_s,execution_s,completion_s,completion_p50_s,completion_p95_s\n");
    for r in results {
        let _ = writeln!(
            out,
            "{},{:.0},{:.0},{:.0},{:.0},{:.0}",
            r.scenario,
            r.waiting().mean(),
            r.execution().mean(),
            r.completion().mean(),
            r.avg_completion_p50(),
            r.avg_completion_p95(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign() -> Campaign {
        Campaign::new(Runner::scaled(30, 10), vec![1])
    }

    #[test]
    fn tables_render_without_running_simulations() {
        let mut c = campaign();
        let t1 = c.table1();
        assert!(t1.contains("REQUEST") && t1.contains("128 bytes"));
        let t2 = c.table2();
        assert!(t2.contains("iMixed"));
        assert_eq!(t2.lines().count(), 27); // header + 26 scenarios
    }

    #[test]
    fn fig4_lists_four_deadline_scenarios() {
        let mut c = campaign();
        let fig = c.fig4();
        for name in ["Deadline", "iDeadline", "DeadlineH", "iDeadlineH"] {
            assert!(fig.contains(&format!("\n{name},")), "{fig}");
        }
    }

    #[test]
    fn fig10_totals_are_consistent() {
        let mut c = campaign();
        let fig = c.fig10();
        // Plain Mixed has zero INFORM traffic.
        let mixed_row = fig.lines().find(|l| l.starts_with("Mixed,")).unwrap();
        let cols: Vec<&str> = mixed_row.split(',').collect();
        assert_eq!(cols[3], "0.00", "plain Mixed should have no INFORM bytes: {mixed_row}");
    }

    #[test]
    fn caching_avoids_rerunning_scenarios() {
        let mut c = campaign();
        let fig1 = c.fig1();
        let fig3 = c.fig3(); // shares all six scenarios with fig1
        assert!(fig1.contains("iMixed"));
        assert!(fig3.contains("iMixed"));
        assert_eq!(c.cache.len(), 6);
    }

    #[test]
    fn render_dispatches_ids() {
        let mut c = campaign();
        assert!(c.render("table1").is_some());
        assert!(c.render("TABLE2").is_some());
        assert!(c.render("nope").is_none());
    }

    #[test]
    fn series_block_has_header_and_rows() {
        let mut c = campaign();
        let fig = c.fig5();
        let mut lines = fig.lines();
        assert!(lines.next().unwrap().starts_with("# Figure 5"));
        let header = lines.next().unwrap();
        assert!(header.starts_with("time_h,Expanding,iExpanding"), "{header}");
        assert!(lines.count() > 10);
    }
}
