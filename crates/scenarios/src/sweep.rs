//! `loss-sweep` — the robustness campaign beyond the paper's reliable
//! transport.
//!
//! The paper's evaluation (§IV) only injects whole-node crashes; this
//! module reruns the iMixed scenario under increasing per-message loss
//! (plus optional duplicates/jitter/partitions through
//! [`Runner::run_once_faulted`]) and reports the job-conservation
//! ledger at every rate:
//!
//! ```text
//! completed + lost + abandoned == submitted
//! ```
//!
//! Two properties are worth pinning (and the tests below do):
//!
//! * **Conservation is loss-independent.** No loss rate may leak a job
//!   out of the ledger — a dropped ASSIGN either gets retransmitted,
//!   falls back to another offer, or trips the §III-D failsafe.
//! * **Moderate loss degrades gracefully.** With the failsafe on, loss
//!   up to ~10% completes the full workload with zero lost jobs; the
//!   retransmit/fallback machinery absorbs the drops.

use crate::catalog::Scenario;
use crate::runner::Runner;
use aria_core::FaultPlan;
use aria_probe::NullProbe;

/// One point of a loss sweep: the job-conservation ledger of a single
/// `(scenario, seed)` run at a fixed loss rate.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Per-message loss probability of this run.
    pub loss: f64,
    /// Jobs submitted.
    pub submitted: usize,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs lost (holder crashed / delegation evaporated with the
    /// failsafe unable to recover them).
    pub lost: usize,
    /// Jobs abandoned after exhausting their REQUEST rounds.
    pub abandoned: usize,
    /// Jobs recovered by the §III-D failsafe.
    pub recovered: u64,
    /// Transport fault injections that fired during the run.
    pub injections: usize,
}

impl SweepPoint {
    /// Does the run's ledger balance? Every submitted job must end in
    /// exactly one terminal column.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.completed as usize + self.lost + self.abandoned == self.submitted
    }
}

/// Runs one iMixed simulation at the given loss rate and returns its
/// conservation ledger.
pub fn run_point(runner: &Runner, loss: f64, seed: u64) -> SweepPoint {
    let fault = FaultPlan { loss, ..FaultPlan::none() };
    run_point_with(runner, fault, seed)
}

/// Like [`run_point`], but with a full [`FaultPlan`] (duplicates,
/// jitter, partitions) instead of a bare loss rate.
pub fn run_point_with(runner: &Runner, fault: FaultPlan, seed: u64) -> SweepPoint {
    let scenario = Scenario::IMixed;
    let loss = fault.loss;
    let (stats, world) = runner.run_once_faulted(scenario, seed, fault, false, NullProbe);
    SweepPoint {
        loss,
        submitted: runner.schedule_for(scenario).count(),
        completed: stats.completed,
        lost: world.lost_jobs().len(),
        abandoned: world.abandoned_jobs().len(),
        recovered: world.recovered_count(),
        injections: world.fault_log().len(),
    }
}

/// Sweeps the iMixed scenario over the given loss rates with one run
/// per rate (same seed throughout, so rates differ only in transport
/// behaviour).
pub fn loss_sweep(runner: &Runner, losses: &[f64], seed: u64) -> Vec<SweepPoint> {
    losses.iter().map(|&loss| run_point(runner, loss, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_core::PartitionWindow;
    use aria_sim::{SimDuration, SimTime};

    fn runner() -> Runner {
        Runner::scaled(30, 15)
    }

    #[test]
    fn zero_loss_point_matches_the_reliable_run() {
        let point = run_point(&runner(), 0.0, 7);
        let baseline = runner().run_once(Scenario::IMixed, 7);
        assert_eq!(point.completed, baseline.completed);
        assert_eq!(point.abandoned, baseline.abandoned);
        assert_eq!(point.injections, 0, "a 0% plan must never fire");
        assert!(point.conserved());
    }

    #[test]
    fn moderate_loss_completes_everything_with_the_failsafe() {
        // The graceful-degradation acceptance bar: at <= 10% loss the
        // retransmit/fallback/failsafe stack absorbs every drop.
        for seed in [1, 7, 42] {
            let point = run_point(&runner(), 0.10, seed);
            assert!(point.conserved(), "ledger must balance: {point:?}");
            assert_eq!(point.lost, 0, "no job may be lost at 10% loss: {point:?}");
            assert_eq!(
                point.completed as usize, point.submitted,
                "10% loss must still complete the workload: {point:?}"
            );
            assert!(point.injections > 0, "a 10% run must actually drop messages");
        }
    }

    #[test]
    fn conservation_holds_across_the_whole_sweep() {
        let points = loss_sweep(&runner(), &[0.0, 0.05, 0.25, 0.5], 3);
        assert_eq!(points.len(), 4);
        for point in &points {
            assert!(point.conserved(), "ledger must balance at every rate: {point:?}");
        }
    }

    #[test]
    fn partitions_and_duplicates_preserve_the_ledger() {
        let fault = FaultPlan {
            loss: 0.05,
            duplicate: 0.10,
            jitter_ms: 500,
            partitions: vec![PartitionWindow {
                start: SimTime::from_mins(30),
                duration: SimDuration::from_mins(20),
            }],
            keep: None,
        };
        let point = run_point_with(&runner(), fault, 11);
        assert!(point.conserved(), "ledger must balance under mixed faults: {point:?}");
        assert!(point.injections > 0);
    }
}
