//! The 26 evaluation scenarios of Table II.

use aria_core::{AriaConfig, PolicyMix, WorldConfig};
use aria_grid::Policy;
use aria_sim::SimDuration;
use aria_workload::{ArtModel, JobGeneratorConfig, SubmissionSchedule};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the paper's 26 evaluation scenarios (Table II).
///
/// By the paper's naming convention, scenarios whose name starts with `i`
/// have dynamic rescheduling enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are the paper's scenario names
pub enum Scenario {
    Fcfs,
    Sjf,
    Mixed,
    Deadline,
    LowLoad,
    HighLoad,
    DeadlineH,
    Expanding,
    Precise,
    Accuracy25,
    AccuracyBad,
    IFcfs,
    ISjf,
    IMixed,
    IDeadline,
    ILowLoad,
    IHighLoad,
    IDeadlineH,
    IExpanding,
    IInform1,
    IInform4,
    IInform15m,
    IInform30m,
    IPrecise,
    IAccuracy25,
    IAccuracyBad,
}

impl Scenario {
    /// All 26 scenarios, in Table II order.
    pub const ALL: [Scenario; 26] = [
        Scenario::Fcfs,
        Scenario::Sjf,
        Scenario::Mixed,
        Scenario::Deadline,
        Scenario::LowLoad,
        Scenario::HighLoad,
        Scenario::DeadlineH,
        Scenario::Expanding,
        Scenario::Precise,
        Scenario::Accuracy25,
        Scenario::AccuracyBad,
        Scenario::IFcfs,
        Scenario::ISjf,
        Scenario::IMixed,
        Scenario::IDeadline,
        Scenario::ILowLoad,
        Scenario::IHighLoad,
        Scenario::IDeadlineH,
        Scenario::IExpanding,
        Scenario::IInform1,
        Scenario::IInform4,
        Scenario::IInform15m,
        Scenario::IInform30m,
        Scenario::IPrecise,
        Scenario::IAccuracy25,
        Scenario::IAccuracyBad,
    ];

    /// The paper's name for the scenario.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Fcfs => "FCFS",
            Scenario::Sjf => "SJF",
            Scenario::Mixed => "Mixed",
            Scenario::Deadline => "Deadline",
            Scenario::LowLoad => "LowLoad",
            Scenario::HighLoad => "HighLoad",
            Scenario::DeadlineH => "DeadlineH",
            Scenario::Expanding => "Expanding",
            Scenario::Precise => "Precise",
            Scenario::Accuracy25 => "Accuracy25",
            Scenario::AccuracyBad => "AccuracyBad",
            Scenario::IFcfs => "iFCFS",
            Scenario::ISjf => "iSJF",
            Scenario::IMixed => "iMixed",
            Scenario::IDeadline => "iDeadline",
            Scenario::ILowLoad => "iLowLoad",
            Scenario::IHighLoad => "iHighLoad",
            Scenario::IDeadlineH => "iDeadlineH",
            Scenario::IExpanding => "iExpanding",
            Scenario::IInform1 => "iInform1",
            Scenario::IInform4 => "iInform4",
            Scenario::IInform15m => "iInform15m",
            Scenario::IInform30m => "iInform30m",
            Scenario::IPrecise => "iPrecise",
            Scenario::IAccuracy25 => "iAccuracy25",
            Scenario::IAccuracyBad => "iAccuracyBad",
        }
    }

    /// Table II's one-line description.
    pub fn description(self) -> &'static str {
        match self {
            Scenario::Fcfs => "All nodes FCFS, no dynamic rescheduling",
            Scenario::Sjf => "All nodes SJF, no dynamic rescheduling",
            Scenario::Mixed => "FCFS or SJF uniformly at random, no dynamic rescheduling",
            Scenario::Deadline => "All nodes EDF (soft deadlines, avg 7h30m slack)",
            Scenario::LowLoad => "Like Mixed, submission rate halved (1 job / 20 s)",
            Scenario::HighLoad => "Like Mixed, submission rate doubled (1 job / 5 s)",
            Scenario::DeadlineH => "Like Deadline with tight deadlines (avg 2h30m slack)",
            Scenario::Expanding => "Like Mixed, network grows 500 -> 700 nodes",
            Scenario::Precise => "Like Mixed, ART matches ERT exactly",
            Scenario::Accuracy25 => "Like Mixed, relative ERT error +/-25%",
            Scenario::AccuracyBad => "Like Mixed, ERT always underestimates",
            Scenario::IFcfs => "Like FCFS with dynamic rescheduling",
            Scenario::ISjf => "Like SJF with dynamic rescheduling",
            Scenario::IMixed => "Like Mixed with dynamic rescheduling (baseline)",
            Scenario::IDeadline => "Like Deadline with dynamic rescheduling",
            Scenario::ILowLoad => "Like LowLoad with dynamic rescheduling",
            Scenario::IHighLoad => "Like HighLoad with dynamic rescheduling",
            Scenario::IDeadlineH => "Like DeadlineH with dynamic rescheduling",
            Scenario::IExpanding => "Like Expanding with dynamic rescheduling",
            Scenario::IInform1 => "Like iMixed, INFORM for 1 job / 5 min",
            Scenario::IInform4 => "Like iMixed, INFORM for up to 4 jobs / 5 min",
            Scenario::IInform15m => "Like iMixed, reschedule only for >=15m improvement",
            Scenario::IInform30m => "Like iMixed, reschedule only for >=30m improvement",
            Scenario::IPrecise => "Like Precise with dynamic rescheduling",
            Scenario::IAccuracy25 => "Like Accuracy25 with dynamic rescheduling",
            Scenario::IAccuracyBad => "Like AccuracyBad with dynamic rescheduling",
        }
    }

    /// Whether dynamic rescheduling is enabled (the `i*` scenarios).
    pub fn rescheduling(self) -> bool {
        self.name().starts_with('i')
    }

    /// Looks a scenario up by its paper name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Scenario> {
        Scenario::ALL.iter().copied().find(|s| s.name().eq_ignore_ascii_case(name))
    }

    /// The plain (non-rescheduling) counterpart of an `i*` scenario, or
    /// `self` if already plain. Sensitivity scenarios (iInform*) map to
    /// Mixed.
    pub fn without_rescheduling(self) -> Scenario {
        match self {
            Scenario::IFcfs => Scenario::Fcfs,
            Scenario::ISjf => Scenario::Sjf,
            Scenario::IMixed
            | Scenario::IInform1
            | Scenario::IInform4
            | Scenario::IInform15m
            | Scenario::IInform30m => Scenario::Mixed,
            Scenario::IDeadline => Scenario::Deadline,
            Scenario::ILowLoad => Scenario::LowLoad,
            Scenario::IHighLoad => Scenario::HighLoad,
            Scenario::IDeadlineH => Scenario::DeadlineH,
            Scenario::IExpanding => Scenario::Expanding,
            Scenario::IPrecise => Scenario::Precise,
            Scenario::IAccuracy25 => Scenario::Accuracy25,
            Scenario::IAccuracyBad => Scenario::AccuracyBad,
            plain => plain,
        }
    }

    /// The world configuration for this scenario at full paper scale.
    pub fn world_config(self) -> WorldConfig {
        let mut config = match self {
            Scenario::Expanding | Scenario::IExpanding => WorldConfig::paper_expanding(),
            _ => WorldConfig::paper_baseline(),
        };
        config.policies = match self.without_rescheduling() {
            Scenario::Fcfs => PolicyMix::Uniform(Policy::Fcfs),
            Scenario::Sjf => PolicyMix::Uniform(Policy::Sjf),
            Scenario::Deadline | Scenario::DeadlineH => PolicyMix::Uniform(Policy::Edf),
            _ => PolicyMix::paper_mixed(),
        };
        config.art = match self.without_rescheduling() {
            Scenario::Precise => ArtModel::Exact,
            Scenario::Accuracy25 => ArtModel::Symmetric { epsilon: 0.25 },
            Scenario::AccuracyBad => ArtModel::Optimistic { epsilon: 0.1 },
            _ => ArtModel::paper_baseline(),
        };
        config.aria = if self.rescheduling() {
            AriaConfig::default()
        } else {
            AriaConfig::without_rescheduling()
        };
        match self {
            Scenario::IInform1 => config.aria.inform_batch = 1,
            Scenario::IInform4 => config.aria.inform_batch = 4,
            Scenario::IInform15m => {
                config.aria.reschedule_threshold = SimDuration::from_mins(15)
            }
            Scenario::IInform30m => {
                config.aria.reschedule_threshold = SimDuration::from_mins(30)
            }
            _ => {}
        }
        config
    }

    /// The job generator configuration for this scenario.
    pub fn job_config(self) -> JobGeneratorConfig {
        match self.without_rescheduling() {
            Scenario::Deadline => JobGeneratorConfig::paper_deadline(),
            Scenario::DeadlineH => JobGeneratorConfig::paper_tight_deadline(),
            _ => JobGeneratorConfig::paper_batch(),
        }
    }

    /// The submission schedule for this scenario.
    pub fn submission_schedule(self) -> SubmissionSchedule {
        match self.without_rescheduling() {
            Scenario::LowLoad => SubmissionSchedule::paper_low_load(),
            Scenario::HighLoad => SubmissionSchedule::paper_high_load(),
            _ => SubmissionSchedule::paper_baseline(),
        }
    }

    /// Whether the scenario uses deadline (EDF) scheduling.
    pub fn is_deadline(self) -> bool {
        matches!(
            self.without_rescheduling(),
            Scenario::Deadline | Scenario::DeadlineH
        )
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_26_scenarios() {
        assert_eq!(Scenario::ALL.len(), 26);
        let mut names: Vec<&str> = Scenario::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26, "duplicate scenario names");
    }

    #[test]
    fn i_prefix_marks_rescheduling() {
        let rescheduling = Scenario::ALL.iter().filter(|s| s.rescheduling()).count();
        assert_eq!(rescheduling, 15); // 11 i-counterparts + 4 sensitivity
        assert!(Scenario::IMixed.rescheduling());
        assert!(!Scenario::Mixed.rescheduling());
    }

    #[test]
    fn from_name_round_trips() {
        for scenario in Scenario::ALL {
            assert_eq!(Scenario::from_name(scenario.name()), Some(scenario));
        }
        assert_eq!(Scenario::from_name("imixed"), Some(Scenario::IMixed));
        assert_eq!(Scenario::from_name("nope"), None);
    }

    #[test]
    fn world_configs_match_table_ii() {
        assert_eq!(
            Scenario::Fcfs.world_config().policies,
            PolicyMix::Uniform(Policy::Fcfs)
        );
        assert!(!Scenario::Fcfs.world_config().aria.rescheduling);
        assert!(Scenario::IFcfs.world_config().aria.rescheduling);
        assert_eq!(Scenario::IInform1.world_config().aria.inform_batch, 1);
        assert_eq!(Scenario::IInform4.world_config().aria.inform_batch, 4);
        assert_eq!(
            Scenario::IInform15m.world_config().aria.reschedule_threshold,
            SimDuration::from_mins(15)
        );
        assert_eq!(
            Scenario::IInform30m.world_config().aria.reschedule_threshold,
            SimDuration::from_mins(30)
        );
        assert_eq!(Scenario::Expanding.world_config().joins.len(), 200);
        assert_eq!(Scenario::IPrecise.world_config().art, ArtModel::Exact);
        assert_eq!(
            Scenario::IAccuracy25.world_config().art,
            ArtModel::Symmetric { epsilon: 0.25 }
        );
        assert_eq!(
            Scenario::AccuracyBad.world_config().art,
            ArtModel::Optimistic { epsilon: 0.1 }
        );
    }

    #[test]
    fn deadline_scenarios_generate_deadline_jobs() {
        assert!(Scenario::Deadline.job_config().deadline_slack.is_some());
        assert!(Scenario::IDeadlineH.job_config().deadline_slack.is_some());
        assert!(Scenario::Mixed.job_config().deadline_slack.is_none());
        assert!(Scenario::IDeadline.is_deadline());
        assert!(!Scenario::IInform1.is_deadline());
    }

    #[test]
    fn load_scenarios_change_schedule() {
        assert_eq!(
            Scenario::ILowLoad.submission_schedule().interval(),
            SimDuration::from_secs(20)
        );
        assert_eq!(
            Scenario::IHighLoad.submission_schedule().interval(),
            SimDuration::from_secs(5)
        );
        assert_eq!(
            Scenario::IMixed.submission_schedule().interval(),
            SimDuration::from_secs(10)
        );
    }

    #[test]
    fn without_rescheduling_maps_to_plain() {
        assert_eq!(Scenario::IMixed.without_rescheduling(), Scenario::Mixed);
        assert_eq!(Scenario::IInform30m.without_rescheduling(), Scenario::Mixed);
        assert_eq!(Scenario::Fcfs.without_rescheduling(), Scenario::Fcfs);
        assert_eq!(Scenario::IExpanding.without_rescheduling(), Scenario::Expanding);
    }
}
