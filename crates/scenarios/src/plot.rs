//! Terminal plotting: renders the figures' time series as ASCII line
//! charts so `reproduce` output can be eyeballed against the paper's
//! plots without leaving the terminal.

use aria_sim::TimeSeries;
use std::fmt::Write as _;

/// Symbols assigned to series, in order.
const MARKS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Renders labelled series as an ASCII chart of the given size.
///
/// The y-axis is scaled to the global minimum/maximum across all series;
/// the x-axis covers the longest series. Later series overdraw earlier
/// ones where they collide. Returns an empty string if nothing has data.
///
/// # Example
///
/// ```
/// use aria_scenarios::plot::ascii_chart;
/// use aria_sim::{SimDuration, TimeSeries};
///
/// let mut rising = TimeSeries::new(SimDuration::from_mins(1));
/// for i in 0..60 {
///     rising.push(i as f64);
/// }
/// let chart = ascii_chart(&[("rising", &rising)], 40, 10);
/// assert!(chart.contains("rising"));
/// assert!(chart.contains('*'));
/// ```
pub fn ascii_chart(series: &[(&str, &TimeSeries)], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let columns = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    if columns == 0 || series.is_empty() {
        return String::new();
    }

    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, s) in series {
        for &v in s.values() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return String::new();
    }
    if hi - lo < 1e-12 {
        hi = lo + 1.0; // flat lines still render
    }

    let mut grid = vec![vec![' '; width]; height];
    for (index, (_, s)) in series.iter().enumerate() {
        let mark = MARKS[index % MARKS.len()];
        #[allow(clippy::needless_range_loop)] // col indexes two parallel structures
        for col in 0..width {
            // Sample the series at this column (nearest index).
            let i = col * columns.saturating_sub(1) / width.saturating_sub(1).max(1);
            let Some(&v) = s.values().get(i) else { continue };
            // det:allow(lossy-float-cast): plot bucket index, clamped on the next line
            let row = ((v - lo) / (hi - lo) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col] = mark;
        }
    }

    let label_width = 8;
    let mut out = String::new();
    for (row_index, row) in grid.iter().enumerate() {
        let label = if row_index == 0 {
            format!("{hi:>label_width$.0}")
        } else if row_index == height - 1 {
            format!("{lo:>label_width$.0}")
        } else {
            " ".repeat(label_width)
        };
        let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
    }
    // x-axis with the time extent.
    let _ = writeln!(out, "{} +{}", " ".repeat(label_width), "-".repeat(width));
    let last_time = series
        .iter()
        .filter(|(_, s)| !s.is_empty())
        .map(|(_, s)| s.time_at(s.len() - 1))
        .max()
        .expect("non-empty chart has a last sample");
    let _ = writeln!(
        out,
        "{}  0h{}{}",
        " ".repeat(label_width),
        " ".repeat(width.saturating_sub(last_time.to_string().len() + 3)),
        last_time,
    );
    // Legend.
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {name}", MARKS[i % MARKS.len()]))
        .collect();
    let _ = writeln!(out, "{}  {}", " ".repeat(label_width), legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_sim::SimDuration;

    fn series(values: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new(SimDuration::from_mins(30));
        for &v in values {
            s.push(v);
        }
        s
    }

    #[test]
    fn empty_input_renders_nothing() {
        assert_eq!(ascii_chart(&[], 40, 10), "");
        let empty = TimeSeries::new(SimDuration::from_mins(1));
        assert_eq!(ascii_chart(&[("e", &empty)], 40, 10), "");
    }

    #[test]
    fn chart_contains_axis_extremes_and_legend() {
        let s = series(&[0.0, 250.0, 500.0]);
        let chart = ascii_chart(&[("jobs", &s)], 40, 10);
        assert!(chart.contains("500"), "{chart}");
        assert!(chart.contains("0 |") || chart.contains("       0 |"), "{chart}");
        assert!(chart.contains("* jobs"), "{chart}");
        assert!(chart.contains("1h00m00s"), "{chart}");
    }

    #[test]
    fn rising_series_touches_top_right_and_bottom_left() {
        let s = series(&(0..100).map(|i| i as f64).collect::<Vec<_>>());
        let chart = ascii_chart(&[("r", &s)], 50, 12);
        let rows: Vec<&str> = chart.lines().collect();
        // Top row (index 0) has a mark near the right edge.
        assert!(rows[0].trim_end().ends_with('*'), "{chart}");
        // Bottom plot row (height-1 = index 11) has a mark near the left.
        let bottom = rows[11];
        let first_mark = bottom.find('*').expect("bottom row has a mark");
        assert!(first_mark < 15, "{chart}");
    }

    #[test]
    fn two_series_use_distinct_marks() {
        let a = series(&[0.0, 1.0, 2.0]);
        let b = series(&[2.0, 1.0, 0.0]);
        let chart = ascii_chart(&[("up", &a), ("down", &b)], 30, 8);
        assert!(chart.contains('*') && chart.contains('o'), "{chart}");
        assert!(chart.contains("* up") && chart.contains("o down"), "{chart}");
    }

    #[test]
    fn flat_series_renders_without_dividing_by_zero() {
        let s = series(&[5.0, 5.0, 5.0]);
        let chart = ascii_chart(&[("flat", &s)], 30, 6);
        assert!(chart.contains('*'), "{chart}");
    }

    #[test]
    fn tiny_dimensions_are_clamped() {
        let s = series(&[1.0, 2.0]);
        let chart = ascii_chart(&[("t", &s)], 1, 1);
        assert!(chart.lines().count() >= 4 + 3, "{chart}");
    }
}
