//! Reproduces the ARiA paper's tables and figures.
//!
//! ```text
//! reproduce [IDS...] [--seeds N] [--scale NODES JOBS] [--workers W]
//!
//! IDS      table1 table2 fig1 .. fig10 all    (default: all)
//! --seeds  number of seeds per scenario       (default: 10, paper value)
//! --scale  shrink the grid for quick runs     (default: paper scale)
//! --workers worker threads                    (default: all cores)
//! ```
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p aria-scenarios --bin reproduce -- all
//! cargo run --release -p aria-scenarios --bin reproduce -- fig4 fig10 --seeds 3
//! cargo run --release -p aria-scenarios --bin reproduce -- fig1 --scale 100 200
//! ```

use aria_probe::{Progress, ProgressSink, StderrSink};
use aria_scenarios::{Campaign, Runner};
use std::process::ExitCode;

struct Args {
    ids: Vec<String>,
    seeds: u64,
    scale: Option<(usize, usize)>,
    workers: Option<usize>,
    out: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { ids: Vec::new(), seeds: 10, scale: None, workers: None, out: None };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seeds" => {
                let v = iter.next().ok_or("--seeds needs a value")?;
                args.seeds = v.parse().map_err(|_| format!("bad seed count: {v}"))?;
                if args.seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--scale" => {
                let nodes = iter.next().ok_or("--scale needs NODES and JOBS")?;
                let jobs = iter.next().ok_or("--scale needs NODES and JOBS")?;
                args.scale = Some((
                    nodes.parse().map_err(|_| format!("bad node count: {nodes}"))?,
                    jobs.parse().map_err(|_| format!("bad job count: {jobs}"))?,
                ));
            }
            "--out" => {
                let dir = iter.next().ok_or("--out needs a directory")?;
                args.out = Some(dir.into());
            }
            "--workers" => {
                let v = iter.next().ok_or("--workers needs a value")?;
                args.workers = Some(v.parse().map_err(|_| format!("bad worker count: {v}"))?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: reproduce [IDS...] [--seeds N] [--scale NODES JOBS] [--workers W] [--out DIR]"
                        .into(),
                )
            }
            id => args.ids.push(id.to_string()),
        }
    }
    if args.ids.is_empty() {
        args.ids.push("all".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let mut runner = match args.scale {
        Some((nodes, jobs)) => Runner::scaled(nodes, jobs),
        None => Runner::paper(),
    };
    if let Some(workers) = args.workers {
        runner = runner.workers(workers);
    }
    let seeds: Vec<u64> = (1..=args.seeds).collect();
    // Progress goes through the aria-probe reporting layer, so every
    // long-running tool in the workspace renders it identically (and
    // tests can capture it with a MemorySink).
    let mut progress = StderrSink;
    progress.report(&Progress::new(
        "reproduce",
        format!(
            "{} over {} seed(s){}",
            args.ids.join(", "),
            args.seeds,
            match args.scale {
                Some((n, j)) => format!(" at reduced scale ({n} nodes, {j} jobs)"),
                None => " at paper scale (500 nodes, 1000 jobs)".into(),
            }
        ),
    ));

    if let Some(dir) = &args.out {
        if let Err(error) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {error}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let total = args.ids.len();
    let mut campaign = Campaign::new(runner, seeds);
    for (done, id) in args.ids.iter().enumerate() {
        progress.report(&Progress::new("reproduce", format!("rendering {id}")).with_step(done + 1, total));
        match campaign.render(id) {
            Some(output) => {
                println!("{output}");
                if let Some(dir) = &args.out {
                    let path = dir.join(format!("{}.txt", id.to_ascii_lowercase()));
                    if let Err(error) = std::fs::write(&path, &output) {
                        eprintln!("cannot write {}: {error}", path.display());
                        return ExitCode::FAILURE;
                    }
                    progress.report(&Progress::new("reproduce", format!("wrote {}", path.display())));
                }
            }
            None => {
                eprintln!(
                    "unknown artifact id: {id} (expected table1, table2, fig1..fig10, baselines, all)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    progress.report(&Progress::new("reproduce", format!("done ({total} artifact(s))")));
    ExitCode::SUCCESS
}
