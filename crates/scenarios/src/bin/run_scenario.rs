//! Runs a single Table II scenario and writes the full measurement set
//! as CSV (gauge series, per-job records, traffic) for external
//! analysis.
//!
//! ```text
//! run-scenario SCENARIO [--seed N] [--scale NODES JOBS] [--out DIR]
//!
//! SCENARIO   a Table II name, e.g. iMixed, DeadlineH (case-insensitive)
//! --seed     RNG seed                       (default: 1)
//! --scale    shrink the grid for quick runs (default: paper scale)
//! --out      report directory               (default: ./reports/<scenario>-<seed>)
//! ```
//!
//! Example:
//!
//! ```text
//! cargo run --release -p aria-scenarios --bin run-scenario -- iMixed --seed 3 --out /tmp/imixed
//! ```

use aria_core::World;
use aria_scenarios::Scenario;
use aria_workload::{JobGenerator, SubmissionSchedule};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    scenario: Scenario,
    seed: u64,
    scale: Option<(usize, usize)>,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut scenario = None;
    let mut seed = 1;
    let mut scale = None;
    let mut out = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--scale" => {
                let nodes = iter.next().ok_or("--scale needs NODES and JOBS")?;
                let jobs = iter.next().ok_or("--scale needs NODES and JOBS")?;
                scale = Some((
                    nodes.parse().map_err(|_| format!("bad node count: {nodes}"))?,
                    jobs.parse().map_err(|_| format!("bad job count: {jobs}"))?,
                ));
            }
            "--out" => out = Some(PathBuf::from(iter.next().ok_or("--out needs a directory")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: run-scenario SCENARIO [--seed N] [--scale NODES JOBS] [--out DIR]"
                        .into(),
                )
            }
            name => {
                scenario = Some(
                    Scenario::from_name(name)
                        .ok_or_else(|| format!("unknown scenario `{name}` (see Table II)"))?,
                );
            }
        }
    }
    let scenario = scenario.ok_or("a scenario name is required (e.g. iMixed)")?;
    Ok(Args { scenario, seed, scale, out })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let mut config = args.scenario.world_config();
    let mut schedule = args.scenario.submission_schedule();
    if let Some((nodes, jobs)) = args.scale {
        let shrink = nodes as f64 / config.nodes as f64;
        // det:allow(lossy-float-cast): shrink <= 1, so round(len * shrink) fits
        let keep = (config.joins.len() as f64 * shrink).round() as usize;
        config.nodes = nodes;
        config.joins.truncate(keep);
        config.overlay_path_length = config.overlay_path_length.min((nodes as f64).log2());
        schedule = SubmissionSchedule::new(schedule.start(), schedule.interval(), jobs);
    }

    eprintln!(
        "running {} (seed {}, {} nodes, {} jobs)...",
        args.scenario,
        args.seed,
        config.nodes,
        schedule.count()
    );
    let mut world = World::new(config, args.seed);
    let mut jobs = JobGenerator::new(args.scenario.job_config());
    world.submit_schedule(&schedule, &mut jobs);
    world.run();

    let metrics = world.metrics();
    let dir = args.out.unwrap_or_else(|| {
        PathBuf::from("reports").join(format!("{}-{}", args.scenario.name(), args.seed))
    });
    if let Err(error) = aria_metrics::write_report(&dir, metrics) {
        eprintln!("cannot write report to {}: {error}", dir.display());
        return ExitCode::FAILURE;
    }

    println!(
        "{}: {} jobs completed, mean completion {:.0}s, {:.2} MB traffic",
        args.scenario,
        metrics.completed_count(),
        metrics.completion_summary().mean(),
        metrics.traffic().total_bytes() as f64 / 1e6,
    );
    println!("report written to {}/{{series,jobs,traffic}}.csv", dir.display());
    ExitCode::SUCCESS
}
