//! Multi-seed scenario execution.

use crate::catalog::Scenario;
use aria_core::World;
use aria_metrics::{DeadlineStats, TrafficClass, TrafficLedger};
use aria_probe::{NullProbe, Probe, RingRecorder, Trace, TraceMeta};
use aria_sim::{Summary, TimeSeries};
use aria_workload::JobGenerator;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Compact statistics of one `(scenario, seed)` simulation run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Seed of the run.
    pub seed: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs abandoned after exhausting REQUEST rounds.
    pub abandoned: usize,
    /// Completed-jobs time series (Figure 1).
    pub completed_series: TimeSeries,
    /// Idle-nodes time series (Figures 3, 5, 6).
    pub idle_series: TimeSeries,
    /// Waiting times, seconds (Figure 2).
    pub waiting: Summary,
    /// Execution times, seconds (Figure 2).
    pub execution: Summary,
    /// Completion times, seconds (Figures 2, 7, 8, 9).
    pub completion: Summary,
    /// Median completion time, seconds.
    pub completion_p50: f64,
    /// 95th-percentile completion time, seconds.
    pub completion_p95: f64,
    /// Deadline statistics (Figure 4).
    pub deadline: DeadlineStats,
    /// Message traffic (Figure 10).
    pub traffic: TrafficLedger,
    /// Total dynamic reschedules across jobs.
    pub reschedules: f64,
    /// Wall-clock duration of the simulation loop, seconds. Pure
    /// observability — measured around the run from outside and never
    /// fed back into the simulation (which keeps runs deterministic).
    pub wall_time_secs: f64,
    /// Events drained by the run's event loop.
    pub events: u64,
}

impl RunStats {
    /// Drained events per wall-clock second (0 when the run was too
    /// fast for the clock to register).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_time_secs > 0.0 {
            self.events as f64 / self.wall_time_secs
        } else {
            0.0
        }
    }
}

/// All runs of one scenario plus cross-seed aggregation helpers.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario.
    pub scenario: Scenario,
    /// Per-seed run statistics.
    pub runs: Vec<RunStats>,
}

impl ScenarioResult {
    /// Point-wise average of the completed-jobs series across seeds.
    pub fn avg_completed_series(&self) -> TimeSeries {
        TimeSeries::average(self.runs.iter().map(|r| &r.completed_series))
            .expect("runs share one sampling period")
    }

    /// Point-wise average of the idle-nodes series across seeds.
    pub fn avg_idle_series(&self) -> TimeSeries {
        TimeSeries::average(self.runs.iter().map(|r| &r.idle_series))
            .expect("runs share one sampling period")
    }

    /// Waiting-time summary merged across seeds (seconds).
    pub fn waiting(&self) -> Summary {
        self.merge(|r| r.waiting)
    }

    /// Execution-time summary merged across seeds (seconds).
    pub fn execution(&self) -> Summary {
        self.merge(|r| r.execution)
    }

    /// Completion-time summary merged across seeds (seconds).
    pub fn completion(&self) -> Summary {
        self.merge(|r| r.completion)
    }

    fn merge(&self, pick: impl Fn(&RunStats) -> Summary) -> Summary {
        let mut merged = Summary::new();
        for run in &self.runs {
            merged.merge(&pick(run));
        }
        merged
    }

    /// Averages one per-run statistic across seeds (0 with no runs).
    ///
    /// All the `avg_*` accessors below are this one fold with a
    /// different projection.
    pub fn avg_over_runs(&self, stat: impl Fn(&RunStats) -> f64) -> f64 {
        self.runs.iter().map(stat).sum::<f64>() / self.runs.len().max(1) as f64
    }

    /// Average per-run missed deadlines.
    pub fn avg_missed_deadlines(&self) -> f64 {
        self.avg_over_runs(|r| r.deadline.missed() as f64)
    }

    /// Average lateness (slack of met deadlines) across runs, seconds.
    pub fn avg_lateness_secs(&self) -> f64 {
        self.avg_over_runs(|r| r.deadline.avg_lateness().as_secs_f64())
    }

    /// Average missed time across runs, seconds.
    pub fn avg_missed_time_secs(&self) -> f64 {
        self.avg_over_runs(|r| r.deadline.avg_missed_time().as_secs_f64())
    }

    /// Average per-run message count for a traffic class.
    pub fn avg_messages(&self, class: TrafficClass) -> f64 {
        self.avg_over_runs(|r| r.traffic.messages(class) as f64)
    }

    /// Average per-run bytes for a traffic class.
    pub fn avg_bytes(&self, class: TrafficClass) -> f64 {
        self.avg_messages(class) * class.message_bytes() as f64
    }

    /// Average per-run total bytes across classes.
    pub fn avg_total_bytes(&self) -> f64 {
        TrafficClass::ALL.iter().map(|&c| self.avg_bytes(c)).sum()
    }

    /// Average per-run dynamic reschedule count.
    pub fn avg_reschedules(&self) -> f64 {
        self.avg_over_runs(|r| r.reschedules)
    }

    /// Median completion time averaged across runs, seconds.
    pub fn avg_completion_p50(&self) -> f64 {
        self.avg_over_runs(|r| r.completion_p50)
    }

    /// 95th-percentile completion time averaged across runs, seconds.
    pub fn avg_completion_p95(&self) -> f64 {
        self.avg_over_runs(|r| r.completion_p95)
    }

    /// Average completed jobs per run.
    pub fn avg_completed(&self) -> f64 {
        self.avg_over_runs(|r| r.completed as f64)
    }

    /// Average per-run wall-clock duration, seconds.
    pub fn avg_wall_time_secs(&self) -> f64 {
        self.avg_over_runs(|r| r.wall_time_secs)
    }

    /// Average per-run event throughput, events per wall-clock second.
    pub fn avg_events_per_sec(&self) -> f64 {
        self.avg_over_runs(RunStats::events_per_sec)
    }
}

/// Executes scenarios across seeds.
///
/// Which event loop a `run_once*` call drives the world with. Both
/// executors produce bit-for-bit identical trajectories; the choice
/// only affects wall time.
#[derive(Debug, Clone, Copy)]
enum Exec {
    /// [`World::run`] (or [`World::run_checked`] under `checked`).
    Serial { checked: bool },
    /// [`World::run_sharded`] with this shard count.
    Sharded { shards: usize },
}

/// At paper scale each run simulates 500-700 nodes for 41h40m of grid
/// time; [`Runner::scaled`] provides a shrunken variant for tests,
/// examples and quick iterations.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    /// Override for the node count (`None` = paper scale).
    nodes: Option<usize>,
    /// Override for the job count (`None` = paper scale).
    jobs: Option<usize>,
    /// Upper bound on worker threads for the seed fan-out; the actual
    /// count is capped by the shared [`aria_sim::pool`] permit budget.
    workers: usize,
}

impl Runner {
    /// A full paper-scale runner.
    pub fn paper() -> Self {
        Runner { nodes: None, jobs: None, workers: Self::default_workers() }
    }

    /// A scaled-down runner with the given node and job counts
    /// (submission interval and horizon are kept, so load *per node*
    /// rises as the grid shrinks).
    pub fn scaled(nodes: usize, jobs: usize) -> Self {
        Runner { nodes: Some(nodes), jobs: Some(jobs), workers: Self::default_workers() }
    }

    /// Sets the number of worker threads (builder-style).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    fn default_workers() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// The node count used for `fallback`-sized worlds under this
    /// runner's scale overrides.
    pub fn nodes_or(&self, fallback: usize) -> usize {
        self.nodes.unwrap_or(fallback)
    }

    /// The submission schedule for a scenario under this runner's scale
    /// overrides.
    pub fn schedule_for(&self, scenario: Scenario) -> aria_workload::SubmissionSchedule {
        let schedule = scenario.submission_schedule();
        match self.jobs {
            Some(jobs) => aria_workload::SubmissionSchedule::new(
                schedule.start(),
                schedule.interval(),
                jobs,
            ),
            None => schedule,
        }
    }

    /// Builds the world for one run of `scenario` (applying any scale
    /// overrides) and executes it with the scenario's workload.
    pub fn run_once(&self, scenario: Scenario, seed: u64) -> RunStats {
        self.run_once_with(scenario, seed, false)
    }

    /// Like [`Runner::run_once`], but audits the full protocol state
    /// machine after every drained event via
    /// [`World::check_invariants`], in every build profile.
    ///
    /// The audit is read-only, so the returned statistics are
    /// bit-for-bit identical to [`Runner::run_once`] for the same
    /// `(scenario, seed)` — `tests/invariants_golden.rs` asserts
    /// exactly that. Orders of magnitude slower; test-scale worlds only.
    pub fn run_once_checked(&self, scenario: Scenario, seed: u64) -> RunStats {
        self.run_once_with(scenario, seed, true)
    }

    fn run_once_with(&self, scenario: Scenario, seed: u64, checked: bool) -> RunStats {
        self.run_once_instrumented(scenario, seed, checked, NullProbe).0
    }

    /// Runs one `(scenario, seed)` with a structured-event trace
    /// attached: every protocol transition is recorded into a bounded
    /// [`RingRecorder`] and returned as an exportable [`Trace`]
    /// alongside the usual statistics.
    ///
    /// The probe observes without participating, so the statistics are
    /// bit-for-bit identical to [`Runner::run_once`] for the same
    /// `(scenario, seed)` — `tests/probe_golden.rs` pins that.
    pub fn run_once_traced(&self, scenario: Scenario, seed: u64) -> (RunStats, Trace) {
        let (stats, world) =
            self.run_once_instrumented(scenario, seed, false, RingRecorder::default());
        let meta = TraceMeta {
            scenario: scenario.to_string(),
            seed,
            nodes: world.config().nodes as u64,
            jobs: self.schedule_for(scenario).count() as u64,
        };
        (stats, world.into_probe().into_trace(meta))
    }

    /// The shared instrumented core: builds the world with an explicit
    /// [`Probe`], executes the scenario's workload, and returns the
    /// statistics together with the finished world (so callers can
    /// extract the probe or inspect final state).
    pub fn run_once_instrumented<P: Probe>(
        &self,
        scenario: Scenario,
        seed: u64,
        checked: bool,
        probe: P,
    ) -> (RunStats, World<P>) {
        self.run_once_faulted(scenario, seed, aria_core::FaultPlan::none(), checked, probe)
    }

    /// Like [`Runner::run_once_instrumented`], but runs the scenario
    /// over a lossy transport: `fault` replaces the scenario's (always
    /// reliable) [`aria_core::FaultPlan`]. With [`aria_core::FaultPlan::none`]
    /// this is exactly `run_once_instrumented` — the robustness
    /// campaigns in [`crate::sweep`] build on this entry point.
    pub fn run_once_faulted<P: Probe>(
        &self,
        scenario: Scenario,
        seed: u64,
        fault: aria_core::FaultPlan,
        checked: bool,
        probe: P,
    ) -> (RunStats, World<P>) {
        self.run_once_exec(scenario, seed, fault, Exec::Serial { checked }, probe)
    }

    /// Like [`Runner::run_once_traced`], but drives the world with the
    /// latency-horizon sharded executor ([`World::run_sharded`]) instead
    /// of the serial event loop. The two produce bit-for-bit identical
    /// trajectories, so the exported traces must be `probe diff`-equal —
    /// CI uses exactly that comparison as the sharded determinism gate.
    pub fn run_once_traced_sharded(
        &self,
        scenario: Scenario,
        seed: u64,
        shards: usize,
    ) -> (RunStats, Trace) {
        let (stats, world) = self.run_once_exec(
            scenario,
            seed,
            aria_core::FaultPlan::none(),
            Exec::Sharded { shards },
            RingRecorder::default(),
        );
        let meta = TraceMeta {
            scenario: scenario.to_string(),
            seed,
            nodes: world.config().nodes as u64,
            jobs: self.schedule_for(scenario).count() as u64,
        };
        (stats, world.into_probe().into_trace(meta))
    }

    /// The shared run core behind every `run_once*` flavour: builds the
    /// world, drives it with the selected executor, and collects the
    /// statistics.
    fn run_once_exec<P: Probe>(
        &self,
        scenario: Scenario,
        seed: u64,
        fault: aria_core::FaultPlan,
        exec: Exec,
        probe: P,
    ) -> (RunStats, World<P>) {
        let mut world = self.build_world(scenario, seed, fault, probe);
        // Timing the loop from outside is pure observability: the
        // reading is reported, never fed back into the simulation.
        #[allow(clippy::disallowed_types, clippy::disallowed_methods)]
        let start = std::time::Instant::now(); // det:allow(wall-clock): observability-only timing around the run
        match exec {
            Exec::Serial { checked: true } => {
                world.run_checked();
            }
            Exec::Serial { checked: false } => {
                world.run();
            }
            Exec::Sharded { shards } => {
                world.run_sharded(shards);
            }
        }
        let wall_time_secs = start.elapsed().as_secs_f64();

        let metrics = world.metrics();
        let completions: Vec<f64> = metrics
            .records()
            .values()
            .filter_map(|r| r.completion_time())
            .map(|d| d.as_secs_f64())
            .collect();
        let stats = RunStats {
            seed,
            completed: metrics.completed_count(),
            abandoned: world.abandoned_jobs().len(),
            completed_series: metrics.completed_series().clone(),
            idle_series: metrics.idle_series().clone(),
            waiting: metrics.waiting_summary(),
            execution: metrics.execution_summary(),
            completion: metrics.completion_summary(),
            completion_p50: aria_sim::stats::percentile(&completions, 0.5),
            completion_p95: aria_sim::stats::percentile(&completions, 0.95),
            deadline: metrics.deadline_stats(),
            traffic: *metrics.traffic(),
            reschedules: metrics.reschedule_summary().sum(),
            wall_time_secs,
            events: world.processed_events(),
        };
        (stats, world)
    }

    /// Builds — but does not run — the exact world one `(scenario,
    /// seed)` run executes: the scenario's config under this runner's
    /// scale overrides, with the given fault plan and probe attached
    /// and the scenario's workload already scheduled.
    ///
    /// Every `run_once*` entry point goes through here, so a caller
    /// that needs a different run loop (the effect-tracer audit of
    /// `cargo xtask effects --audit` and `tests/effects_map.rs`
    /// replaying the determinism goldens under
    /// [`World::run_effect_traced`]) is guaranteed to drive a
    /// bit-identical world.
    pub fn build_world<P: Probe>(
        &self,
        scenario: Scenario,
        seed: u64,
        fault: aria_core::FaultPlan,
        probe: P,
    ) -> World<P> {
        let mut config = scenario.world_config();
        config.fault = fault;
        if let Some(nodes) = self.nodes {
            let shrink = nodes as f64 / config.nodes as f64;
            config.nodes = nodes;
            // Scale the expanding-scenario joins with the grid.
            // det:allow(lossy-float-cast): shrink <= 1, so round(len * shrink) fits
            let keep = (config.joins.len() as f64 * shrink).round() as usize;
            config.joins.truncate(keep);
            // Small overlays cannot sustain a 9-hop average path bound.
            config.overlay_path_length = config.overlay_path_length.min((nodes as f64).log2());
        }
        let schedule = self.schedule_for(scenario);

        let mut world = World::with_probe(config, seed, probe);
        let mut generator = JobGenerator::new(scenario.job_config());
        world.submit_schedule(&schedule, &mut generator);
        world
    }

    /// Runs one scenario over the given seeds.
    pub fn run(&self, scenario: Scenario, seeds: &[u64]) -> ScenarioResult {
        let results = self.run_many(&[scenario], seeds);
        results.into_iter().next().expect("one scenario requested")
    }

    /// Runs several scenarios over the given seeds, fanning the
    /// `(scenario, seed)` pairs out over worker threads.
    pub fn run_many(&self, scenarios: &[Scenario], seeds: &[u64]) -> Vec<ScenarioResult> {
        let pairs: Vec<(usize, Scenario, u64)> = scenarios
            .iter()
            .enumerate()
            .flat_map(|(i, &s)| seeds.iter().map(move |&seed| (i, s, seed)))
            .collect();

        let mut by_scenario: BTreeMap<usize, Vec<RunStats>> = BTreeMap::new();
        // Worker threads draw permits from the process-wide budget
        // (`aria_sim::pool`), shared with the shard executor, so
        // concurrent runners times shards never exceeds the core count.
        // A zero grant — budget exhausted, or a single pair — runs the
        // pairs serially on this thread; results are identical either
        // way, only wall-clock time changes.
        let reservation = if self.workers <= 1 || pairs.len() <= 1 {
            aria_sim::pool::reserve(0)
        } else {
            aria_sim::pool::reserve(self.workers.min(pairs.len()))
        };
        if reservation.workers() == 0 {
            for (i, scenario, seed) in pairs {
                by_scenario.entry(i).or_default().push(self.run_once(scenario, seed));
            }
        } else {
            // Work-stealing over a shared cursor: each worker claims the
            // next (scenario, seed) pair until the list is exhausted.
            let next = AtomicUsize::new(0);
            let (result_tx, result_rx) = mpsc::channel();
            std::thread::scope(|scope| {
                for _ in 0..reservation.workers() {
                    let result_tx = result_tx.clone();
                    let (pairs, next) = (&pairs, &next);
                    scope.spawn(move || loop {
                        let claimed = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(i, scenario, seed)) = pairs.get(claimed) else {
                            break;
                        };
                        let stats = self.run_once(scenario, seed);
                        result_tx.send((i, stats)).expect("reporting result");
                    });
                }
                drop(result_tx);
                while let Ok((i, stats)) = result_rx.recv() {
                    by_scenario.entry(i).or_default().push(stats);
                }
            });
        }

        by_scenario
            .into_iter()
            .map(|(i, mut runs)| {
                runs.sort_by_key(|r| r.seed);
                ScenarioResult { scenario: scenarios[i], runs }
            })
            .collect()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Runner {
        Runner::scaled(30, 15)
    }

    #[test]
    fn run_once_completes_all_jobs() {
        let stats = tiny().run_once(Scenario::IMixed, 3);
        assert_eq!(stats.completed, 15);
        assert_eq!(stats.abandoned, 0);
        assert_eq!(stats.completion.count(), 15);
        assert!(stats.traffic.total_messages() > 0);
    }

    #[test]
    fn run_aggregates_over_seeds() {
        let result = tiny().run(Scenario::Mixed, &[1, 2]);
        assert_eq!(result.runs.len(), 2);
        assert_eq!(result.runs[0].seed, 1);
        assert_eq!(result.runs[1].seed, 2);
        assert_eq!(result.completion().count(), 30);
        assert_eq!(result.avg_completed(), 15.0);
        let avg = result.avg_completed_series();
        assert!(!avg.is_empty());
        assert_eq!(*avg.values().last().unwrap(), 15.0);
    }

    #[test]
    fn percentiles_bracket_the_mean() {
        let result = tiny().run(Scenario::IMixed, &[4]);
        let run = &result.runs[0];
        assert!(run.completion_p50 > 0.0);
        assert!(run.completion_p95 >= run.completion_p50);
        assert!(run.completion.min() <= result.avg_completion_p50());
        assert!(result.avg_completion_p95() <= run.completion.max());
    }

    #[test]
    fn run_many_keeps_scenario_order() {
        let results = tiny().run_many(&[Scenario::Mixed, Scenario::IMixed], &[1]);
        assert_eq!(results[0].scenario, Scenario::Mixed);
        assert_eq!(results[1].scenario, Scenario::IMixed);
    }

    #[test]
    fn plain_scenarios_have_no_inform_traffic() {
        let result = tiny().run(Scenario::Mixed, &[5]);
        assert_eq!(result.avg_messages(TrafficClass::Inform), 0.0);
        assert_eq!(result.avg_reschedules(), 0.0);
    }

    #[test]
    fn deadline_scenario_reports_deadline_stats() {
        let result = tiny().run(Scenario::IDeadline, &[7]);
        let run = &result.runs[0];
        assert_eq!(run.deadline.met() + run.deadline.missed(), run.completed);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let serial = tiny().workers(1).run(Scenario::Mixed, &[1, 2]);
        let parallel = tiny().workers(4).run(Scenario::Mixed, &[1, 2]);
        assert_eq!(serial.completion().mean(), parallel.completion().mean());
        assert_eq!(
            serial.avg_messages(TrafficClass::Request),
            parallel.avg_messages(TrafficClass::Request)
        );
    }

    #[test]
    fn scaled_runner_shrinks_expanding_joins() {
        let stats = Runner::scaled(50, 10).run_once(Scenario::IExpanding, 2);
        assert_eq!(stats.completed, 10);
    }
}
