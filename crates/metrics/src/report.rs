//! CSV export of collected metrics — the bridge from simulation runs to
//! external plotting/analysis tools (hand-rolled; no `csv` dependency).

use crate::collector::MetricsCollector;
use crate::record::JobRecord;
use crate::traffic::{TrafficClass, TrafficLedger};
use aria_sim::TimeSeries;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders labelled time series as CSV: a `time_s` column followed by
/// one column per series. Ragged lengths leave trailing cells empty.
///
/// # Panics
///
/// Panics if the series do not share one sampling period.
pub fn series_csv(series: &[(&str, &TimeSeries)]) -> String {
    let mut out = String::from("time_s");
    for (label, _) in series {
        let _ = write!(out, ",{}", quote(label));
    }
    out.push('\n');
    let Some((_, first)) = series.first() else {
        return out;
    };
    assert!(
        series.iter().all(|(_, s)| s.period() == first.period()),
        "series periods differ"
    );
    let rows = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for i in 0..rows {
        let _ = write!(out, "{}", first.time_at(i).as_secs());
        for (_, s) in series {
            match s.values().get(i) {
                Some(v) => {
                    let _ = write!(out, ",{v}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders per-job life-cycle records as CSV, one row per job.
pub fn records_csv<'a, I>(records: I) -> String
where
    I: IntoIterator<Item = &'a JobRecord>,
{
    let mut out = String::from(
        "job,submitted_s,first_assigned_s,assignments,reschedules,started_s,executed_on,\
         completed_s,waiting_s,execution_s,completion_s,deadline_s,deadline_slack_s\n",
    );
    for r in records {
        let opt_t = |t: Option<aria_sim::SimTime>| t.map_or(String::new(), |t| t.as_secs().to_string());
        let opt_d =
            |d: Option<aria_sim::SimDuration>| d.map_or(String::new(), |d| d.as_secs().to_string());
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.id.raw(),
            r.submitted_at.as_secs(),
            opt_t(r.first_assigned_at),
            r.assignments,
            r.reschedules,
            opt_t(r.started_at),
            r.executed_on.map_or(String::new(), |n| n.to_string()),
            opt_t(r.completed_at),
            opt_d(r.waiting_time()),
            opt_d(r.execution_time()),
            opt_d(r.completion_time()),
            opt_t(r.deadline),
            r.deadline_slack().map_or(String::new(), |s| (s / 1000).to_string()),
        );
    }
    out
}

/// Renders a traffic ledger as CSV, one row per message class.
pub fn traffic_csv(ledger: &TrafficLedger) -> String {
    let mut out = String::from("class,messages,bytes\n");
    for class in TrafficClass::ALL {
        let _ = writeln!(out, "{},{},{}", class, ledger.messages(class), ledger.bytes(class));
    }
    let _ = writeln!(out, "TOTAL,{},{}", ledger.total_messages(), ledger.total_bytes());
    out
}

/// Writes a full report for one run into `dir`: `series.csv` (completed /
/// idle / queued gauges), `jobs.csv` and `traffic.csv`.
///
/// # Errors
///
/// Propagates filesystem errors (directory creation, file writes).
pub fn write_report(dir: &Path, metrics: &MetricsCollector) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("series.csv"),
        series_csv(&[
            ("completed_jobs", metrics.completed_series()),
            ("idle_nodes", metrics.idle_series()),
            ("queued_jobs", metrics.queued_series()),
        ]),
    )?;
    std::fs::write(dir.join("jobs.csv"), records_csv(metrics.records().values()))?;
    std::fs::write(dir.join("traffic.csv"), traffic_csv(metrics.traffic()))?;
    Ok(())
}

/// Quotes a CSV field if it contains separators or quotes.
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_grid::{Architecture, JobId, JobRequirements, JobSpec, OperatingSystem};
    use aria_sim::{SimDuration, SimTime};

    fn sample_collector() -> MetricsCollector {
        let mut m = MetricsCollector::new(SimDuration::from_mins(1));
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        let job = JobSpec::with_deadline(
            JobId::new(0),
            req,
            SimDuration::from_hours(1),
            SimTime::from_mins(200),
        );
        m.job_submitted(&job, SimTime::from_mins(1));
        m.job_assigned(job.id, SimTime::from_mins(2), false);
        m.job_started(job.id, 7, SimTime::from_mins(10));
        m.sample_gauges(3, 1);
        m.job_completed(job.id, SimTime::from_mins(70));
        m.sample_gauges(4, 0);
        m.record_message(TrafficClass::Request);
        m.record_message(TrafficClass::Accept);
        m
    }

    #[test]
    fn series_csv_has_header_and_rows() {
        let m = sample_collector();
        let csv = series_csv(&[
            ("completed_jobs", m.completed_series()),
            ("idle_nodes", m.idle_series()),
        ]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,completed_jobs,idle_nodes");
        assert_eq!(lines[1], "0,0,3");
        assert_eq!(lines[2], "60,1,4");
    }

    #[test]
    fn series_csv_handles_ragged_lengths() {
        let mut a = TimeSeries::new(SimDuration::from_secs(1));
        a.push(1.0);
        a.push(2.0);
        let mut b = TimeSeries::new(SimDuration::from_secs(1));
        b.push(9.0);
        let csv = series_csv(&[("a", &a), ("b", &b)]);
        assert!(csv.lines().nth(2).unwrap().ends_with("2,"), "{csv}");
    }

    #[test]
    #[should_panic(expected = "periods differ")]
    fn series_csv_rejects_mixed_periods() {
        let a = TimeSeries::new(SimDuration::from_secs(1));
        let b = TimeSeries::new(SimDuration::from_secs(2));
        series_csv(&[("a", &a), ("b", &b)]);
    }

    #[test]
    fn records_csv_renders_complete_rows() {
        let m = sample_collector();
        let csv = records_csv(m.records().values());
        let row = csv.lines().nth(1).unwrap();
        // job 0: submitted 60s, assigned 120s, started 600s on node 7,
        // completed 4200s => waiting 540s, execution 3600s, completion 4140s,
        // deadline 12000s => slack 7800s.
        assert_eq!(row, "0,60,120,1,0,600,7,4200,540,3600,4140,12000,7800");
    }

    #[test]
    fn records_csv_leaves_blanks_for_incomplete_jobs() {
        let mut m = MetricsCollector::new(SimDuration::from_mins(1));
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        let job = JobSpec::batch(JobId::new(5), req, SimDuration::from_hours(1));
        m.job_submitted(&job, SimTime::ZERO);
        let csv = records_csv(m.records().values());
        assert!(csv.lines().nth(1).unwrap().starts_with("5,0,,0,0,,,"), "{csv}");
    }

    #[test]
    fn traffic_csv_totals_add_up() {
        let m = sample_collector();
        let csv = traffic_csv(m.traffic());
        assert!(csv.contains("REQUEST,1,1024"));
        assert!(csv.contains("ACCEPT,1,128"));
        assert!(csv.contains("TOTAL,2,1152"));
    }

    #[test]
    fn write_report_creates_all_files() {
        let dir = std::env::temp_dir().join(format!("aria_report_test_{}", std::process::id()));
        let m = sample_collector();
        write_report(&dir, &m).unwrap();
        for file in ["series.csv", "jobs.csv", "traffic.csv"] {
            let content = std::fs::read_to_string(dir.join(file)).unwrap();
            assert!(content.lines().count() >= 2, "{file} too short");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_quoting_escapes_separators() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
