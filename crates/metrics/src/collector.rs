//! The per-run metrics collector.

use crate::deadline::DeadlineStats;
use crate::record::JobRecord;
use crate::traffic::{TrafficClass, TrafficLedger};
use aria_grid::{JobId, JobSpec};
use aria_sim::{SimDuration, SimTime, Summary, TimeSeries};
use std::collections::BTreeMap;

/// Collects everything one simulation run produces: job life-cycle
/// records, gauge time series sampled at a fixed period, and the traffic
/// ledger.
///
/// The simulation calls the `job_*` methods as protocol events occur,
/// [`MetricsCollector::record_message`] for every transmitted message,
/// and [`MetricsCollector::sample_gauges`] at each sampling tick.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    completed_count: u64,
    records: BTreeMap<JobId, JobRecord>,
    completed_series: TimeSeries,
    idle_series: TimeSeries,
    queued_series: TimeSeries,
    traffic: TrafficLedger,
}

impl MetricsCollector {
    /// Creates a collector sampling gauges every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: SimDuration) -> Self {
        MetricsCollector {
            completed_count: 0,
            records: BTreeMap::new(),
            completed_series: TimeSeries::new(period),
            idle_series: TimeSeries::new(period),
            queued_series: TimeSeries::new(period),
            traffic: TrafficLedger::new(),
        }
    }

    // --- event hooks -----------------------------------------------------

    /// A job entered the grid.
    pub fn job_submitted(&mut self, spec: &JobSpec, now: SimTime) {
        self.records.insert(spec.id, JobRecord::new(spec, now));
    }

    /// An ASSIGN was sent for a job (`reschedule` distinguishes dynamic
    /// moves from the initial delegation).
    pub fn job_assigned(&mut self, id: JobId, now: SimTime, reschedule: bool) {
        if let Some(r) = self.records.get_mut(&id) {
            r.assignments += 1;
            if reschedule {
                r.reschedules += 1;
            }
            if r.first_assigned_at.is_none() {
                r.first_assigned_at = Some(now);
            }
        }
    }

    /// A job started executing on node `node`.
    pub fn job_started(&mut self, id: JobId, node: u32, now: SimTime) {
        if let Some(r) = self.records.get_mut(&id) {
            r.started_at = Some(now);
            r.executed_on = Some(node);
        }
    }

    /// A job finished executing.
    pub fn job_completed(&mut self, id: JobId, now: SimTime) {
        if let Some(r) = self.records.get_mut(&id) {
            debug_assert!(r.completed_at.is_none(), "{id} completed twice");
            r.completed_at = Some(now);
            self.completed_count += 1;
        }
    }

    /// One protocol message was transmitted over one overlay hop.
    pub fn record_message(&mut self, class: TrafficClass) {
        self.traffic.record(class);
    }

    /// Samples the periodic gauges: number of currently idle nodes and
    /// total queued (waiting, not running) jobs across the grid.
    pub fn sample_gauges(&mut self, idle_nodes: usize, queued_jobs: usize) {
        self.completed_series.push(self.completed_count as f64);
        self.idle_series.push(idle_nodes as f64);
        self.queued_series.push(queued_jobs as f64);
    }

    // --- queries ----------------------------------------------------------

    /// Jobs completed so far.
    pub fn completed_count(&self) -> u64 {
        self.completed_count
    }

    /// All job records, keyed by id.
    pub fn records(&self) -> &BTreeMap<JobId, JobRecord> {
        &self.records
    }

    /// Completed-jobs-over-time series (Figure 1).
    pub fn completed_series(&self) -> &TimeSeries {
        &self.completed_series
    }

    /// Idle-nodes-over-time series (Figures 3, 5, 6).
    pub fn idle_series(&self) -> &TimeSeries {
        &self.idle_series
    }

    /// Queued-jobs-over-time series (auxiliary).
    pub fn queued_series(&self) -> &TimeSeries {
        &self.queued_series
    }

    /// The traffic ledger (Figure 10).
    pub fn traffic(&self) -> &TrafficLedger {
        &self.traffic
    }

    /// Summary of waiting times over completed jobs, in seconds.
    pub fn waiting_summary(&self) -> Summary {
        self.records
            .values()
            .filter_map(|r| r.waiting_time())
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// Summary of execution times over completed jobs, in seconds.
    pub fn execution_summary(&self) -> Summary {
        self.records
            .values()
            .filter_map(|r| r.execution_time())
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// Summary of completion times over completed jobs, in seconds
    /// (Figures 2, 7, 8, 9).
    pub fn completion_summary(&self) -> Summary {
        self.records
            .values()
            .filter_map(|r| r.completion_time())
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// Summary of per-job reschedule counts.
    pub fn reschedule_summary(&self) -> Summary {
        self.records.values().map(|r| r.reschedules as f64).collect()
    }

    /// Deadline statistics over completed deadline jobs (Figure 4).
    pub fn deadline_stats(&self) -> DeadlineStats {
        DeadlineStats::from_records(self.records.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_grid::{Architecture, JobRequirements, OperatingSystem};

    fn spec(id: u64) -> JobSpec {
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        JobSpec::batch(JobId::new(id), req, SimDuration::from_hours(1))
    }

    fn collector() -> MetricsCollector {
        MetricsCollector::new(SimDuration::from_mins(1))
    }

    #[test]
    fn life_cycle_is_recorded() {
        let mut m = collector();
        let s = spec(1);
        m.job_submitted(&s, SimTime::from_mins(10));
        m.job_assigned(s.id, SimTime::from_mins(11), false);
        m.job_assigned(s.id, SimTime::from_mins(20), true);
        m.job_started(s.id, 4, SimTime::from_mins(30));
        m.job_completed(s.id, SimTime::from_mins(90));

        let r = &m.records()[&s.id];
        assert_eq!(r.assignments, 2);
        assert_eq!(r.reschedules, 1);
        assert_eq!(r.first_assigned_at, Some(SimTime::from_mins(11)));
        assert_eq!(r.executed_on, Some(4));
        assert_eq!(m.completed_count(), 1);
    }

    #[test]
    fn events_for_unknown_jobs_are_ignored() {
        let mut m = collector();
        m.job_assigned(JobId::new(9), SimTime::ZERO, false);
        m.job_started(JobId::new(9), 1, SimTime::ZERO);
        m.job_completed(JobId::new(9), SimTime::ZERO);
        assert_eq!(m.completed_count(), 0);
        assert!(m.records().is_empty());
    }

    #[test]
    fn gauge_series_accumulate() {
        let mut m = collector();
        let s = spec(1);
        m.job_submitted(&s, SimTime::ZERO);
        m.sample_gauges(10, 3);
        m.job_started(s.id, 0, SimTime::from_secs(30));
        m.job_completed(s.id, SimTime::from_secs(60));
        m.sample_gauges(12, 2);
        assert_eq!(m.completed_series().values(), [0.0, 1.0]);
        assert_eq!(m.idle_series().values(), [10.0, 12.0]);
        assert_eq!(m.queued_series().values(), [3.0, 2.0]);
    }

    #[test]
    fn summaries_cover_completed_jobs_only() {
        let mut m = collector();
        for id in 0..3 {
            m.job_submitted(&spec(id), SimTime::ZERO);
        }
        m.job_started(JobId::new(0), 0, SimTime::from_mins(10));
        m.job_completed(JobId::new(0), SimTime::from_mins(70));
        m.job_started(JobId::new(1), 1, SimTime::from_mins(20));
        // job 1 still running, job 2 still waiting

        assert_eq!(m.completion_summary().count(), 1);
        assert_eq!(m.waiting_summary().count(), 2); // jobs 0 and 1 started
        assert_eq!(m.execution_summary().count(), 1);
        assert_eq!(m.completion_summary().mean(), 70.0 * 60.0);
    }

    #[test]
    fn traffic_is_ledgered() {
        let mut m = collector();
        m.record_message(TrafficClass::Request);
        m.record_message(TrafficClass::Accept);
        assert_eq!(m.traffic().total_messages(), 2);
        assert_eq!(m.traffic().total_bytes(), 1024 + 128);
    }

    #[test]
    fn reschedule_summary_counts_moves() {
        let mut m = collector();
        for id in 0..2 {
            m.job_submitted(&spec(id), SimTime::ZERO);
        }
        m.job_assigned(JobId::new(0), SimTime::ZERO, false);
        m.job_assigned(JobId::new(0), SimTime::ZERO, true);
        m.job_assigned(JobId::new(0), SimTime::ZERO, true);
        m.job_assigned(JobId::new(1), SimTime::ZERO, false);
        let s = m.reschedule_summary();
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 1.0);
        assert_eq!(s.max(), 2.0);
    }
}
