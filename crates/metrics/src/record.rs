//! Per-job life-cycle records.

use aria_grid::{JobId, JobSpec};
use aria_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The observable life cycle of one job, from submission to completion.
///
/// All of the paper's per-job metrics derive from this record: waiting
/// time and execution time (Figure 2), completion time (Figures 7, 8, 9)
/// and deadline lateness (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job's id.
    pub id: JobId,
    /// Baseline running-time estimate carried by the job.
    pub ert: SimDuration,
    /// The job's deadline, if it has one.
    pub deadline: Option<SimTime>,
    /// When the job entered the grid (REQUEST issued by its initiator).
    pub submitted_at: SimTime,
    /// When the first ASSIGN was sent, if any.
    pub first_assigned_at: Option<SimTime>,
    /// Total number of ASSIGN messages for this job (initial + moves).
    pub assignments: u32,
    /// Number of dynamic reschedules (assignments after the first).
    pub reschedules: u32,
    /// When execution started.
    pub started_at: Option<SimTime>,
    /// Raw id of the node that executed the job.
    pub executed_on: Option<u32>,
    /// When execution completed.
    pub completed_at: Option<SimTime>,
}

impl JobRecord {
    /// Creates a fresh record for a submitted job.
    pub fn new(spec: &JobSpec, submitted_at: SimTime) -> Self {
        JobRecord {
            id: spec.id,
            ert: spec.ert,
            deadline: spec.deadline,
            submitted_at,
            first_assigned_at: None,
            assignments: 0,
            reschedules: 0,
            started_at: None,
            executed_on: None,
            completed_at: None,
        }
    }

    /// Whether the job finished executing.
    pub fn is_completed(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Time from submission to execution start (the paper's *waiting
    /// time*), or `None` if the job has not started.
    pub fn waiting_time(&self) -> Option<SimDuration> {
        Some(self.started_at?.saturating_since(self.submitted_at))
    }

    /// Time from execution start to completion (the paper's *execution
    /// time*), or `None` if the job has not completed.
    pub fn execution_time(&self) -> Option<SimDuration> {
        Some(self.completed_at?.saturating_since(self.started_at?))
    }

    /// Time from submission to completion (the paper's *completion
    /// time*), or `None` if the job has not completed.
    pub fn completion_time(&self) -> Option<SimDuration> {
        Some(self.completed_at?.saturating_since(self.submitted_at))
    }

    /// Signed slack at completion: `deadline − completion` in
    /// milliseconds (positive = met with room, negative = missed).
    ///
    /// `None` for jobs without a deadline or not yet completed.
    pub fn deadline_slack(&self) -> Option<i64> {
        Some(self.deadline?.signed_delta(self.completed_at?))
    }

    /// Whether the job missed its deadline (false for batch jobs).
    pub fn missed_deadline(&self) -> bool {
        self.deadline_slack().is_some_and(|slack| slack < 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_grid::{Architecture, JobRequirements, OperatingSystem};

    fn spec(deadline: Option<SimTime>) -> JobSpec {
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        match deadline {
            None => JobSpec::batch(JobId::new(1), req, SimDuration::from_hours(2)),
            Some(d) => JobSpec::with_deadline(JobId::new(1), req, SimDuration::from_hours(2), d),
        }
    }

    fn completed_record(deadline: Option<SimTime>, completed: SimTime) -> JobRecord {
        let mut r = JobRecord::new(&spec(deadline), SimTime::from_mins(10));
        r.first_assigned_at = Some(SimTime::from_mins(11));
        r.assignments = 1;
        r.started_at = Some(SimTime::from_mins(40));
        r.executed_on = Some(3);
        r.completed_at = Some(completed);
        r
    }

    #[test]
    fn fresh_record_has_no_derived_times() {
        let r = JobRecord::new(&spec(None), SimTime::ZERO);
        assert!(!r.is_completed());
        assert_eq!(r.waiting_time(), None);
        assert_eq!(r.execution_time(), None);
        assert_eq!(r.completion_time(), None);
        assert_eq!(r.deadline_slack(), None);
        assert!(!r.missed_deadline());
    }

    #[test]
    fn derived_times_decompose_completion() {
        let r = completed_record(None, SimTime::from_mins(160));
        assert_eq!(r.waiting_time(), Some(SimDuration::from_mins(30)));
        assert_eq!(r.execution_time(), Some(SimDuration::from_mins(120)));
        assert_eq!(r.completion_time(), Some(SimDuration::from_mins(150)));
        // completion = waiting + execution
        assert_eq!(
            r.completion_time().unwrap(),
            r.waiting_time().unwrap() + r.execution_time().unwrap()
        );
    }

    #[test]
    fn met_deadline_has_positive_slack() {
        let r = completed_record(Some(SimTime::from_mins(200)), SimTime::from_mins(160));
        assert_eq!(r.deadline_slack(), Some(40 * 60_000));
        assert!(!r.missed_deadline());
    }

    #[test]
    fn missed_deadline_has_negative_slack() {
        let r = completed_record(Some(SimTime::from_mins(100)), SimTime::from_mins(160));
        assert_eq!(r.deadline_slack(), Some(-60 * 60_000));
        assert!(r.missed_deadline());
    }

    #[test]
    fn batch_jobs_never_miss() {
        let r = completed_record(None, SimTime::from_mins(160));
        assert_eq!(r.deadline_slack(), None);
        assert!(!r.missed_deadline());
    }
}
