//! Deadline-scheduling performance (Figure 4): missed deadlines, average
//! lateness over met deadlines, average missed time over failed ones.

use crate::record::JobRecord;
use aria_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate deadline statistics over a set of completed jobs.
///
/// The paper's vocabulary (§V-A):
/// * **missed deadlines** — jobs completing after their deadline;
/// * **lateness** — "the time left from completion to the deadline",
///   averaged over successfully met deadlines;
/// * **missed time** — "time past the deadline", averaged over failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DeadlineStats {
    met: u64,
    missed: u64,
    slack_ms_sum: u64,
    missed_ms_sum: u64,
}

impl DeadlineStats {
    /// Computes statistics from completed deadline jobs (records without
    /// a deadline or not yet completed are ignored).
    pub fn from_records<'a, I>(records: I) -> Self
    where
        I: IntoIterator<Item = &'a JobRecord>,
    {
        let mut stats = DeadlineStats::default();
        for record in records {
            let Some(slack) = record.deadline_slack() else { continue };
            if slack >= 0 {
                stats.met += 1;
                stats.slack_ms_sum += slack as u64;
            } else {
                stats.missed += 1;
                stats.missed_ms_sum += slack.unsigned_abs();
            }
        }
        stats
    }

    /// Number of deadlines met.
    pub fn met(&self) -> u64 {
        self.met
    }

    /// Number of deadlines missed.
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// Fraction of deadline jobs that missed (0 when there were none).
    pub fn miss_rate(&self) -> f64 {
        let total = self.met + self.missed;
        if total == 0 {
            0.0
        } else {
            self.missed as f64 / total as f64
        }
    }

    /// Average lateness (slack) of met deadlines.
    pub fn avg_lateness(&self) -> SimDuration {
        self.slack_ms_sum
            .checked_div(self.met)
            .map_or(SimDuration::ZERO, SimDuration::from_millis)
    }

    /// Average time past the deadline of missed deadlines.
    pub fn avg_missed_time(&self) -> SimDuration {
        self.missed_ms_sum
            .checked_div(self.missed)
            .map_or(SimDuration::ZERO, SimDuration::from_millis)
    }
}

impl fmt::Display for DeadlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "met={} missed={} avg_lateness={} avg_missed_time={}",
            self.met,
            self.missed,
            self.avg_lateness(),
            self.avg_missed_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_grid::{Architecture, JobId, JobRequirements, JobSpec, OperatingSystem};
    use aria_sim::SimTime;

    fn record(id: u64, deadline_mins: Option<u64>, completed_mins: u64) -> JobRecord {
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        let spec = match deadline_mins {
            None => JobSpec::batch(JobId::new(id), req, SimDuration::from_hours(1)),
            Some(d) => JobSpec::with_deadline(
                JobId::new(id),
                req,
                SimDuration::from_hours(1),
                SimTime::from_mins(d),
            ),
        };
        let mut r = JobRecord::new(&spec, SimTime::ZERO);
        r.started_at = Some(SimTime::from_mins(1));
        r.completed_at = Some(SimTime::from_mins(completed_mins));
        r
    }

    #[test]
    fn counts_met_and_missed() {
        let records = [
            record(1, Some(100), 60),  // met with 40m slack
            record(2, Some(100), 150), // missed by 50m
            record(3, Some(200), 100), // met with 100m slack
            record(4, None, 60),       // batch: ignored
        ];
        let stats = DeadlineStats::from_records(records.iter());
        assert_eq!(stats.met(), 2);
        assert_eq!(stats.missed(), 1);
        assert!((stats.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.avg_lateness(), SimDuration::from_mins(70));
        assert_eq!(stats.avg_missed_time(), SimDuration::from_mins(50));
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = DeadlineStats::from_records([].iter());
        assert_eq!(stats.met(), 0);
        assert_eq!(stats.missed(), 0);
        assert_eq!(stats.miss_rate(), 0.0);
        assert_eq!(stats.avg_lateness(), SimDuration::ZERO);
        assert_eq!(stats.avg_missed_time(), SimDuration::ZERO);
    }

    #[test]
    fn incomplete_jobs_are_ignored() {
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        let spec = JobSpec::with_deadline(
            JobId::new(1),
            req,
            SimDuration::from_hours(1),
            SimTime::from_mins(100),
        );
        let incomplete = JobRecord::new(&spec, SimTime::ZERO);
        let stats = DeadlineStats::from_records([incomplete].iter());
        assert_eq!(stats.met() + stats.missed(), 0);
    }

    #[test]
    fn exact_deadline_counts_as_met() {
        let stats = DeadlineStats::from_records([record(1, Some(60), 60)].iter());
        assert_eq!(stats.met(), 1);
        assert_eq!(stats.avg_lateness(), SimDuration::ZERO);
    }

    #[test]
    fn display_mentions_all_fields() {
        let stats = DeadlineStats::from_records([record(1, Some(100), 60)].iter());
        let s = stats.to_string();
        assert!(s.contains("met=1") && s.contains("missed=0"), "{s}");
    }
}
