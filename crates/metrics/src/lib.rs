//! # aria-metrics — measurement infrastructure for the ARiA evaluation
//!
//! Everything the paper's figures are made of:
//!
//! * [`JobRecord`] — the life cycle of one job (submission, assignments,
//!   reschedules, execution start/end) and the derived waiting /
//!   execution / completion times of Figure 2.
//! * [`MetricsCollector`] — per-run collector: gauge time series
//!   (completed jobs, idle nodes — Figures 1, 3, 5, 6), job records, and
//!   the traffic ledger.
//! * [`TrafficLedger`] / [`TrafficClass`] — per-message-type traffic
//!   accounting with the paper's message sizes (REQUEST/INFORM/ASSIGN =
//!   1 KiB, ACCEPT = 128 B; Figure 10).
//! * [`DeadlineStats`] — missed deadlines, average lateness of met
//!   deadlines, average missed time (Figure 4).
//! * [`report`] — CSV export of series, job records and traffic for
//!   external plotting.
//!
//! ## Example
//!
//! ```
//! use aria_metrics::{MetricsCollector, TrafficClass};
//! use aria_grid::{JobId, JobSpec, JobRequirements, Architecture, OperatingSystem};
//! use aria_sim::{SimDuration, SimTime};
//!
//! let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
//! let job = JobSpec::batch(JobId::new(0), req, SimDuration::from_hours(2));
//!
//! let mut m = MetricsCollector::new(SimDuration::from_mins(1));
//! m.job_submitted(&job, SimTime::ZERO);
//! m.job_assigned(job.id, SimTime::from_secs(2), false);
//! m.job_started(job.id, 7, SimTime::from_mins(5));
//! m.job_completed(job.id, SimTime::from_mins(125));
//! m.record_message(TrafficClass::Request);
//!
//! assert_eq!(m.completed_count(), 1);
//! let record = &m.records()[&job.id];
//! assert_eq!(record.waiting_time(), Some(SimDuration::from_mins(5)));
//! assert_eq!(record.execution_time(), Some(SimDuration::from_mins(120)));
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod collector;
pub mod deadline;
pub mod record;
pub mod report;
pub mod traffic;

pub use collector::MetricsCollector;
pub use deadline::DeadlineStats;
pub use record::JobRecord;
pub use report::{records_csv, series_csv, traffic_csv, write_report};
pub use traffic::{TrafficClass, TrafficLedger};
