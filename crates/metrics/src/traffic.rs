//! Per-message-type traffic accounting (§V-E, Figure 10).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// The four ARiA message types, for traffic classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// REQUEST — job discovery flood.
    Request,
    /// ACCEPT — cost offer.
    Accept,
    /// INFORM — rescheduling advertisement flood.
    Inform,
    /// ASSIGN — job delegation.
    Assign,
}

impl TrafficClass {
    /// All classes, in presentation order.
    pub const ALL: [TrafficClass; 4] =
        [TrafficClass::Request, TrafficClass::Accept, TrafficClass::Inform, TrafficClass::Assign];

    /// Size of one message of this class, as assumed by the paper:
    /// "REQUEST, INFORM, and ASSIGN messages carry 1KBytes of
    /// information, whereas ACCEPT messages only 128bytes" (§V-E).
    pub fn message_bytes(self) -> u64 {
        match self {
            TrafficClass::Accept => 128,
            _ => 1024,
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrafficClass::Request => "REQUEST",
            TrafficClass::Accept => "ACCEPT",
            TrafficClass::Inform => "INFORM",
            TrafficClass::Assign => "ASSIGN",
        })
    }
}

/// Counts messages (and therefore bytes) per [`TrafficClass`].
///
/// # Example
///
/// ```
/// use aria_metrics::{TrafficClass, TrafficLedger};
///
/// let mut ledger = TrafficLedger::new();
/// ledger.record(TrafficClass::Request);
/// ledger.record(TrafficClass::Accept);
/// assert_eq!(ledger.bytes(TrafficClass::Request), 1024);
/// assert_eq!(ledger.total_bytes(), 1024 + 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficLedger {
    counts: [u64; 4],
}

impl TrafficLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        TrafficLedger::default()
    }

    fn slot(class: TrafficClass) -> usize {
        match class {
            TrafficClass::Request => 0,
            TrafficClass::Accept => 1,
            TrafficClass::Inform => 2,
            TrafficClass::Assign => 3,
        }
    }

    /// Records one transmitted message.
    pub fn record(&mut self, class: TrafficClass) {
        self.counts[Self::slot(class)] += 1;
    }

    /// Number of messages of a class.
    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.counts[Self::slot(class)]
    }

    /// Total messages across classes.
    pub fn total_messages(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bytes transmitted for a class.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.messages(class) * class.message_bytes()
    }

    /// Total bytes across classes.
    pub fn total_bytes(&self) -> u64 {
        TrafficClass::ALL.iter().map(|&c| self.bytes(c)).sum()
    }

    /// Average bytes per node for a grid of `nodes` nodes.
    pub fn bytes_per_node(&self, nodes: usize) -> f64 {
        if nodes == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / nodes as f64
        }
    }

    /// Average bandwidth in bits per second over a window of `secs`
    /// simulated seconds, per node.
    pub fn bandwidth_bps(&self, nodes: usize, secs: u64) -> f64 {
        if secs == 0 {
            0.0
        } else {
            self.bytes_per_node(nodes) * 8.0 / secs as f64
        }
    }
}

impl AddAssign for TrafficLedger {
    fn add_assign(&mut self, rhs: TrafficLedger) {
        for i in 0..4 {
            self.counts[i] += rhs.counts[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_message_sizes() {
        assert_eq!(TrafficClass::Request.message_bytes(), 1024);
        assert_eq!(TrafficClass::Inform.message_bytes(), 1024);
        assert_eq!(TrafficClass::Assign.message_bytes(), 1024);
        assert_eq!(TrafficClass::Accept.message_bytes(), 128);
    }

    #[test]
    fn ledger_counts_per_class() {
        let mut ledger = TrafficLedger::new();
        for _ in 0..3 {
            ledger.record(TrafficClass::Inform);
        }
        ledger.record(TrafficClass::Assign);
        assert_eq!(ledger.messages(TrafficClass::Inform), 3);
        assert_eq!(ledger.messages(TrafficClass::Request), 0);
        assert_eq!(ledger.total_messages(), 4);
        assert_eq!(ledger.bytes(TrafficClass::Inform), 3 * 1024);
        assert_eq!(ledger.total_bytes(), 4 * 1024);
    }

    #[test]
    fn per_node_and_bandwidth() {
        let mut ledger = TrafficLedger::new();
        for _ in 0..1000 {
            ledger.record(TrafficClass::Request);
        }
        assert_eq!(ledger.bytes_per_node(500), 2048.0);
        // 2048 bytes over 1024 seconds => 16 bps.
        assert_eq!(ledger.bandwidth_bps(500, 1024), 16.0);
        assert_eq!(ledger.bytes_per_node(0), 0.0);
        assert_eq!(ledger.bandwidth_bps(500, 0), 0.0);
    }

    #[test]
    fn ledgers_merge_with_add_assign() {
        let mut a = TrafficLedger::new();
        a.record(TrafficClass::Request);
        let mut b = TrafficLedger::new();
        b.record(TrafficClass::Request);
        b.record(TrafficClass::Accept);
        a += b;
        assert_eq!(a.messages(TrafficClass::Request), 2);
        assert_eq!(a.messages(TrafficClass::Accept), 1);
    }

    #[test]
    fn display_names_match_paper() {
        let names: Vec<String> = TrafficClass::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(names, ["REQUEST", "ACCEPT", "INFORM", "ASSIGN"]);
    }
}
