//! Property-based tests for the local scheduler queue: conservation,
//! policy ordering, and cost-function invariants under arbitrary job
//! streams.

use aria_grid::{
    Architecture, Cost, JobId, JobPriority, JobRequirements, JobSpec, NodeProfile,
    OperatingSystem, PerfIndex, Policy, SchedulerQueue,
};
use aria_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn profile(perf: f64) -> NodeProfile {
    NodeProfile::new(
        Architecture::Amd64,
        OperatingSystem::Linux,
        8,
        8,
        PerfIndex::new(perf).expect("valid perf"),
    )
}

prop_compose! {
    fn arb_job()(
        id in 0u64..10_000,
        ert_mins in 30u64..300,
        deadline_mins in proptest::option::of(60u64..3000),
        priority in 0u8..8,
    ) -> JobSpec {
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        let base = match deadline_mins {
            Some(d) => JobSpec::with_deadline(
                JobId::new(id),
                req,
                SimDuration::from_mins(ert_mins),
                SimTime::from_mins(d),
            ),
            None => JobSpec::batch(JobId::new(id), req, SimDuration::from_mins(ert_mins)),
        };
        base.priority(JobPriority(priority))
    }
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fcfs),
        Just(Policy::Sjf),
        Just(Policy::Ljf),
        Just(Policy::Backfill),
        Just(Policy::Priority),
        Just(Policy::Edf),
    ]
}

/// The sort key the queue must keep its waiting list ordered by.
fn policy_key(policy: Policy, spec: &JobSpec) -> i64 {
    match policy {
        Policy::Fcfs | Policy::Backfill => 0,
        Policy::Sjf => spec.ert.as_millis() as i64,
        Policy::Ljf => -(spec.ert.as_millis() as i64),
        Policy::Priority => -(spec.priority.0 as i64),
        Policy::Edf => spec.deadline.map_or(i64::MAX, |d| d.as_millis() as i64),
    }
}

proptest! {
    /// Jobs are conserved: everything enqueued either waits, runs, or has
    /// completed, with no duplicates and no losses.
    #[test]
    fn jobs_are_conserved(
        jobs in proptest::collection::vec(arb_job(), 1..40),
        perf in 1.0f64..2.0,
        drain in 0usize..40,
    ) {
        let p = profile(perf);
        let mut queue = SchedulerQueue::new(Policy::Fcfs);
        let mut ids: Vec<JobId> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            // Skip duplicate ids the generator may produce.
            if ids.contains(&job.id) {
                continue;
            }
            ids.push(job.id);
            queue.enqueue(*job, SimTime::from_mins(i as u64), &p);
        }
        let mut completed = 0usize;
        for _ in 0..drain {
            if queue.start_next(SimTime::ZERO).is_some() {
                queue.complete_running();
                completed += 1;
            }
        }
        let waiting = queue.waiting_len();
        let running = usize::from(queue.running().is_some());
        prop_assert_eq!(completed + waiting + running, ids.len());
    }

    /// The waiting list is always sorted by the policy key (stable order).
    #[test]
    fn waiting_list_is_policy_ordered(
        jobs in proptest::collection::vec(arb_job(), 1..50),
        policy in arb_policy(),
    ) {
        let p = profile(1.0);
        let mut queue = SchedulerQueue::new(policy);
        for job in &jobs {
            queue.enqueue(*job, SimTime::ZERO, &p);
        }
        let keys: Vec<i64> =
            queue.waiting().iter().map(|j| policy_key(policy, &j.spec)).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "unsorted: {keys:?}");
    }

    /// ETTC is at least the candidate's own scaled running time and grows
    /// (weakly) with queue contention ahead of it.
    #[test]
    fn ettc_lower_bound_is_own_ertp(
        jobs in proptest::collection::vec(arb_job(), 0..30),
        candidate in arb_job(),
        perf in 1.0f64..2.0,
    ) {
        let p = profile(perf);
        let mut queue = SchedulerQueue::new(Policy::Fcfs);
        let empty_ettc = queue.ettc_of_candidate(&candidate, SimTime::ZERO, &p);
        prop_assert_eq!(empty_ettc, p.ert_on(candidate.ert));
        for job in &jobs {
            queue.enqueue(*job, SimTime::ZERO, &p);
        }
        let loaded_ettc = queue.ettc_of_candidate(&candidate, SimTime::ZERO, &p);
        prop_assert!(loaded_ettc >= empty_ettc);
    }

    /// Under FCFS, adding any job to the queue never *decreases* another
    /// candidate's ETTC (no spooky speedups).
    #[test]
    fn fcfs_ettc_is_monotone_in_load(
        existing in arb_job(),
        extra in arb_job(),
        candidate in arb_job(),
    ) {
        let p = profile(1.5);
        let mut queue = SchedulerQueue::new(Policy::Fcfs);
        queue.enqueue(existing, SimTime::ZERO, &p);
        let before = queue.ettc_of_candidate(&candidate, SimTime::ZERO, &p);
        let extra = JobSpec { id: JobId::new(99_999), ..extra };
        queue.enqueue(extra, SimTime::ZERO, &p);
        let after = queue.ettc_of_candidate(&candidate, SimTime::ZERO, &p);
        prop_assert!(after >= before);
    }

    /// NAL is total and finite for any queue, and a queue where every job
    /// (including the candidate) has a huge deadline is all-on-time, i.e.
    /// the cost is non-positive.
    #[test]
    fn nal_sign_follows_feasibility(
        erts in proptest::collection::vec(30u64..120, 0..10),
        candidate_ert in 30u64..120,
    ) {
        let p = profile(1.0);
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        let mut queue = SchedulerQueue::new(Policy::Edf);
        for (i, ert) in erts.iter().enumerate() {
            // Deadlines far beyond any possible backlog (10 jobs * 2h).
            let job = JobSpec::with_deadline(
                JobId::new(i as u64),
                req,
                SimDuration::from_mins(*ert),
                SimTime::from_hours(1000),
            );
            queue.enqueue(job, SimTime::ZERO, &p);
        }
        let relaxed = JobSpec::with_deadline(
            JobId::new(777),
            req,
            SimDuration::from_mins(candidate_ert),
            SimTime::from_hours(1000),
        );
        prop_assert!(queue.nal_of_candidate(&relaxed, SimTime::ZERO, &p) < 0);

        // An impossible candidate (deadline already passed) flips the cost
        // positive.
        let impossible = JobSpec::with_deadline(
            JobId::new(778),
            req,
            SimDuration::from_mins(candidate_ert),
            SimTime::ZERO,
        );
        prop_assert!(
            queue.nal_of_candidate(&impossible, SimTime::from_mins(1), &p) > 0
        );
    }

    /// Cost comparison is consistent with `improvement_over`.
    #[test]
    fn cost_improvement_is_antisymmetric(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let ca = Cost::from_nal(a);
        let cb = Cost::from_nal(b);
        prop_assert_eq!(ca.improvement_over(cb), -(cb.improvement_over(ca)));
        prop_assert_eq!(ca < cb, ca.improvement_over(cb) > 0);
    }

    /// `remove_waiting` removes exactly the requested job and preserves
    /// the order of the rest.
    #[test]
    fn remove_waiting_preserves_others(
        jobs in proptest::collection::vec(arb_job(), 2..30),
        pick in 0usize..30,
    ) {
        let p = profile(1.0);
        let mut queue = SchedulerQueue::new(Policy::Sjf);
        let mut seen = std::collections::BTreeSet::new();
        for job in &jobs {
            if seen.insert(job.id) {
                queue.enqueue(*job, SimTime::ZERO, &p);
            }
        }
        let order_before: Vec<JobId> = queue.waiting().iter().map(|j| j.spec.id).collect();
        let victim = order_before[pick % order_before.len()];
        let removed = queue.remove_waiting(victim).expect("victim is waiting");
        prop_assert_eq!(removed.spec.id, victim);
        let order_after: Vec<JobId> = queue.waiting().iter().map(|j| j.spec.id).collect();
        let expected: Vec<JobId> =
            order_before.into_iter().filter(|&id| id != victim).collect();
        prop_assert_eq!(order_after, expected);
    }
}
