//! The local scheduler: a single-executor queue ordered by a pluggable
//! policy, exposing the ETTC/NAL cost introspection used by ARiA.

use crate::job::{JobId, JobSpec};
use crate::reservation::{Reservation, ReservationCalendar, ReservationConflict};
use crate::resources::NodeProfile;
use aria_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Local scheduling policy (§IV-C plus the future-work extensions of §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// First-Come-First-Served: jobs run in arrival (ASSIGN) order.
    Fcfs,
    /// Shortest-Job-First: jobs with smaller ERT run first.
    Sjf,
    /// Longest-Job-First (extension): jobs with larger ERT run first.
    Ljf,
    /// FCFS with EASY-style backfill (extension, §VI): when the head job
    /// does not fit before the next advance reservation, the first later
    /// job that does fit jumps ahead.
    Backfill,
    /// Priority scheduling (extension): higher [`crate::JobPriority`]
    /// first, FIFO within a priority level.
    Priority,
    /// Earliest-Deadline-First: jobs with an earlier deadline run first.
    /// The only deadline policy considered by the paper.
    Edf,
}

impl Policy {
    /// The cost function family this policy participates in (§III-C).
    pub fn cost_kind(self) -> CostKind {
        match self {
            Policy::Edf => CostKind::Nal,
            _ => CostKind::Ettc,
        }
    }

    /// Whether this is a batch (non-deadline) policy.
    pub fn is_batch(self) -> bool {
        self.cost_kind() == CostKind::Ettc
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Policy::Fcfs => "FCFS",
            Policy::Sjf => "SJF",
            Policy::Ljf => "LJF",
            Policy::Backfill => "BACKFILL",
            Policy::Priority => "PRIORITY",
            Policy::Edf => "EDF",
        };
        f.write_str(name)
    }
}

/// Which cost function a node's offers are expressed in.
///
/// The paper assumes offers of different kinds are never mixed: batch
/// schedulers bid with ETTC, deadline schedulers with NAL (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostKind {
    /// Estimated Time To Completion — relative, lower is better.
    Ettc,
    /// Negative Accumulated Lateness — signed, lower is better.
    Nal,
}

impl fmt::Display for CostKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CostKind::Ettc => "ETTC",
            CostKind::Nal => "NAL",
        })
    }
}

/// A scheduling cost in milliseconds; **lower is better** (§III-C).
///
/// ETTC costs are non-negative (a relative time to completion); NAL costs
/// are signed (negative when every queued job meets its deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cost(i64);

impl Cost {
    /// Builds an ETTC cost from a relative completion time.
    pub fn from_ettc(ettc: SimDuration) -> Self {
        Cost(ettc.as_millis() as i64)
    }

    /// Builds a NAL cost from the signed accumulated-lateness sum (ms).
    pub fn from_nal(nal_ms: i64) -> Self {
        Cost(nal_ms)
    }

    /// Raw signed milliseconds.
    pub fn as_millis(self) -> i64 {
        self.0
    }

    /// How much better (`> 0`) this cost is than `other`, in milliseconds.
    pub fn improvement_over(self, other: Cost) -> i64 {
        other.0 - self.0
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A job waiting in a [`SchedulerQueue`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedJob {
    /// The job description.
    pub spec: JobSpec,
    /// When the job entered this queue (local ASSIGN reception time).
    pub enqueued_at: SimTime,
    /// `ERT / p` on this node.
    pub ertp: SimDuration,
}

/// The job currently executing on a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningJob {
    /// The job description.
    pub spec: JobSpec,
    /// Execution start instant.
    pub started_at: SimTime,
    /// Estimated completion (`started_at + ERTp`); the *actual* completion
    /// is scheduled by the simulation from the ART error model and may
    /// differ.
    pub expected_end: SimTime,
}

/// A node's local scheduler (§III-A): holds at most one running job and a
/// policy-ordered queue of waiting jobs. No preemption, no migration of
/// running jobs.
///
/// # Example
///
/// ```
/// use aria_grid::{Architecture, JobId, JobRequirements, JobSpec, NodeProfile};
/// use aria_grid::{OperatingSystem, PerfIndex, Policy, SchedulerQueue};
/// use aria_sim::{SimDuration, SimTime};
///
/// let profile = NodeProfile::new(
///     Architecture::Amd64, OperatingSystem::Linux, 8, 8, PerfIndex::BASELINE,
/// );
/// let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
/// let mut q = SchedulerQueue::new(Policy::Sjf);
/// q.enqueue(JobSpec::batch(JobId::new(1), req, SimDuration::from_hours(3)), SimTime::ZERO, &profile);
/// q.enqueue(JobSpec::batch(JobId::new(2), req, SimDuration::from_hours(1)), SimTime::ZERO, &profile);
/// // SJF: the shorter job 2 runs first.
/// let running = q.start_next(SimTime::ZERO).unwrap();
/// assert_eq!(running.spec.id, JobId::new(2));
/// ```
#[derive(Debug, Clone)]
pub struct SchedulerQueue {
    policy: Policy,
    running: Option<RunningJob>,
    waiting: Vec<QueuedJob>,
    calendar: ReservationCalendar,
}

impl SchedulerQueue {
    /// Creates an empty queue with the given policy.
    pub fn new(policy: Policy) -> Self {
        SchedulerQueue {
            policy,
            running: None,
            waiting: Vec::new(),
            calendar: ReservationCalendar::new(),
        }
    }

    /// The node's advance-reservation calendar.
    pub fn calendar(&self) -> &ReservationCalendar {
        &self.calendar
    }

    /// Commits an advance reservation on this node's executor.
    ///
    /// # Errors
    ///
    /// Returns [`ReservationConflict`] if the window overlaps a committed
    /// one. Overlaps with currently queued/running *jobs* are fine: jobs
    /// are dispatched around reservations, never the other way round.
    pub fn add_reservation(&mut self, window: Reservation) -> Result<(), ReservationConflict> {
        self.calendar.try_add(window)
    }

    /// The queue's policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The currently executing job, if any.
    pub fn running(&self) -> Option<&RunningJob> {
        self.running.as_ref()
    }

    /// The waiting jobs, in execution order under the current policy.
    pub fn waiting(&self) -> &[QueuedJob] {
        &self.waiting
    }

    /// Number of waiting jobs.
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Whether the node has neither a running nor a waiting job.
    ///
    /// This is the paper's *idle node* definition for Figures 3, 5 and 6.
    pub fn is_idle(&self) -> bool {
        self.running.is_none() && self.waiting.is_empty()
    }

    /// Inserts a job into the waiting queue at its policy position.
    ///
    /// Ordering is stable: a new job never jumps ahead of an equal-keyed
    /// earlier arrival.
    pub fn enqueue(&mut self, spec: JobSpec, now: SimTime, profile: &NodeProfile) {
        let job = QueuedJob { spec, enqueued_at: now, ertp: profile.ert_on(spec.ert) };
        let pos = self.insertion_index(&job.spec);
        self.waiting.insert(pos, job);
    }

    /// Starts the next waiting job if the executor is free.
    ///
    /// Returns the newly running job, or `None` if a job is already
    /// running or the queue is empty.
    pub fn start_next(&mut self, now: SimTime) -> Option<&RunningJob> {
        if self.running.is_some() || self.waiting.is_empty() {
            return None;
        }
        if self.calendar.active_at(now).is_some() {
            return None; // the executor is reserved right now
        }
        let fits = |job: &QueuedJob| !self.calendar.blocks(now, job.ertp);
        let pick = if fits(&self.waiting[0]) {
            Some(0)
        } else if self.policy == Policy::Backfill {
            // EASY backfill: the first later job that fits the gap runs,
            // without delaying the head (the head cannot start anyway).
            self.waiting.iter().position(fits)
        } else {
            None
        };
        let job = self.waiting.remove(pick?);
        self.running =
            Some(RunningJob { spec: job.spec, started_at: now, expected_end: now + job.ertp });
        self.running.as_ref()
    }

    /// When dispatch should be retried after [`SchedulerQueue::start_next`]
    /// returned `None` while jobs are waiting: the end of the reservation
    /// window currently (or next) blocking the executor. `None` when the
    /// executor is busy, nothing waits, or something is startable now.
    pub fn next_dispatch_at(&self, now: SimTime) -> Option<SimTime> {
        if self.running.is_some() || self.waiting.is_empty() {
            return None;
        }
        if let Some(active) = self.calendar.active_at(now) {
            return Some(active.end);
        }
        let fits = |job: &QueuedJob| !self.calendar.blocks(now, job.ertp);
        let startable = match self.policy {
            Policy::Backfill => self.waiting.iter().any(fits),
            _ => fits(&self.waiting[0]),
        };
        if startable {
            None
        } else {
            self.calendar.next_after(now).map(|w| w.end)
        }
    }

    /// Marks the running job as completed and returns it.
    ///
    /// The caller (the simulation) decides the actual completion instant;
    /// this method only clears the executor.
    pub fn complete_running(&mut self) -> Option<RunningJob> {
        self.running.take()
    }

    /// Removes a waiting job (it is being rescheduled away).
    ///
    /// Returns `None` if the job is not waiting here — e.g. it already
    /// started executing, in which case the paper forbids moving it.
    pub fn remove_waiting(&mut self, id: JobId) -> Option<QueuedJob> {
        let pos = self.waiting.iter().position(|j| j.spec.id == id)?;
        Some(self.waiting.remove(pos))
    }

    /// Whether the given job is waiting (not running) here.
    pub fn is_waiting(&self, id: JobId) -> bool {
        self.waiting.iter().any(|j| j.spec.id == id)
    }

    /// Removes and returns every waiting job (used when a node crashes
    /// and its queue contents are lost).
    pub fn drain_waiting(&mut self) -> Vec<QueuedJob> {
        std::mem::take(&mut self.waiting)
    }

    /// Remaining estimated execution time of the running job.
    pub fn remaining_running(&self, now: SimTime) -> SimDuration {
        self.running.as_ref().map_or(SimDuration::ZERO, |r| r.expected_end.saturating_since(now))
    }

    /// Total estimated backlog: remaining running time plus all waiting
    /// `ERTp`s.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.waiting.iter().fold(self.remaining_running(now), |acc, j| acc + j.ertp)
    }

    /// The cost this node would quote for a new candidate job (§III-C).
    ///
    /// Dispatches on the policy's [`CostKind`]: ETTC for batch policies,
    /// NAL for deadline policies.
    pub fn cost_of_candidate(&self, spec: &JobSpec, now: SimTime, profile: &NodeProfile) -> Cost {
        match self.policy.cost_kind() {
            CostKind::Ettc => Cost::from_ettc(self.ettc_of_candidate(spec, now, profile)),
            CostKind::Nal => Cost::from_nal(self.nal_of_candidate(spec, now, profile)),
        }
    }

    /// The current cost of a job already waiting in this queue, as
    /// advertised in INFORM messages (§III-D).
    ///
    /// Returns `None` if the job is not waiting here.
    pub fn cost_of_waiting(&self, id: JobId, now: SimTime) -> Option<Cost> {
        match self.policy.cost_kind() {
            CostKind::Ettc => self.ettc_of_waiting(id, now).map(Cost::from_ettc),
            CostKind::Nal => {
                if self.is_waiting(id) {
                    Some(Cost::from_nal(self.nal_of_queue(now, None)))
                } else {
                    None
                }
            }
        }
    }

    /// Estimated Time To Completion for a candidate job: the relative
    /// time at which the candidate would finish, given the running job
    /// and the waiting jobs that would precede it under the policy.
    pub fn ettc_of_candidate(
        &self,
        spec: &JobSpec,
        now: SimTime,
        profile: &NodeProfile,
    ) -> SimDuration {
        let candidate = QueuedJob { spec: *spec, enqueued_at: now, ertp: profile.ert_on(spec.ert) };
        let completions = self.simulated_completions(now, Some(candidate));
        let (_, etc) = completions
            .into_iter()
            .find(|(id, _)| *id == spec.id)
            .expect("candidate appears in its own simulation");
        etc.saturating_since(now)
    }

    /// ETTC of a job already waiting in the queue, or `None` if absent.
    pub fn ettc_of_waiting(&self, id: JobId, now: SimTime) -> Option<SimDuration> {
        let completions = self.simulated_completions(now, None);
        completions
            .into_iter()
            .find(|(job, _)| *job == id)
            .map(|(_, etc)| etc.saturating_since(now))
    }

    /// Negative Accumulated Lateness for a candidate job (§III-C):
    ///
    /// ```text
    /// NALcost(j) = Σ_{job ∈ Q'} δ(job, Q') · |γ_job|,   Q' = Q ∪ {j}
    /// γ_job = deadline_job − ETC_job
    /// δ = −1 if every job in Q' is on time; else 0 for on-time jobs and
    ///     1 for late jobs.
    /// ```
    ///
    /// Lower is better: a queue where everything is comfortably early is
    /// strongly negative, a queue with misses is positive.
    pub fn nal_of_candidate(&self, spec: &JobSpec, now: SimTime, profile: &NodeProfile) -> i64 {
        let candidate = QueuedJob { spec: *spec, enqueued_at: now, ertp: profile.ert_on(spec.ert) };
        self.nal_of_queue(now, Some(candidate))
    }

    /// NAL of the queue as it stands, optionally with an extra candidate
    /// inserted at its policy position.
    fn nal_of_queue(&self, now: SimTime, extra: Option<QueuedJob>) -> i64 {
        let deadlines: Vec<Option<SimTime>> = self
            .ordered_jobs(extra.as_ref())
            .map(|job| job.spec.deadline)
            .collect();
        let lateness: Vec<i64> = self
            .simulated_completions(now, extra)
            .into_iter()
            .zip(deadlines)
            .map(|((_, etc), deadline)| {
                // A job without a deadline is treated as always on time
                // with zero slack: it occupies executor time but
                // contributes no lateness of its own.
                deadline.map_or(0, |d| d.signed_delta(etc))
            })
            .collect();
        let all_on_time = lateness.iter().all(|&g| g >= 0);
        lateness
            .iter()
            .map(|&g| {
                if all_on_time {
                    -g.abs()
                } else if g >= 0 {
                    0
                } else {
                    g.abs()
                }
            })
            .sum()
    }

    /// The waiting jobs in execution order, with `extra` spliced in at
    /// its policy position.
    fn ordered_jobs<'a>(
        &'a self,
        extra: Option<&'a QueuedJob>,
    ) -> impl Iterator<Item = &'a QueuedJob> {
        let extra_pos = extra.map(|e| self.insertion_index(&e.spec));
        let n = self.waiting.len();
        (0..n + usize::from(extra.is_some())).map(move |i| match (extra, extra_pos) {
            (Some(e), Some(pos)) => {
                if i < pos {
                    &self.waiting[i]
                } else if i == pos {
                    e
                } else {
                    &self.waiting[i - 1]
                }
            }
            _ => &self.waiting[i],
        })
    }

    /// Simulates dispatch of the waiting queue (plus an optional extra
    /// candidate at its policy position), honoring the remaining running
    /// time and the reservation calendar, and returns the Estimated Time
    /// of Completion of every job in execution order.
    ///
    /// With an empty calendar this reduces exactly to the paper's model:
    /// remaining running time plus the `ERTp`s of the jobs ahead. With
    /// reservations, each job starts at its earliest fitting gap
    /// (sequential FCFS walk; dynamic backfill reordering is not
    /// anticipated in the estimate).
    fn simulated_completions(
        &self,
        now: SimTime,
        extra: Option<QueuedJob>,
    ) -> Vec<(JobId, SimTime)> {
        let mut t = now + self.remaining_running(now);
        let mut out = Vec::with_capacity(self.waiting.len() + 1);
        for job in self.ordered_jobs(extra.as_ref()) {
            let start = self.calendar.earliest_fit(t, job.ertp);
            t = start + job.ertp;
            out.push((job.spec.id, t));
        }
        out
    }

    /// The waiting jobs an assignee should advertise for rescheduling,
    /// best candidates first, at most `limit` of them (§III-D):
    /// batch policies pick the longest-waiting jobs, deadline policies
    /// the jobs with the least slack.
    pub fn inform_candidates(&self, now: SimTime, limit: usize) -> Vec<JobId> {
        let mut keyed: Vec<(i64, JobId)> = match self.policy.cost_kind() {
            CostKind::Ettc => self
                .waiting
                .iter()
                .map(|j| (-(now.saturating_since(j.enqueued_at).as_millis() as i64), j.spec.id))
                .collect(),
            CostKind::Nal => {
                let mut etc = now + self.remaining_running(now);
                self.waiting
                    .iter()
                    .map(|j| {
                        etc += j.ertp;
                        let gamma = j.spec.deadline.map_or(i64::MAX, |d| d.signed_delta(etc));
                        (gamma, j.spec.id)
                    })
                    .collect()
            }
        };
        keyed.sort_by_key(|&(key, id)| (key, id));
        keyed.into_iter().take(limit).map(|(_, id)| id).collect()
    }

    /// The ordering key a job sorts by under this queue's policy
    /// (smaller runs earlier; equal keys keep arrival order).
    fn policy_key(&self, s: &JobSpec) -> i64 {
        match self.policy {
            Policy::Fcfs | Policy::Backfill => 0,
            Policy::Sjf => s.ert.as_millis() as i64,
            Policy::Ljf => -(s.ert.as_millis() as i64),
            Policy::Priority => -(s.priority.0 as i64),
            Policy::Edf => s.deadline.map_or(i64::MAX, |d| d.as_millis() as i64),
        }
    }

    /// Position at which a job would be inserted under the policy.
    fn insertion_index(&self, spec: &JobSpec) -> usize {
        let candidate_key = self.policy_key(spec);
        // Stable: insert after all entries with key <= candidate's.
        self.waiting.partition_point(|j| self.policy_key(&j.spec) <= candidate_key)
    }

    /// Audits the queue's internal invariants, panicking on violation:
    ///
    /// * the waiting list is sorted by the policy's ordering key
    ///   (non-decreasing, so equal-keyed jobs keep arrival order);
    /// * no job id appears twice among the waiting jobs;
    /// * the running job is not simultaneously waiting.
    ///
    /// Read-only and side-effect free. Called per drained event by
    /// `World::check_invariants` (debug builds / checked runs).
    pub fn validate(&self) {
        for pair in self.waiting.windows(2) {
            assert!(
                self.policy_key(&pair[0].spec) <= self.policy_key(&pair[1].spec),
                "queue invariant: waiting list violates {} order ({} before {})",
                self.policy,
                pair[0].spec.id,
                pair[1].spec.id,
            );
        }
        for (i, job) in self.waiting.iter().enumerate() {
            assert!(
                !self.waiting[i + 1..].iter().any(|other| other.spec.id == job.spec.id),
                "queue invariant: {} queued twice on one node",
                job.spec.id,
            );
        }
        if let Some(running) = &self.running {
            assert!(
                !self.is_waiting(running.spec.id),
                "queue invariant: {} both running and waiting",
                running.spec.id,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobPriority, JobRequirements};
    use crate::resources::{Architecture, OperatingSystem, PerfIndex};

    fn profile() -> NodeProfile {
        NodeProfile::new(Architecture::Amd64, OperatingSystem::Linux, 8, 8, PerfIndex::BASELINE)
    }

    fn fast_profile() -> NodeProfile {
        NodeProfile::new(
            Architecture::Amd64,
            OperatingSystem::Linux,
            8,
            8,
            PerfIndex::new(2.0).unwrap(),
        )
    }

    fn req() -> JobRequirements {
        JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1)
    }

    fn batch(id: u64, hours: u64) -> JobSpec {
        JobSpec::batch(JobId::new(id), req(), SimDuration::from_hours(hours))
    }

    fn deadline(id: u64, ert_hours: u64, deadline_hours: u64) -> JobSpec {
        JobSpec::with_deadline(
            JobId::new(id),
            req(),
            SimDuration::from_hours(ert_hours),
            SimTime::from_hours(deadline_hours),
        )
    }

    fn ids(q: &SchedulerQueue) -> Vec<u64> {
        q.waiting().iter().map(|j| j.spec.id.raw()).collect()
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        for (i, h) in [(1, 3), (2, 1), (3, 2)] {
            q.enqueue(batch(i, h), SimTime::from_mins(i), &profile());
        }
        assert_eq!(ids(&q), [1, 2, 3]);
    }

    #[test]
    fn sjf_orders_by_ert_stable() {
        let mut q = SchedulerQueue::new(Policy::Sjf);
        q.enqueue(batch(1, 3), SimTime::ZERO, &profile());
        q.enqueue(batch(2, 1), SimTime::ZERO, &profile());
        q.enqueue(batch(3, 2), SimTime::ZERO, &profile());
        q.enqueue(batch(4, 1), SimTime::ZERO, &profile()); // ties with 2: stays after
        assert_eq!(ids(&q), [2, 4, 3, 1]);
    }

    #[test]
    fn ljf_orders_by_ert_descending() {
        let mut q = SchedulerQueue::new(Policy::Ljf);
        q.enqueue(batch(1, 1), SimTime::ZERO, &profile());
        q.enqueue(batch(2, 3), SimTime::ZERO, &profile());
        q.enqueue(batch(3, 2), SimTime::ZERO, &profile());
        assert_eq!(ids(&q), [2, 3, 1]);
    }

    #[test]
    fn priority_orders_descending_fifo_within_level() {
        let mut q = SchedulerQueue::new(Policy::Priority);
        q.enqueue(batch(1, 1).priority(JobPriority(1)), SimTime::ZERO, &profile());
        q.enqueue(batch(2, 1).priority(JobPriority(5)), SimTime::ZERO, &profile());
        q.enqueue(batch(3, 1).priority(JobPriority(5)), SimTime::ZERO, &profile());
        q.enqueue(batch(4, 1).priority(JobPriority(3)), SimTime::ZERO, &profile());
        assert_eq!(ids(&q), [2, 3, 4, 1]);
    }

    #[test]
    fn edf_orders_by_deadline() {
        let mut q = SchedulerQueue::new(Policy::Edf);
        q.enqueue(deadline(1, 1, 10), SimTime::ZERO, &profile());
        q.enqueue(deadline(2, 1, 5), SimTime::ZERO, &profile());
        q.enqueue(deadline(3, 1, 7), SimTime::ZERO, &profile());
        assert_eq!(ids(&q), [2, 3, 1]);
    }

    #[test]
    fn start_next_pops_head_and_sets_expected_end() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        q.enqueue(batch(1, 2), SimTime::ZERO, &fast_profile());
        let now = SimTime::from_mins(5);
        let running = q.start_next(now).unwrap();
        assert_eq!(running.spec.id.raw(), 1);
        // 2h ERT on a p=2 node => 1h ERTp.
        assert_eq!(running.expected_end, now + SimDuration::from_hours(1));
        assert!(q.waiting().is_empty());
        // Executor busy: no second start.
        assert!(q.start_next(now).is_none());
        let done = q.complete_running().unwrap();
        assert_eq!(done.spec.id.raw(), 1);
        assert!(q.is_idle());
    }

    #[test]
    fn start_next_on_empty_queue_is_none() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        assert!(q.start_next(SimTime::ZERO).is_none());
        assert!(q.complete_running().is_none());
    }

    #[test]
    fn remove_waiting_only_removes_waiting() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        q.enqueue(batch(1, 1), SimTime::ZERO, &profile());
        q.enqueue(batch(2, 1), SimTime::ZERO, &profile());
        q.start_next(SimTime::ZERO);
        // Job 1 is running: cannot be removed.
        assert!(q.remove_waiting(JobId::new(1)).is_none());
        assert!(q.is_waiting(JobId::new(2)));
        let removed = q.remove_waiting(JobId::new(2)).unwrap();
        assert_eq!(removed.spec.id.raw(), 2);
        assert!(!q.is_waiting(JobId::new(2)));
    }

    #[test]
    fn ettc_accounts_for_running_and_queue_position() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        let p = profile();
        q.enqueue(batch(1, 2), SimTime::ZERO, &p);
        q.start_next(SimTime::ZERO);
        q.enqueue(batch(2, 3), SimTime::ZERO, &p);
        // At t=1h: 1h left of job 1, then 3h of job 2, then the candidate's 1h.
        let now = SimTime::from_hours(1);
        let ettc = q.ettc_of_candidate(&batch(3, 1), now, &p);
        assert_eq!(ettc, SimDuration::from_hours(5));
    }

    #[test]
    fn ettc_on_idle_node_is_own_ertp() {
        let q = SchedulerQueue::new(Policy::Fcfs);
        let ettc = q.ettc_of_candidate(&batch(1, 3), SimTime::ZERO, &fast_profile());
        assert_eq!(ettc, SimDuration::from_mins(90));
    }

    #[test]
    fn sjf_candidate_jumps_queue_in_ettc() {
        let mut q = SchedulerQueue::new(Policy::Sjf);
        let p = profile();
        q.enqueue(batch(1, 4), SimTime::ZERO, &p);
        // Short candidate is inserted before the 4h job.
        let ettc = q.ettc_of_candidate(&batch(2, 1), SimTime::ZERO, &p);
        assert_eq!(ettc, SimDuration::from_hours(1));
        // Long candidate queues behind it.
        let ettc_long = q.ettc_of_candidate(&batch(3, 4), SimTime::ZERO, &p);
        assert_eq!(ettc_long, SimDuration::from_hours(8));
    }

    #[test]
    fn ettc_of_waiting_matches_position() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        let p = profile();
        q.enqueue(batch(1, 2), SimTime::ZERO, &p);
        q.enqueue(batch(2, 3), SimTime::ZERO, &p);
        assert_eq!(q.ettc_of_waiting(JobId::new(1), SimTime::ZERO), Some(SimDuration::from_hours(2)));
        assert_eq!(q.ettc_of_waiting(JobId::new(2), SimTime::ZERO), Some(SimDuration::from_hours(5)));
        assert_eq!(q.ettc_of_waiting(JobId::new(9), SimTime::ZERO), None);
    }

    #[test]
    fn nal_all_on_time_is_negative_slack_sum() {
        let q = SchedulerQueue::new(Policy::Edf);
        let p = profile();
        // Idle node, candidate finishes at 1h, deadline 5h => gamma = 4h.
        let nal = q.nal_of_candidate(&deadline(1, 1, 5), SimTime::ZERO, &p);
        assert_eq!(nal, -(4 * 3_600_000));
    }

    #[test]
    fn nal_miss_contributes_positive_lateness() {
        let q = SchedulerQueue::new(Policy::Edf);
        let p = profile();
        // Candidate finishes at 3h but deadline is 1h => late by 2h.
        let nal = q.nal_of_candidate(&deadline(1, 3, 1), SimTime::ZERO, &p);
        assert_eq!(nal, 2 * 3_600_000);
    }

    #[test]
    fn nal_mixed_queue_zeroes_on_time_jobs() {
        let mut q = SchedulerQueue::new(Policy::Edf);
        let p = profile();
        // Existing job: 2h ERT, deadline 10h — comfortably on time.
        q.enqueue(deadline(1, 2, 10), SimTime::ZERO, &p);
        // Candidate with deadline 1h runs first (EDF) and finishes at 3h?
        // No: EDF puts deadline-1h candidate before the 10h job, so it
        // finishes at 3h only if it runs second. Candidate ERT 3h, runs
        // first, finishes at 3h, deadline 1h => late by 2h. Existing job
        // then finishes at 5h, deadline 10h => on time, contributes 0.
        let nal = q.nal_of_candidate(&deadline(2, 3, 1), SimTime::ZERO, &p);
        assert_eq!(nal, 2 * 3_600_000);
    }

    #[test]
    fn nal_prefers_less_loaded_node() {
        let p = profile();
        let empty = SchedulerQueue::new(Policy::Edf);
        let mut loaded = SchedulerQueue::new(Policy::Edf);
        loaded.enqueue(deadline(1, 3, 20), SimTime::ZERO, &p);
        let candidate = deadline(9, 2, 20);
        let cost_empty = loaded.policy(); // silence unused warning path
        let _ = cost_empty;
        let nal_empty = empty.nal_of_candidate(&candidate, SimTime::ZERO, &p);
        let nal_loaded = loaded.nal_of_candidate(&candidate, SimTime::ZERO, &p);
        // Both on time everywhere; the loaded node has less slack in
        // total? Empty: candidate gamma = 18h => -18h. Loaded: candidate
        // finishes 2h (EDF by deadline ties stable => candidate after job
        // 1? ties: equal deadlines, stable puts candidate after job 1).
        // Job1 finishes 3h (slack 17h), candidate finishes 5h (slack 15h)
        // => NAL = -32h. Lower (better) on the loaded node!
        // This mirrors the paper's observation that NAL rewards overall
        // slack, not just the candidate's own completion.
        assert!(nal_loaded < nal_empty);
        assert_eq!(nal_empty, -(18 * 3_600_000));
        assert_eq!(nal_loaded, -(32 * 3_600_000));
    }

    #[test]
    fn cost_of_candidate_dispatches_on_policy() {
        let p = profile();
        let batch_q = SchedulerQueue::new(Policy::Sjf);
        let c = batch_q.cost_of_candidate(&batch(1, 2), SimTime::ZERO, &p);
        assert_eq!(c, Cost::from_ettc(SimDuration::from_hours(2)));

        let edf_q = SchedulerQueue::new(Policy::Edf);
        let c = edf_q.cost_of_candidate(&deadline(1, 1, 3), SimTime::ZERO, &p);
        assert_eq!(c, Cost::from_nal(-2 * 3_600_000));
    }

    #[test]
    fn cost_ordering_lower_is_better() {
        let a = Cost::from_ettc(SimDuration::from_hours(1));
        let b = Cost::from_ettc(SimDuration::from_hours(2));
        assert!(a < b);
        assert_eq!(b.improvement_over(a), -3_600_000);
        assert_eq!(a.improvement_over(b), 3_600_000);
        let n = Cost::from_nal(-5000);
        assert!(n < a);
    }

    #[test]
    fn inform_candidates_batch_prefers_longest_waiting() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        let p = profile();
        q.enqueue(batch(1, 1), SimTime::from_mins(0), &p);
        q.enqueue(batch(2, 1), SimTime::from_mins(30), &p);
        q.enqueue(batch(3, 1), SimTime::from_mins(10), &p);
        let picks = q.inform_candidates(SimTime::from_hours(1), 2);
        assert_eq!(picks, [JobId::new(1), JobId::new(3)]);
    }

    #[test]
    fn inform_candidates_edf_prefers_least_slack() {
        let mut q = SchedulerQueue::new(Policy::Edf);
        let p = profile();
        q.enqueue(deadline(1, 2, 30), SimTime::ZERO, &p);
        q.enqueue(deadline(2, 2, 5), SimTime::ZERO, &p);
        q.enqueue(deadline(3, 2, 10), SimTime::ZERO, &p);
        let picks = q.inform_candidates(SimTime::ZERO, 2);
        // EDF order: 2 (ETC 2h, slack 3h), 3 (ETC 4h, slack 6h), 1 (ETC 6h, slack 24h).
        assert_eq!(picks, [JobId::new(2), JobId::new(3)]);
    }

    #[test]
    fn inform_candidates_respects_limit_and_empty() {
        let q = SchedulerQueue::new(Policy::Fcfs);
        assert!(q.inform_candidates(SimTime::ZERO, 2).is_empty());
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        q.enqueue(batch(1, 1), SimTime::ZERO, &profile());
        assert_eq!(q.inform_candidates(SimTime::from_mins(1), 4).len(), 1);
        assert!(q.inform_candidates(SimTime::from_mins(1), 0).is_empty());
    }

    #[test]
    fn backlog_sums_running_and_waiting() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        let p = profile();
        q.enqueue(batch(1, 2), SimTime::ZERO, &p);
        q.enqueue(batch(2, 3), SimTime::ZERO, &p);
        q.start_next(SimTime::ZERO);
        assert_eq!(q.backlog(SimTime::from_hours(1)), SimDuration::from_hours(4));
        assert_eq!(q.backlog(SimTime::from_hours(10)), SimDuration::from_hours(3));
    }

    #[test]
    fn remaining_running_saturates_past_expected_end() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        q.enqueue(batch(1, 1), SimTime::ZERO, &profile());
        q.start_next(SimTime::ZERO);
        assert_eq!(q.remaining_running(SimTime::from_hours(2)), SimDuration::ZERO);
    }

    #[test]
    fn drain_waiting_empties_queue_but_not_executor() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        let p = profile();
        q.enqueue(batch(1, 1), SimTime::ZERO, &p);
        q.enqueue(batch(2, 2), SimTime::ZERO, &p);
        q.enqueue(batch(3, 3), SimTime::ZERO, &p);
        q.start_next(SimTime::ZERO);
        let drained = q.drain_waiting();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].spec.id.raw(), 2);
        assert_eq!(q.waiting_len(), 0);
        assert!(q.running().is_some(), "draining must not touch the executor");
        assert!(q.drain_waiting().is_empty());
    }

    #[test]
    fn reservations_gate_dispatch() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        let p = profile();
        // Reserve [1h, 2h); a 2h job at t=0 cannot start (would overlap).
        q.add_reservation(Reservation::new(SimTime::from_hours(1), SimTime::from_hours(2)))
            .unwrap();
        q.enqueue(batch(1, 2), SimTime::ZERO, &p);
        assert!(q.start_next(SimTime::ZERO).is_none());
        // Dispatch should be retried when the reservation ends.
        assert_eq!(q.next_dispatch_at(SimTime::ZERO), Some(SimTime::from_hours(2)));
        // Inside the window: executor reserved.
        assert!(q.start_next(SimTime::from_mins(90)).is_none());
        assert_eq!(q.next_dispatch_at(SimTime::from_mins(90)), Some(SimTime::from_hours(2)));
        // After the window the job starts.
        assert!(q.start_next(SimTime::from_hours(2)).is_some());
        assert_eq!(q.next_dispatch_at(SimTime::from_hours(2)), None);
    }

    #[test]
    fn short_job_fits_before_reservation() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        let p = profile();
        q.add_reservation(Reservation::new(SimTime::from_hours(3), SimTime::from_hours(4)))
            .unwrap();
        q.enqueue(batch(1, 2), SimTime::ZERO, &p);
        let running = q.start_next(SimTime::ZERO).unwrap();
        assert_eq!(running.spec.id.raw(), 1);
    }

    #[test]
    fn backfill_lets_fitting_job_jump_ahead() {
        let p = profile();
        let setup = |policy: Policy| {
            let mut q = SchedulerQueue::new(policy);
            q.add_reservation(Reservation::new(SimTime::from_hours(2), SimTime::from_hours(3)))
                .unwrap();
            q.enqueue(batch(1, 3), SimTime::ZERO, &p); // head: does not fit before 2h
            q.enqueue(batch(2, 1), SimTime::ZERO, &p); // fits the 2h gap
            q
        };
        // Plain FCFS: strict order, nothing starts until the window ends.
        let mut fcfs = setup(Policy::Fcfs);
        assert!(fcfs.start_next(SimTime::ZERO).is_none());
        assert_eq!(fcfs.next_dispatch_at(SimTime::ZERO), Some(SimTime::from_hours(3)));
        // Backfill: job 2 jumps ahead into the gap.
        let mut backfill = setup(Policy::Backfill);
        let running = backfill.start_next(SimTime::ZERO).unwrap();
        assert_eq!(running.spec.id.raw(), 2);
        assert_eq!(backfill.waiting()[0].spec.id.raw(), 1);
    }

    #[test]
    fn ettc_accounts_for_reservations() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        let p = profile();
        q.add_reservation(Reservation::new(SimTime::from_hours(1), SimTime::from_hours(5)))
            .unwrap();
        // A 2h candidate cannot finish before the window: it runs at 5h,
        // completing at 7h => ETTC 7h.
        let ettc = q.ettc_of_candidate(&batch(1, 2), SimTime::ZERO, &p);
        assert_eq!(ettc, SimDuration::from_hours(7));
        // A 1h candidate fits before the window: ETTC 1h.
        let ettc = q.ettc_of_candidate(&batch(2, 1), SimTime::ZERO, &p);
        assert_eq!(ettc, SimDuration::from_hours(1));
    }

    #[test]
    fn nal_accounts_for_reservations() {
        let mut q = SchedulerQueue::new(Policy::Edf);
        let p = profile();
        q.add_reservation(Reservation::new(SimTime::from_hours(1), SimTime::from_hours(6)))
            .unwrap();
        // 2h job with a 4h deadline: without the reservation it would be
        // on time; the window pushes completion to 8h => 4h late.
        let nal = q.nal_of_candidate(&deadline(1, 2, 4), SimTime::ZERO, &p);
        assert_eq!(nal, 4 * 3_600_000);
    }

    #[test]
    fn conflicting_reservation_is_rejected() {
        let mut q = SchedulerQueue::new(Policy::Fcfs);
        q.add_reservation(Reservation::new(SimTime::from_hours(1), SimTime::from_hours(2)))
            .unwrap();
        let err = q
            .add_reservation(Reservation::new(SimTime::from_mins(90), SimTime::from_hours(3)))
            .unwrap_err();
        assert_eq!(err.existing.start, SimTime::from_hours(1));
        assert_eq!(q.calendar().windows().len(), 1);
    }

    #[test]
    fn edf_jobs_without_deadline_go_last() {
        let mut q = SchedulerQueue::new(Policy::Edf);
        let p = profile();
        q.enqueue(batch(1, 1), SimTime::ZERO, &p);
        q.enqueue(deadline(2, 1, 50), SimTime::ZERO, &p);
        assert_eq!(ids(&q), [2, 1]);
    }
}
