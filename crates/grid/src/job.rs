//! Job descriptors: requirements, running-time estimates and deadlines.

use crate::resources::NodeProfile;
use crate::resources::{Architecture, OperatingSystem};
use aria_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Grid-wide unique job identifier.
///
/// The paper assigns every job a UUID for "univocal tracking across the
/// grid" (§III-B); inside the simulator a dense 64-bit id provides the
/// same guarantee at lower cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(u64);

impl JobId {
    /// Wraps a raw id.
    pub const fn new(raw: u64) -> Self {
        JobId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{:06}", self.0)
    }
}

/// Scheduling priority for the Priority policy (paper future work, §VI).
///
/// Higher values are served first; the default is the lowest priority.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct JobPriority(pub u8);

impl fmt::Display for JobPriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

/// The resource profile a node must offer to execute a job (§III-B).
///
/// Matching follows the paper's evaluation model: architecture and
/// operating system must be equal, memory and disk must be at least the
/// requested amount.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRequirements {
    /// Required CPU architecture (exact match).
    pub arch: Architecture,
    /// Required operating system (exact match).
    pub os: OperatingSystem,
    /// Minimum memory, in GB.
    pub min_memory_gb: u16,
    /// Minimum disk space, in GB.
    pub min_disk_gb: u16,
}

impl JobRequirements {
    /// Creates a requirement set.
    pub fn new(arch: Architecture, os: OperatingSystem, min_memory_gb: u16, min_disk_gb: u16) -> Self {
        JobRequirements { arch, os, min_memory_gb, min_disk_gb }
    }

    /// Whether a node's resources satisfy these requirements.
    pub fn matches(&self, profile: &NodeProfile) -> bool {
        self.arch == profile.arch
            && self.os == profile.os
            && profile.memory_gb >= self.min_memory_gb
            && profile.disk_gb >= self.min_disk_gb
    }
}

impl fmt::Display for JobRequirements {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} mem>={}GB disk>={}GB",
            self.arch, self.os, self.min_memory_gb, self.min_disk_gb
        )
    }
}

/// A complete job description as carried by REQUEST/INFORM/ASSIGN
/// messages: identifier, resource requirements, the Estimated job Running
/// Time on baseline hardware, and an optional deadline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Grid-wide unique identifier.
    pub id: JobId,
    /// Resources required to execute the job.
    pub requirements: JobRequirements,
    /// Estimated Running Time on the grid's baseline hardware (§III-B).
    pub ert: SimDuration,
    /// Absolute completion deadline, for deadline scheduling scenarios.
    pub deadline: Option<SimTime>,
    /// Priority, used only by the Priority policy extension.
    pub priority: JobPriority,
}

impl JobSpec {
    /// Creates a batch job (no deadline, default priority).
    pub fn batch(id: JobId, requirements: JobRequirements, ert: SimDuration) -> Self {
        JobSpec { id, requirements, ert, deadline: None, priority: JobPriority::default() }
    }

    /// Creates a deadline job.
    pub fn with_deadline(
        id: JobId,
        requirements: JobRequirements,
        ert: SimDuration,
        deadline: SimTime,
    ) -> Self {
        JobSpec { id, requirements, ert, deadline: Some(deadline), priority: JobPriority::default() }
    }

    /// Returns a copy with the given priority (builder-style).
    pub fn priority(mut self, priority: JobPriority) -> Self {
        self.priority = priority;
        self
    }

    /// Whether the job carries a deadline.
    pub fn is_deadline(&self) -> bool {
        self.deadline.is_some()
    }
}

impl fmt::Display for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] ert={}", self.id, self.requirements, self.ert)?;
        if let Some(d) = self.deadline {
            write!(f, " deadline={d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::PerfIndex;

    fn profile(arch: Architecture, os: OperatingSystem, mem: u16, disk: u16) -> NodeProfile {
        NodeProfile::new(arch, os, mem, disk, PerfIndex::BASELINE)
    }

    #[test]
    fn matching_requires_exact_arch_and_os() {
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 2, 2);
        assert!(req.matches(&profile(Architecture::Amd64, OperatingSystem::Linux, 2, 2)));
        assert!(!req.matches(&profile(Architecture::Power, OperatingSystem::Linux, 2, 2)));
        assert!(!req.matches(&profile(Architecture::Amd64, OperatingSystem::Bsd, 2, 2)));
    }

    #[test]
    fn matching_requires_capacity_at_least() {
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 8, 4);
        assert!(req.matches(&profile(Architecture::Amd64, OperatingSystem::Linux, 8, 4)));
        assert!(req.matches(&profile(Architecture::Amd64, OperatingSystem::Linux, 16, 16)));
        assert!(!req.matches(&profile(Architecture::Amd64, OperatingSystem::Linux, 4, 4)));
        assert!(!req.matches(&profile(Architecture::Amd64, OperatingSystem::Linux, 8, 2)));
    }

    #[test]
    fn batch_jobs_have_no_deadline() {
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        let job = JobSpec::batch(JobId::new(7), req, SimDuration::from_hours(2));
        assert!(!job.is_deadline());
        assert_eq!(job.priority, JobPriority(0));
    }

    #[test]
    fn deadline_jobs_carry_deadline() {
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        let job = JobSpec::with_deadline(
            JobId::new(9),
            req,
            SimDuration::from_hours(2),
            SimTime::from_hours(10),
        );
        assert!(job.is_deadline());
        assert_eq!(job.deadline, Some(SimTime::from_hours(10)));
    }

    #[test]
    fn priority_builder_sets_priority() {
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        let job =
            JobSpec::batch(JobId::new(1), req, SimDuration::from_hours(1)).priority(JobPriority(5));
        assert_eq!(job.priority, JobPriority(5));
    }

    #[test]
    fn job_ids_order_and_display() {
        assert!(JobId::new(3) < JobId::new(10));
        assert_eq!(JobId::new(42).to_string(), "job-000042");
        assert_eq!(JobId::new(42).raw(), 42);
    }

    #[test]
    fn display_includes_deadline_when_present() {
        let req = JobRequirements::new(Architecture::Sparc, OperatingSystem::Unix, 1, 2);
        let job = JobSpec::with_deadline(
            JobId::new(1),
            req,
            SimDuration::from_hours(1),
            SimTime::from_hours(5),
        );
        let s = job.to_string();
        assert!(s.contains("SPARC/UNIX"), "{s}");
        assert!(s.contains("deadline=5h00m00s"), "{s}");
    }
}
