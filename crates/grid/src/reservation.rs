//! Advance reservations (paper future work, §VI).
//!
//! A reservation blocks a node's executor for a fixed window — computing
//! time sold ahead of time to a virtual organization, outside the
//! meta-scheduler's control. The local scheduler must plan around these
//! windows: since jobs are never preempted (§III-A), a job may only
//! start if it finishes before the next reservation begins. The
//! [`crate::Policy::Backfill`] policy exploits the resulting gaps by
//! letting shorter queued jobs jump ahead when the head job does not fit
//! (EASY-style backfill on a single executor).

use aria_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A committed executor reservation: the half-open window
/// `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reservation {
    /// First blocked instant.
    pub start: SimTime,
    /// First instant after the window.
    pub end: SimTime,
}

impl Reservation {
    /// Creates a reservation window.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(end > start, "reservation window is empty or inverted");
        Reservation { start, end }
    }

    /// Creates a reservation from a start and a duration.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero.
    pub fn starting_at(start: SimTime, duration: SimDuration) -> Self {
        Reservation::new(start, start + duration)
    }

    /// Whether this window overlaps `[start, start + duration)`.
    pub fn overlaps(&self, start: SimTime, duration: SimDuration) -> bool {
        start < self.end && start + duration > self.start
    }

    /// Whether the window covers the instant `t`.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

impl fmt::Display for Reservation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {})", self.start, self.end)
    }
}

/// Error returned when a reservation overlaps an existing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReservationConflict {
    /// The existing window that blocked the insertion.
    pub existing: Reservation,
}

impl fmt::Display for ReservationConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reservation conflicts with existing window {}", self.existing)
    }
}

impl Error for ReservationConflict {}

/// A node's reservation calendar: sorted, non-overlapping windows.
///
/// # Example
///
/// ```
/// use aria_grid::{Reservation, ReservationCalendar};
/// use aria_sim::{SimDuration, SimTime};
///
/// let mut calendar = ReservationCalendar::new();
/// calendar.try_add(Reservation::starting_at(SimTime::from_hours(2), SimDuration::from_hours(1)))?;
///
/// // A 3h job at t=0 would overlap the window: the earliest fit is
/// // after the reservation ends.
/// let start = calendar.earliest_fit(SimTime::ZERO, SimDuration::from_hours(3));
/// assert_eq!(start, SimTime::from_hours(3));
/// // A 2h job fits immediately.
/// assert_eq!(calendar.earliest_fit(SimTime::ZERO, SimDuration::from_hours(2)), SimTime::ZERO);
/// # Ok::<(), aria_grid::ReservationConflict>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReservationCalendar {
    /// Sorted by start, pairwise disjoint.
    windows: Vec<Reservation>,
}

impl ReservationCalendar {
    /// An empty calendar.
    pub fn new() -> Self {
        ReservationCalendar::default()
    }

    /// The committed windows, sorted by start.
    pub fn windows(&self) -> &[Reservation] {
        &self.windows
    }

    /// Whether no windows are committed.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Commits a window.
    ///
    /// # Errors
    ///
    /// Returns [`ReservationConflict`] if the window overlaps a committed
    /// one; the calendar is unchanged.
    pub fn try_add(&mut self, reservation: Reservation) -> Result<(), ReservationConflict> {
        let pos = self.windows.partition_point(|w| w.start < reservation.start);
        for neighbor in self.windows[pos.saturating_sub(1)..].iter().take(2) {
            if neighbor.overlaps(reservation.start, reservation.end.saturating_since(reservation.start)) {
                return Err(ReservationConflict { existing: *neighbor });
            }
        }
        self.windows.insert(pos, reservation);
        Ok(())
    }

    /// The window covering instant `t`, if any.
    pub fn active_at(&self, t: SimTime) -> Option<&Reservation> {
        let pos = self.windows.partition_point(|w| w.start <= t);
        self.windows[..pos].last().filter(|w| w.contains(t))
    }

    /// The first window starting strictly after `t`.
    pub fn next_after(&self, t: SimTime) -> Option<&Reservation> {
        let pos = self.windows.partition_point(|w| w.start <= t);
        self.windows.get(pos)
    }

    /// Whether a run of `duration` starting at `start` would collide
    /// with a committed window.
    pub fn blocks(&self, start: SimTime, duration: SimDuration) -> bool {
        if duration.is_zero() {
            return self.active_at(start).is_some();
        }
        // Check the window active at `start` and the next one.
        if self.active_at(start).is_some() {
            return true;
        }
        self.next_after(start).is_some_and(|w| w.overlaps(start, duration))
    }

    /// Earliest instant `>= from` at which a run of `duration` fits
    /// before (or between/after) the committed windows.
    pub fn earliest_fit(&self, from: SimTime, duration: SimDuration) -> SimTime {
        let mut candidate = from;
        for _ in 0..=self.windows.len() {
            if let Some(active) = self.active_at(candidate) {
                candidate = active.end;
                continue;
            }
            match self.next_after(candidate) {
                Some(w) if w.overlaps(candidate, duration) => candidate = w.end,
                _ => return candidate,
            }
        }
        candidate
    }

    /// Drops windows that ended at or before `t` (bookkeeping hygiene for
    /// long simulations).
    pub fn prune_before(&mut self, t: SimTime) {
        self.windows.retain(|w| w.end > t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hours(h: u64) -> SimTime {
        SimTime::from_hours(h)
    }

    fn window(start_h: u64, end_h: u64) -> Reservation {
        Reservation::new(hours(start_h), hours(end_h))
    }

    #[test]
    fn overlap_detection_is_half_open() {
        let w = window(2, 4);
        assert!(w.overlaps(hours(1), SimDuration::from_hours(2))); // touches [1,3)
        assert!(!w.overlaps(hours(0), SimDuration::from_hours(2))); // [0,2) just misses
        assert!(!w.overlaps(hours(4), SimDuration::from_hours(1))); // starts at end
        assert!(w.contains(hours(2)));
        assert!(!w.contains(hours(4)));
    }

    #[test]
    fn try_add_keeps_windows_sorted_and_disjoint() {
        let mut c = ReservationCalendar::new();
        c.try_add(window(5, 6)).unwrap();
        c.try_add(window(1, 2)).unwrap();
        c.try_add(window(3, 4)).unwrap();
        let starts: Vec<u64> = c.windows().iter().map(|w| w.start.as_secs() / 3600).collect();
        assert_eq!(starts, [1, 3, 5]);
        // Overlapping insertions are rejected and leave the calendar intact.
        let err = c.try_add(window(3, 5)).unwrap_err();
        assert_eq!(err.existing, window(3, 4));
        assert!(c.try_add(window(0, 2)).is_err());
        assert!(c.try_add(window(5, 7)).is_err());
        assert_eq!(c.windows().len(), 3);
        // Exactly abutting windows are fine.
        c.try_add(window(2, 3)).unwrap();
        assert_eq!(c.windows().len(), 4);
    }

    #[test]
    fn active_and_next_lookups() {
        let mut c = ReservationCalendar::new();
        c.try_add(window(2, 4)).unwrap();
        c.try_add(window(6, 7)).unwrap();
        assert_eq!(c.active_at(hours(3)), Some(&window(2, 4)));
        assert_eq!(c.active_at(hours(5)), None);
        assert_eq!(c.active_at(hours(4)), None); // half-open
        assert_eq!(c.next_after(hours(0)), Some(&window(2, 4)));
        assert_eq!(c.next_after(hours(4)), Some(&window(6, 7)));
        assert_eq!(c.next_after(hours(7)), None);
    }

    #[test]
    fn blocks_checks_collisions() {
        let mut c = ReservationCalendar::new();
        c.try_add(window(2, 4)).unwrap();
        assert!(!c.blocks(hours(0), SimDuration::from_hours(2)));
        assert!(c.blocks(hours(1), SimDuration::from_hours(2)));
        assert!(c.blocks(hours(3), SimDuration::from_hours(1)));
        assert!(!c.blocks(hours(4), SimDuration::from_hours(10)));
        assert!(c.blocks(hours(2), SimDuration::ZERO));
        assert!(!c.blocks(hours(1), SimDuration::ZERO));
    }

    #[test]
    fn earliest_fit_walks_gaps() {
        let mut c = ReservationCalendar::new();
        c.try_add(window(2, 4)).unwrap();
        c.try_add(window(5, 6)).unwrap();
        // 1h fits right away in [0,2).
        assert_eq!(c.earliest_fit(SimTime::ZERO, SimDuration::from_hours(1)), SimTime::ZERO);
        // 3h does not fit before 2h, nor in the [4,5) gap: lands at 6h.
        assert_eq!(c.earliest_fit(SimTime::ZERO, SimDuration::from_hours(3)), hours(6));
        // 1h starting from inside the first window: next gap.
        assert_eq!(c.earliest_fit(hours(3), SimDuration::from_hours(1)), hours(4));
        // Empty calendar: immediately.
        assert_eq!(
            ReservationCalendar::new().earliest_fit(hours(9), SimDuration::from_hours(100)),
            hours(9)
        );
    }

    #[test]
    fn prune_drops_finished_windows() {
        let mut c = ReservationCalendar::new();
        c.try_add(window(1, 2)).unwrap();
        c.try_add(window(3, 4)).unwrap();
        c.prune_before(hours(2));
        assert_eq!(c.windows(), [window(3, 4)]);
        c.prune_before(hours(10));
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty or inverted")]
    fn inverted_window_panics() {
        Reservation::new(hours(2), hours(2));
    }
}
