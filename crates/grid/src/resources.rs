//! Node resource profiles: architecture, operating system, memory, disk
//! and the performance index relating a node to the ERT baseline.

use aria_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// CPU architecture of a grid node, per the TOP500 list used by the paper
/// (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Architecture {
    /// x86-64 (87.2 % of the TOP500 distribution used in the paper).
    Amd64,
    /// IBM POWER (11 %).
    Power,
    /// Intel Itanium (1.2 %).
    Ia64,
    /// SPARC (0.2 %).
    Sparc,
    /// MIPS (0.2 %).
    Mips,
    /// NEC vector architecture (0.2 %).
    Nec,
}

impl Architecture {
    /// All architectures, in the order used by the paper's distribution.
    pub const ALL: [Architecture; 6] = [
        Architecture::Amd64,
        Architecture::Power,
        Architecture::Ia64,
        Architecture::Sparc,
        Architecture::Mips,
        Architecture::Nec,
    ];
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Architecture::Amd64 => "AMD64",
            Architecture::Power => "POWER",
            Architecture::Ia64 => "IA-64",
            Architecture::Sparc => "SPARC",
            Architecture::Mips => "MIPS",
            Architecture::Nec => "NEC",
        };
        f.write_str(name)
    }
}

/// Operating system installed on a grid node, per the TOP500 list used by
/// the paper (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OperatingSystem {
    /// Linux (88.6 %).
    Linux,
    /// Solaris (5.8 %).
    Solaris,
    /// Other commercial UNIX (4.4 %).
    Unix,
    /// Windows (1 %).
    Windows,
    /// BSD (0.2 %).
    Bsd,
}

impl OperatingSystem {
    /// All operating systems, in the order used by the paper's
    /// distribution.
    pub const ALL: [OperatingSystem; 5] = [
        OperatingSystem::Linux,
        OperatingSystem::Solaris,
        OperatingSystem::Unix,
        OperatingSystem::Windows,
        OperatingSystem::Bsd,
    ];
}

impl fmt::Display for OperatingSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OperatingSystem::Linux => "LINUX",
            OperatingSystem::Solaris => "SOLARIS",
            OperatingSystem::Unix => "UNIX",
            OperatingSystem::Windows => "WINDOWS",
            OperatingSystem::Bsd => "BSD",
        };
        f.write_str(name)
    }
}

/// Error returned by [`PerfIndex::new`] for values outside `[1, 2]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidPerfIndex(pub f64);

impl fmt::Display for InvalidPerfIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "performance index {} outside the paper's range [1, 2]", self.0)
    }
}

impl Error for InvalidPerfIndex {}

/// A node's performance index `p ∈ [1, 2]` (§IV-B).
///
/// The index compares the node's computing power to the grid-wide
/// baseline hardware used to express Estimated Running Times: a job with
/// estimate `ERT` runs in `ERTp = ERT / p` on this node.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct PerfIndex(f64);

impl PerfIndex {
    /// The baseline hardware itself (`p = 1`).
    pub const BASELINE: PerfIndex = PerfIndex(1.0);

    /// Validates and wraps a performance index.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPerfIndex`] if `value` is NaN or outside `[1, 2]`.
    pub fn new(value: f64) -> Result<Self, InvalidPerfIndex> {
        if value.is_finite() && (1.0..=2.0).contains(&value) {
            Ok(PerfIndex(value))
        } else {
            Err(InvalidPerfIndex(value))
        }
    }

    /// The raw index value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Default for PerfIndex {
    fn default() -> Self {
        PerfIndex::BASELINE
    }
}

impl fmt::Display for PerfIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

/// Hardware/software profile of a grid node (§IV-B).
///
/// Memory and disk are in whole gigabytes, as in the paper (both drawn
/// from {1, 2, 4, 8, 16} GB in the evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeProfile {
    /// CPU architecture.
    pub arch: Architecture,
    /// Installed operating system.
    pub os: OperatingSystem,
    /// Available memory, in GB.
    pub memory_gb: u16,
    /// Available disk space, in GB.
    pub disk_gb: u16,
    /// Performance index relative to the ERT baseline.
    pub performance: PerfIndex,
}

impl NodeProfile {
    /// Creates a profile.
    pub fn new(
        arch: Architecture,
        os: OperatingSystem,
        memory_gb: u16,
        disk_gb: u16,
        performance: PerfIndex,
    ) -> Self {
        NodeProfile { arch, os, memory_gb, disk_gb, performance }
    }

    /// The job running-time estimate scaled to this node: `ERTp = ERT / p`
    /// (§IV-B).
    pub fn ert_on(&self, ert: SimDuration) -> SimDuration {
        ert.div_f64(self.performance.value())
    }
}

impl fmt::Display for NodeProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} mem={}GB disk={}GB p={}",
            self.arch, self.os, self.memory_gb, self.disk_gb, self.performance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_index_validates_range() {
        assert!(PerfIndex::new(1.0).is_ok());
        assert!(PerfIndex::new(2.0).is_ok());
        assert!(PerfIndex::new(1.37).is_ok());
        assert_eq!(PerfIndex::new(0.99), Err(InvalidPerfIndex(0.99)));
        assert_eq!(PerfIndex::new(2.01), Err(InvalidPerfIndex(2.01)));
        assert!(PerfIndex::new(f64::NAN).is_err());
        assert!(PerfIndex::new(f64::INFINITY).is_err());
    }

    #[test]
    fn ertp_divides_by_performance() {
        let p = NodeProfile::new(
            Architecture::Power,
            OperatingSystem::Linux,
            4,
            8,
            PerfIndex::new(2.0).unwrap(),
        );
        assert_eq!(p.ert_on(SimDuration::from_hours(4)), SimDuration::from_hours(2));
        let baseline = NodeProfile { performance: PerfIndex::BASELINE, ..p };
        assert_eq!(baseline.ert_on(SimDuration::from_hours(4)), SimDuration::from_hours(4));
    }

    #[test]
    fn faster_node_never_slower() {
        let ert = SimDuration::from_mins(150);
        let slow = PerfIndex::new(1.0).unwrap();
        let fast = PerfIndex::new(1.9).unwrap();
        let mk = |p| NodeProfile::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1, p);
        assert!(mk(fast).ert_on(ert) < mk(slow).ert_on(ert));
    }

    #[test]
    fn display_formats() {
        let p = NodeProfile::new(
            Architecture::Ia64,
            OperatingSystem::Solaris,
            2,
            16,
            PerfIndex::new(1.5).unwrap(),
        );
        assert_eq!(p.to_string(), "IA-64/SOLARIS mem=2GB disk=16GB p=1.500");
        assert_eq!(Architecture::Nec.to_string(), "NEC");
        assert_eq!(OperatingSystem::Bsd.to_string(), "BSD");
    }

    #[test]
    fn enumerations_are_complete() {
        assert_eq!(Architecture::ALL.len(), 6);
        assert_eq!(OperatingSystem::ALL.len(), 5);
    }

    #[test]
    fn invalid_perf_index_displays_value() {
        let err = PerfIndex::new(3.0).unwrap_err();
        assert!(err.to_string().contains("3"));
    }
}
