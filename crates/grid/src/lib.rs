//! # aria-grid — grid resource model, jobs and local scheduling policies
//!
//! This crate models the computing side of a grid node as assumed by the
//! ARiA protocol (Brocco et al., ICDCS 2010):
//!
//! * [`NodeProfile`] — hardware/software description of a node
//!   (architecture, operating system, memory, disk) plus the paper's
//!   *performance index* `p ∈ [1, 2]` relating the node to the grid-wide
//!   baseline used for Estimated Running Times (ERT).
//! * [`JobSpec`] / [`JobRequirements`] — jobs with a resource profile, an
//!   ERT and, for deadline scheduling, a completion deadline.
//! * [`SchedulerQueue`] — a local scheduler: one job executes at a time,
//!   waiting jobs are ordered by a [`Policy`] (FCFS, SJF, EDF, and the
//!   paper's future-work extensions LJF and Priority). The queue exposes
//!   the *cost* introspection the protocol needs: Estimated Time To
//!   Completion (ETTC) for batch policies and Negative Accumulated
//!   Lateness (NAL) for deadline policies.
//!
//! The protocol itself lives in `aria-core`; this crate is deliberately
//! free of any networking or messaging concern so the scheduling logic can
//! be tested exhaustively in isolation.
//!
//! ## Example
//!
//! ```
//! use aria_grid::{JobRequirements, JobSpec, JobId, NodeProfile, Policy, SchedulerQueue};
//! use aria_grid::{Architecture, OperatingSystem, PerfIndex};
//! use aria_sim::{SimDuration, SimTime};
//!
//! let profile = NodeProfile::new(
//!     Architecture::Amd64, OperatingSystem::Linux, 8, 16, PerfIndex::new(1.5)?,
//! );
//! let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 4, 4);
//! assert!(req.matches(&profile));
//!
//! let mut queue = SchedulerQueue::new(Policy::Sjf);
//! let job = JobSpec::batch(JobId::new(1), req, SimDuration::from_hours(3));
//! // On this node the job runs in 2h (ERT / p = 3h / 1.5).
//! assert_eq!(profile.ert_on(job.ert), SimDuration::from_hours(2));
//! queue.enqueue(job, SimTime::ZERO, &profile);
//! assert_eq!(queue.waiting_len(), 1);
//! # Ok::<(), aria_grid::InvalidPerfIndex>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod job;
pub mod queue;
pub mod reservation;
pub mod resources;

pub use job::{JobId, JobPriority, JobRequirements, JobSpec};
pub use queue::{Cost, CostKind, Policy, QueuedJob, RunningJob, SchedulerQueue};
pub use reservation::{Reservation, ReservationCalendar, ReservationConflict};
pub use resources::{Architecture, InvalidPerfIndex, NodeProfile, OperatingSystem, PerfIndex};
