//! `cargo xtask chaos` — randomized transport-fault schedules under
//! invariant auditing, with a shrinking counterexample reporter.
//!
//! ```text
//! cargo xtask chaos                         # default budget: 15 schedules
//! cargo xtask chaos --schedules 40 --seed 7 # bigger sweep, different stream
//! cargo xtask chaos --sweep                 # loss sweep of the iMixed scenario
//! cargo xtask chaos --self-check            # prove the shrinker on a planted violation
//! cargo xtask chaos --shrink-out chaos.jsonl
//! ```
//!
//! Each schedule derives a random [`FaultPlan`] (loss, duplicates,
//! jitter, partition windows) from the harness seed, runs a small world
//! under [`World::run_audited`] — every protocol invariant checked
//! after every event — and then applies the **job-conservation
//! oracle**: `completed + lost + abandoned == submitted`. Any violation
//! is shrunk to a minimal replayable fault list:
//!
//! * every fault that fires carries a sequential injection index;
//! * the shrinker re-runs with [`FaultPlan::keep`] allow-lists, greedily
//!   removing one index at a time and adopting the re-run's actually
//!   fired subset whenever the violation persists;
//! * the loop ends 1-minimal — removing *any* surviving injection makes
//!   the run pass — and the final keep-list replays the violation
//!   deterministically (`(config, seed, keep)` is the whole state).
//!
//! The minimal run is re-executed with a recording probe and exported in
//! the `aria-probe` JSONL schema (`--shrink-out`), so `cargo xtask probe
//! timeline` can visualise the counterexample.

use aria_core::{FaultPlan, PartitionWindow, World, WorldConfig};
use aria_probe::{NullProbe, Probe, RingRecorder, TraceMeta};
use aria_sim::{SimDuration, SimRng, SimTime};
use aria_workload::{JobGenerator, SubmissionSchedule};
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask chaos [--schedules N] [--seed N] [--nodes N] [--jobs N] \
                     [--workers N] [--sweep] [--self-check] [--shrink-out PATH]";

/// Parses the CLI flags and runs the harness.
pub fn run(args: &[String]) -> ExitCode {
    let mut schedules = 15u64;
    let mut seed = 1u64;
    let mut nodes = 24usize;
    let mut jobs = 18usize;
    let mut workers = aria_sim::pool::default_budget() + 1;
    let mut self_check = false;
    let mut sweep = false;
    // `--shrink-out PATH` takes a string value, so it is stripped before
    // the numeric-flag loop below.
    let mut args = args.to_vec();
    let mut shrink_out: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--shrink-out") {
        if pos + 1 >= args.len() {
            eprintln!("xtask chaos: --shrink-out needs a path");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
        shrink_out = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut number = |what: &str| -> Result<u64, String> {
            iter.next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{flag} {what}: {e}"))
        };
        let parsed = match flag.as_str() {
            "--schedules" => number("schedules").map(|v| schedules = v),
            "--seed" => number("seed").map(|v| seed = v),
            "--nodes" => number("nodes").map(|v| nodes = v as usize),
            "--jobs" => number("jobs").map(|v| jobs = v as usize),
            "--workers" => number("workers").map(|v| workers = (v as usize).max(1)),
            "--sweep" => {
                sweep = true;
                Ok(())
            }
            "--self-check" => {
                self_check = true;
                Ok(())
            }
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(message) = parsed {
            eprintln!("xtask chaos: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    if self_check {
        return self_check_shrinker(shrink_out.as_deref());
    }
    if sweep {
        return loss_sweep(seed);
    }
    chaos(schedules, seed, nodes, jobs, workers, shrink_out.as_deref())
}

/// One randomized chaos case: a world shape plus a fault plan. The
/// trajectory is a pure function of `(case, keep)`, which is what makes
/// shrinking sound.
struct ChaosCase {
    nodes: usize,
    jobs: usize,
    world_seed: u64,
    plan: FaultPlan,
    /// The planted self-check oracle: additionally demand that every
    /// job completes without the failsafe ever firing — false under
    /// heavy loss by design, so the shrinker has something to shrink.
    strict: bool,
}

/// What one audited run produced.
struct RunOutcome {
    /// `Err` when an invariant or the oracle failed.
    verdict: Result<(), String>,
    /// Injection indices that fired (the shrinker's currency).
    fired: Vec<u64>,
    /// Human-readable fault log of the run.
    records: Vec<String>,
    completed: u64,
    lost: usize,
    abandoned: usize,
}

impl ChaosCase {
    /// Runs the case with an injection allow-list (`None` = everything
    /// fires) and applies the audit + conservation oracle.
    fn execute<P: Probe>(&self, keep: Option<Vec<u64>>, probe: P) -> (RunOutcome, World<P>) {
        let mut config = WorldConfig::small_test(self.nodes);
        config.fault = FaultPlan { keep, ..self.plan.clone() };
        let mut world = World::with_probe(config, self.world_seed, probe);
        let mut generator = JobGenerator::paper_batch();
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_secs(40), self.jobs);
        world.submit_schedule(&schedule, &mut generator);
        let audited = world.run_audited();

        let completed = world.metrics().completed_count();
        let lost = world.lost_jobs().len();
        let abandoned = world.abandoned_jobs().len();
        let recovered = world.recovered_count();
        let verdict = audited.and_then(|()| {
            if completed as usize + lost + abandoned != self.jobs {
                return Err(format!(
                    "job conservation violated: {completed} completed + {lost} lost + \
                     {abandoned} abandoned != {} submitted",
                    self.jobs
                ));
            }
            if self.strict && (completed as usize != self.jobs || recovered > 0) {
                return Err(format!(
                    "planted oracle violated: {completed}/{} completed, {recovered} failsafe \
                     recover(ies)",
                    self.jobs
                ));
            }
            Ok(())
        });
        let outcome = RunOutcome {
            verdict,
            fired: world.fault_log().iter().map(|r| r.index).collect(),
            records: world.fault_log().iter().map(ToString::to_string).collect(),
            completed,
            lost,
            abandoned,
        };
        (outcome, world)
    }

    fn execute_plain(&self, keep: Option<Vec<u64>>) -> RunOutcome {
        self.execute(keep, NullProbe).0
    }
}

/// Derives the `k`-th randomized case from the harness RNG.
fn random_case(plan_rng: &mut SimRng, nodes: usize, jobs: usize) -> ChaosCase {
    let loss = plan_rng.f64_range(0.0, 0.45);
    let duplicate = plan_rng.f64_range(0.0, 0.25);
    let jitter_ms = plan_rng.u64_range(0, 1200);
    let mut partitions = Vec::new();
    if plan_rng.chance(0.5) {
        let count = 1 + usize::from(plan_rng.chance(0.3));
        for _ in 0..count {
            partitions.push(PartitionWindow {
                start: SimTime::from_mins(plan_rng.u64_range(2, 600)),
                duration: SimDuration::from_mins(plan_rng.u64_range(3, 40)),
            });
        }
    }
    ChaosCase {
        nodes,
        jobs,
        world_seed: plan_rng.next_u64(),
        plan: FaultPlan { loss, duplicate, jitter_ms, partitions, keep: None },
        strict: false,
    }
}

/// The main harness loop: run `schedules` randomized cases, shrink and
/// report the first violation.
///
/// Case derivation is serial — each `fork` advances the master RNG
/// stream — but the audited runs are pure functions of their case, so
/// they fan out across `workers` threads. Outcomes are buffered and
/// reported strictly in schedule order, and any shrink runs serially on
/// the calling thread, so stdout/stderr are byte-identical to a
/// `--workers 1` run at every worker count. (On a violation the serial
/// loop would stop early where the fan-out has already run the later
/// schedules; that surplus work is pure and its results are discarded.)
fn chaos(
    schedules: u64,
    seed: u64,
    nodes: usize,
    jobs: usize,
    workers: usize,
    out: Option<&str>,
) -> ExitCode {
    println!(
        "xtask chaos: {schedules} schedule(s), seed {seed}, {nodes} nodes, {jobs} jobs \
         (audited: every invariant checked after every event)"
    );
    let mut master = SimRng::seed_from(seed);
    let cases: Vec<ChaosCase> = (0..schedules)
        .map(|k| {
            let mut plan_rng = master.fork(k + 1);
            random_case(&mut plan_rng, nodes, jobs)
        })
        .collect();
    let outcomes = run_cases(&cases, workers);
    for (k, (case, outcome)) in cases.iter().zip(outcomes).enumerate() {
        let plan = &case.plan;
        println!(
            "schedule {k:>3}: loss {:>4.1}% dup {:>4.1}% jitter {:>4}ms partitions {} -> \
             {} completed / {} lost / {} abandoned, {} injection(s) fired: {}",
            plan.loss * 100.0,
            plan.duplicate * 100.0,
            plan.jitter_ms,
            plan.partitions.len(),
            outcome.completed,
            outcome.lost,
            outcome.abandoned,
            outcome.fired.len(),
            if outcome.verdict.is_ok() { "ok" } else { "VIOLATION" },
        );
        if let Err(message) = outcome.verdict {
            eprintln!("xtask chaos: schedule {k} violated the oracle: {message}");
            report_shrunk(case, outcome.fired, out);
            return ExitCode::FAILURE;
        }
    }
    println!("xtask chaos: all {schedules} schedule(s) passed the audit and conservation oracle");
    ExitCode::SUCCESS
}

/// Executes every case (allow-list `None`) across worker threads drawn
/// from the shared `aria_sim::pool`, returning outcomes **in case
/// order**. Each run is independent and deterministic in its case, so
/// workers claim indices off a shared cursor and the tagged results are
/// re-sorted — the merge order never depends on thread timing.
fn run_cases(cases: &[ChaosCase], workers: usize) -> Vec<RunOutcome> {
    let reservation = aria_sim::pool::reserve(workers.saturating_sub(1));
    let extra = reservation.workers().min(cases.len().saturating_sub(1));
    if extra == 0 {
        return cases.iter().map(|case| case.execute_plain(None)).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let worker = || {
        let mut out = Vec::new();
        loop {
            let k = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if k >= cases.len() {
                break;
            }
            out.push((k, cases[k].execute_plain(None)));
        }
        out
    };
    let mut tagged: Vec<(usize, RunOutcome)> = Vec::with_capacity(cases.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..extra).map(|_| scope.spawn(worker)).collect();
        tagged.extend(worker());
        for handle in handles {
            tagged.extend(handle.join().expect("chaos schedule worker panicked"));
        }
    });
    tagged.sort_unstable_by_key(|&(k, _)| k);
    tagged.into_iter().map(|(_, outcome)| outcome).collect()
}

/// Greedy keep-list shrink: try removing one surviving injection at a
/// time; whenever the violation persists, adopt the re-run's actually
/// fired subset (always ⊆ the candidate, so the list is monotonically
/// shrinking). Terminates 1-minimal.
fn shrink(case: &ChaosCase, mut kept: Vec<u64>) -> (Vec<u64>, usize) {
    let mut runs = 0usize;
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            let outcome = case.execute_plain(Some(candidate));
            runs += 1;
            if outcome.verdict.is_err() {
                kept = outcome.fired;
                progressed = true;
            } else {
                i += 1;
            }
        }
        if !progressed {
            break;
        }
    }
    (kept, runs)
}

/// Shrinks a violating case, prints the minimal fault list, and exports
/// the minimal run's probe trace when `--shrink-out` was given.
fn report_shrunk(case: &ChaosCase, fired: Vec<u64>, out: Option<&str>) {
    let initial = fired.len();
    let (kept, runs) = shrink(case, fired);
    let (outcome, world) = case.execute(Some(kept.clone()), RingRecorder::default());
    let verdict = outcome
        .verdict
        .expect_err("a shrunk schedule must still violate (shrinking only keeps violating runs)");
    eprintln!(
        "xtask chaos: shrunk {initial} -> {} injection(s) in {runs} re-run(s); minimal schedule \
         (world seed {}, keep {:?}):",
        kept.len(),
        case.world_seed,
        kept,
    );
    for record in &outcome.records {
        eprintln!("    {record}");
    }
    eprintln!("xtask chaos: minimal schedule still fails with: {verdict}");
    if let Some(path) = out {
        let meta = TraceMeta {
            scenario: "chaos-shrunk".to_string(),
            seed: case.world_seed,
            nodes: case.nodes as u64,
            jobs: case.jobs as u64,
        };
        let trace = world.into_probe().into_trace(meta);
        match std::fs::write(path, aria_probe::schema::to_jsonl(&trace)) {
            Ok(()) => eprintln!(
                "xtask chaos: minimal-run trace written to {path} ({} probe event(s))",
                trace.entries.len()
            ),
            Err(error) => eprintln!("xtask chaos: cannot write {path}: {error}"),
        }
    }
}

/// `--sweep` — the graceful-degradation table: iMixed at increasing
/// loss, conservation checked at every rate, zero lost jobs demanded up
/// to 10%.
fn loss_sweep(seed: u64) -> ExitCode {
    let runner = aria_scenarios::Runner::scaled(40, 30);
    let losses = [0.0, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50];
    println!("xtask chaos --sweep: iMixed, 40 nodes, 30 jobs, seed {seed}");
    println!("  loss   completed  lost  abandoned  recovered  injections  conserved");
    let mut failed = false;
    for point in aria_scenarios::loss_sweep(&runner, &losses, seed) {
        println!(
            "  {:>4.0}%  {:>9}  {:>4}  {:>9}  {:>9}  {:>10}  {}",
            point.loss * 100.0,
            point.completed,
            point.lost,
            point.abandoned,
            point.recovered,
            point.injections,
            if point.conserved() { "yes" } else { "NO" },
        );
        if !point.conserved() {
            eprintln!("xtask chaos: conservation violated at {:.0}% loss", point.loss * 100.0);
            failed = true;
        }
        if point.loss <= 0.10 && point.lost > 0 {
            eprintln!(
                "xtask chaos: {} job(s) lost at {:.0}% loss — the failsafe must absorb \
                 moderate loss",
                point.lost,
                point.loss * 100.0
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("xtask chaos --sweep: ledger balanced at every rate");
        ExitCode::SUCCESS
    }
}

/// Proves the shrinker on a planted violation: a fixed heavy-loss case
/// under the deliberately-strict oracle (every job completes, failsafe
/// never fires) must fail, shrink to a 1-minimal keep-list, and replay.
fn self_check_shrinker(out: Option<&str>) -> ExitCode {
    let case = ChaosCase {
        nodes: 8,
        jobs: 3,
        world_seed: 0xC4A05,
        plan: FaultPlan { loss: 0.75, jitter_ms: 300, ..FaultPlan::none() },
        strict: true,
    };
    let outcome = case.execute_plain(None);
    let Err(message) = outcome.verdict else {
        eprintln!("chaos --self-check: the planted violation was NOT caught");
        return ExitCode::FAILURE;
    };
    println!("chaos --self-check: planted violation caught: {message}");
    let initial = outcome.fired.len();
    let (kept, runs) = shrink(&case, outcome.fired);
    if kept.is_empty() || kept.len() >= initial {
        eprintln!(
            "chaos --self-check: shrink made no progress ({initial} -> {} injections)",
            kept.len()
        );
        return ExitCode::FAILURE;
    }
    // 1-minimality: removing any surviving injection must make the run pass.
    for i in 0..kept.len() {
        let mut candidate = kept.clone();
        candidate.remove(i);
        if case.execute_plain(Some(candidate)).verdict.is_err() {
            eprintln!("chaos --self-check: keep-list is not 1-minimal (index {} removable)", kept[i]);
            return ExitCode::FAILURE;
        }
    }
    // Determinism: the minimal keep-list must replay the same verdict
    // with exactly the kept injections firing.
    let replay = case.execute_plain(Some(kept.clone()));
    if replay.fired != kept || replay.verdict.is_ok() {
        eprintln!("chaos --self-check: minimal keep-list did not replay the violation");
        return ExitCode::FAILURE;
    }
    println!(
        "chaos --self-check: shrunk {initial} -> {} injection(s) in {runs} re-run(s), \
         1-minimal, replays deterministically:",
        kept.len()
    );
    for record in &replay.records {
        println!("    {record}");
    }
    if out.is_some() {
        report_shrunk(&case, kept, out);
    }
    ExitCode::SUCCESS
}
