//! `cargo xtask horizon` — static proof of the latency-horizon contract
//! behind the sharded deterministic runner.
//!
//! ```text
//! cargo xtask horizon               # analyze + write HORIZON.json
//! cargo xtask horizon --check       # CI gate: clean tree AND committed contract is current
//! cargo xtask horizon --self-check  # planted violations must be caught
//! ```
//!
//! The conservative-lookahead argument (DESIGN.md §14) is: every
//! cross-node event is a `Event::Deliver`, every Deliver is scheduled
//! inside the `World::transmit` choke point with delay `now + latency
//! (+ jitter (+ extra))`, and `latency` always comes from a
//! `NetModel` producer whose `Sampled` arm draws from a `LatencyModel`
//! whose constructor rejects a zero minimum. Therefore no Deliver
//! scheduled during a window `[T, T + floor)` can land inside that
//! window, and per-shard state can be read (never mutated) in parallel
//! up to the horizon. This analyzer walks every event-scheduling call
//! site in the sim-reachable crates with the lint lexer
//! ([`crate::scan`], [`crate::source`]) and proves each link of that
//! chain, classifying every `Event` variant against the `EFFECTS.json`
//! node-state partition:
//!
//! * **cross-node** — `Deliver`: the only variant that moves state
//!   between nodes; delay-bounded below by the latency floor.
//! * **shard-local** — variants carrying a `NodeId` payload (timers,
//!   ticks): they touch that node's shard and may fire at any delay.
//! * **global** — variants with no node affinity (submission, churn,
//!   fault windows, sampling): replayed in the deterministic serial
//!   phase of every window.
//!
//! The result is committed as `HORIZON.json`; `--check` regenerates and
//! byte-compares, and `aria_core::shard` embeds + revalidates the same
//! contract at runtime, so the sharded runner can never outlive the
//! proof it rests on.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::path::Path;
use std::process::ExitCode;

use crate::effects::{
    enclosing_fn, find_words, is_ident, kebab, parse_fns, skip_ws, FnItem, SourceFile,
    EFFECTS_PATH,
};
use crate::rules::Diagnostic;
use crate::scan::contains_word;
use crate::source::{self, skip_balanced, workspace_root, SIM_REACHABLE_CRATES};

/// The file defining `struct World`, `enum Event` and `fn transmit`.
const WORLD_FILE: &str = "crates/core/src/world.rs";

/// The file defining the `NetModel` latency producers.
const NET_FILE: &str = "crates/core/src/net.rs";

/// The file defining `LatencyModel` (the floor guard).
const LATENCY_FILE: &str = "crates/overlay/src/latency.rs";

/// Repo-relative path of the committed contract.
pub const HORIZON_PATH: &str = "HORIZON.json";

/// Rule catalog exported under `"rules"` in the JSON.
const RULE_DOCS: &[(&str, &str)] = &[
    ("floor-guard", "LatencyModel::new must reject a zero minimum and the Sampled NetModel arms must derive every latency from sampled links (Lockstep has no floor: sharded execution requires Sampled)"),
    ("latency-source", "every transmit call's latency argument must come from NetModel::flood_latency or NetModel::reply_latency"),
    ("transmit-bypass", "Event::Deliver may be scheduled only inside World::transmit; effects:allow(deliver-choke) escapes non-handler driver code"),
    ("unbounded-delay", "every Deliver scheduled in transmit must use a `now + latency (+ jitter…)` delay, so cross-node delivery is never earlier than the latency floor"),
    ("variant-drift", "every Event variant maps to exactly one EFFECTS.json handler and carries a horizon class, and vice versa"),
];

// ---------------------------------------------------------------------
// Analysis model
// ---------------------------------------------------------------------

/// One `Event` enum variant with its parsed payload fields.
struct Variant {
    name: String,
    /// `(field_name, type_head)` pairs, e.g. `("to", "NodeId")`.
    fields: Vec<(String, String)>,
}

/// The horizon classification of one event variant.
pub struct EventClass {
    pub variant: String,
    pub class: &'static str,
    pub shard_key: Option<String>,
}

/// One event-scheduling call site.
struct Site {
    file: String,
    func: String,
    event: String,
    delay: String,
    class: String,
}

/// The full analysis result.
pub struct Analysis {
    pub diagnostics: Vec<Diagnostic>,
    /// Kebab-case handler name → classification.
    pub events: BTreeMap<String, EventClass>,
    sites: Vec<Site>,
    default_min_ms: Option<u64>,
    pub json: String,
}

// ---------------------------------------------------------------------
// Small parsing helpers
// ---------------------------------------------------------------------

/// Splits `inner` at top-level commas (depth-balanced over `()[]{}`).
fn split_top(inner: &str) -> Vec<&str> {
    let bytes = inner.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&inner[start..]);
    parts
}

/// Splits a delay expression at top-level `+` into trimmed terms.
fn plus_terms(delay: &str) -> Vec<&str> {
    let bytes = delay.as_bytes();
    let mut terms = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'+' if depth == 0 => {
                terms.push(delay[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    terms.push(delay[start..].trim());
    terms
}

/// The first word-bounded `Event::Variant` in `expr`, if any.
fn event_variant(expr: &str) -> Option<String> {
    let bytes = expr.as_bytes();
    let mut at = 0;
    while let Some(found) = expr[at..].find("Event::") {
        let pos = at + found;
        at = pos + 7;
        if pos > 0 && is_ident(bytes[pos - 1]) {
            continue; // e.g. `ProbeEvent::` — not the world enum
        }
        let s = pos + 7;
        let mut q = s;
        while q < bytes.len() && is_ident(bytes[q]) {
            q += 1;
        }
        if q > s {
            return Some(expr[s..q].to_string());
        }
    }
    None
}

/// Whether this file defines its own `enum Event` (the comparator
/// models each carry a private single-queue event enum; their sites are
/// classified `file-local` and never partake in the world contract).
fn defines_own_event_enum(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    for pos in find_words(code, 0..code.len(), "enum") {
        let p = skip_ws(bytes, pos + 4);
        if code[p..].starts_with("Event") && !bytes.get(p + 5).copied().is_some_and(is_ident) {
            return Some(pos);
        }
    }
    None
}

/// Parses the variants of `enum Event { … }` starting at `enum_pos`.
fn parse_event_enum(code: &str, enum_pos: usize) -> Vec<Variant> {
    let bytes = code.as_bytes();
    let Some(open) = code[enum_pos..].find('{').map(|o| enum_pos + o) else { return Vec::new() };
    let end = skip_balanced(bytes, open).saturating_sub(1);
    let mut variants = Vec::new();
    let mut p = open + 1;
    while p < end {
        p = skip_ws(bytes, p);
        if p >= end {
            break;
        }
        if bytes[p] == b'#' {
            let q = skip_ws(bytes, p + 1);
            if bytes.get(q) == Some(&b'[') {
                p = skip_balanced(bytes, q);
                continue;
            }
        }
        if !is_ident(bytes[p]) {
            p += 1;
            continue;
        }
        let s = p;
        while p < end && is_ident(bytes[p]) {
            p += 1;
        }
        let name = code[s..p].to_string();
        p = skip_ws(bytes, p);
        let mut fields = Vec::new();
        if p < end && bytes[p] == b'{' {
            let fe = skip_balanced(bytes, p);
            for part in split_top(&code[p + 1..fe.saturating_sub(1)]) {
                let Some((fname, ftype)) = part.trim().split_once(':') else { continue };
                let head: String = ftype
                    .trim()
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                fields.push((fname.trim().to_string(), head));
            }
            p = fe;
        } else if p < end && bytes[p] == b'(' {
            p = skip_balanced(bytes, p);
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Classifies one variant: `Deliver` is the cross-node edge; a `NodeId`
/// payload pins the variant to that node's shard; everything else is
/// global (replayed in the serial phase of every window).
fn classify(v: &Variant) -> EventClass {
    let shard_key = v.fields.iter().find(|(_, t)| t == "NodeId").map(|(n, _)| n.clone());
    let class = if v.name == "Deliver" {
        "cross-node"
    } else if shard_key.is_some() {
        "shard-local"
    } else {
        "global"
    };
    EventClass { variant: v.name.clone(), class, shard_key }
}

/// The `Sampled =>` arm body of a `match self { … }` inside `body`.
fn sampled_arm(code: &str, body: Range<usize>) -> Option<String> {
    let bytes = code.as_bytes();
    let pos = find_words(code, body.clone(), "Sampled").first().copied()?;
    let arrow = code[pos..body.end].find("=>").map(|o| pos + o)?;
    let p = skip_ws(bytes, arrow + 2);
    if bytes.get(p) == Some(&b'{') {
        let e = skip_balanced(bytes, p);
        return Some(code[p..e].to_string());
    }
    let mut q = p;
    let mut depth = 0i32;
    while q < body.end {
        match bytes[q] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' if depth == 0 => break,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => break,
            _ => {}
        }
        q += 1;
    }
    Some(code[p..q].to_string())
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

/// **transmit-bypass**: any statement containing both `schedule` and a
/// word-bounded `Event::Deliver` must sit inside the world file's
/// `transmit` or carry an `effects:allow(deliver-choke)` escape.
fn check_bypass(file: &SourceFile, fns: &[FnItem], is_world: bool, diags: &mut Vec<Diagnostic>) {
    let code = &file.code;
    let bytes = code.as_bytes();
    for pos in find_words(code, 0..code.len(), "Event::Deliver") {
        let mut s = pos;
        while s > 0 && !matches!(bytes[s - 1], b';' | b'{' | b'}') {
            s -= 1;
        }
        if !contains_word(&code[s..pos], "schedule") {
            continue;
        }
        if is_world && enclosing_fn(fns, pos).is_some_and(|f| f.name == "transmit") {
            continue;
        }
        let (from, to) = (file.line_of(s), file.line_of(pos));
        if file.allowed("deliver-choke", from, to) || file.allowed("transmit-bypass", from, to) {
            continue;
        }
        diags.push(file.diag(
            pos,
            "transmit-bypass",
            "Event::Deliver scheduled outside World::transmit - every cross-node edge must \
             flow through the choke point so its delay is latency-floor bounded"
                .to_string(),
        ));
    }
}

/// **latency-source**: every `self.transmit(…)` call's final argument
/// must be derived from a `NetModel` latency producer (directly, or via
/// a local `latency` binding in the same function).
fn check_transmit_args(file: &SourceFile, fns: &[FnItem], diags: &mut Vec<Diagnostic>) {
    let code = &file.code;
    let bytes = code.as_bytes();
    let mut at = 0;
    while let Some(found) = code[at..].find(".transmit(") {
        let pos = at + found;
        at = pos + 10;
        let open = pos + 9;
        let end = skip_balanced(bytes, open);
        let inner = &code[open + 1..end.saturating_sub(1)];
        let mut parts = split_top(inner);
        if parts.last().is_some_and(|p| p.trim().is_empty()) {
            parts.pop(); // multiline calls keep a trailing comma
        }
        let Some(last) = parts.last().copied() else { continue };
        let arg = last.split_whitespace().collect::<Vec<_>>().join(" ");
        let produced = contains_word(&arg, "flood_latency")
            || contains_word(&arg, "reply_latency")
            || (arg == "latency"
                && enclosing_fn(fns, pos).is_some_and(|f| {
                    let body = &code[f.body.clone()];
                    contains_word(body, "flood_latency") || contains_word(body, "reply_latency")
                }));
        if produced {
            continue;
        }
        let line = file.line_of(pos);
        if file.allowed("latency-source", line, line) {
            continue;
        }
        diags.push(file.diag(
            pos,
            "latency-source",
            format!(
                "transmit latency argument `{arg}` is not derived from a NetModel producer \
                 (flood_latency / reply_latency) - the latency-floor bound cannot be proven"
            ),
        ));
    }
}

/// **floor-guard** over the `LatencyModel` constructor and the
/// `NetModel` producer arms; also extracts the default floor in ms.
fn check_floor(
    latency: Option<(&SourceFile, &[FnItem])>,
    net: Option<(&SourceFile, &[FnItem])>,
    diags: &mut Vec<Diagnostic>,
) -> Option<u64> {
    let mut default_min_ms = None;
    match latency {
        None => diags.push(Diagnostic {
            path: LATENCY_FILE.to_string(),
            line: 0,
            rule: "floor-guard",
            message: "the LatencyModel source is missing from the scan".to_string(),
        }),
        Some((file, fns)) => {
            let code = &file.code;
            match fns.iter().find(|f| f.name == "new") {
                Some(new) if contains_word(&code[new.body.clone()], "assert")
                    && code[new.body.clone()].contains("is_zero") => {}
                Some(new) => diags.push(file.diag(
                    new.sig_start,
                    "floor-guard",
                    "LatencyModel::new no longer rejects a zero minimum - the latency floor \
                     (and with it the shard lookahead window) is gone"
                        .to_string(),
                )),
                None => diags.push(file.diag(
                    0,
                    "floor-guard",
                    "no LatencyModel::new constructor found to guard the floor".to_string(),
                )),
            }
            if let Some(default) = fns.iter().find(|f| f.name == "default") {
                let body = &code[default.body.clone()];
                if let Some(m) = body.find("from_millis(") {
                    let digits: String = body[m + 12..]
                        .chars()
                        .take_while(|c| c.is_ascii_digit() || *c == '_')
                        .collect();
                    default_min_ms = digits.replace('_', "").parse().ok();
                }
            }
            if default_min_ms.is_none() {
                diags.push(file.diag(
                    0,
                    "floor-guard",
                    "cannot extract the default minimum latency from LatencyModel::default"
                        .to_string(),
                ));
            }
        }
    }
    match net {
        None => diags.push(Diagnostic {
            path: NET_FILE.to_string(),
            line: 0,
            rule: "floor-guard",
            message: "the NetModel source is missing from the scan".to_string(),
        }),
        Some((file, fns)) => {
            let code = &file.code;
            match fns.iter().find(|f| f.name == "flood_latency") {
                Some(f) => match sampled_arm(code, f.body.clone()) {
                    Some(arm) if arm.trim() == "link" => {}
                    _ => diags.push(file.diag(
                        f.sig_start,
                        "floor-guard",
                        "flood_latency's Sampled arm must return the sampled link latency \
                         unchanged (the floor bound rests on it)"
                            .to_string(),
                    )),
                },
                None => diags.push(file.diag(
                    0,
                    "floor-guard",
                    "no NetModel::flood_latency producer found".to_string(),
                )),
            }
            match fns.iter().find(|f| f.name == "reply_latency") {
                Some(f) => match sampled_arm(code, f.body.clone()) {
                    Some(arm) if contains_word(&arm, "reply_hops") && arm.contains(".sample(") => {}
                    _ => diags.push(file.diag(
                        f.sig_start,
                        "floor-guard",
                        "reply_latency's Sampled arm must sum reply_hops sampled link \
                         latencies (each >= the floor)"
                            .to_string(),
                    )),
                },
                None => diags.push(file.diag(
                    0,
                    "floor-guard",
                    "no NetModel::reply_latency producer found".to_string(),
                )),
            }
        }
    }
    default_min_ms
}

// ---------------------------------------------------------------------
// The analysis driver
// ---------------------------------------------------------------------

/// Runs the whole static pass over in-memory `(rel_path, text)` pairs.
/// `handler_names` is the `EFFECTS.json` handler set the event variants
/// must stay in lockstep with.
pub fn analyze_sources(
    files: &[(String, String)],
    world_rel: &str,
    net_rel: &str,
    latency_rel: &str,
    handler_names: &BTreeSet<String>,
) -> Analysis {
    let mut diags = Vec::new();
    let parsed: Vec<(SourceFile, Vec<FnItem>)> = files
        .iter()
        .map(|(rel, text)| {
            let file = SourceFile::parse(rel, text);
            let fns = parse_fns(&file.code);
            (file, fns)
        })
        .collect();
    let find = |rel: &str| {
        parsed.iter().find(|(f, _)| f.rel == rel).map(|(f, fns)| (f, fns.as_slice()))
    };

    // The event classification table, from the world enum against the
    // EFFECTS.json node-state partition.
    let mut events: BTreeMap<String, EventClass> = BTreeMap::new();
    let mut variant_names: BTreeSet<String> = BTreeSet::new();
    match find(world_rel) {
        Some((world, _)) => match defines_own_event_enum(&world.code) {
            Some(pos) => {
                for v in parse_event_enum(&world.code, pos) {
                    variant_names.insert(v.name.clone());
                    events.insert(kebab(&v.name), classify(&v));
                }
            }
            None => diags.push(Diagnostic {
                path: world_rel.to_string(),
                line: 0,
                rule: "variant-drift",
                message: "no `enum Event` found in the world source".to_string(),
            }),
        },
        None => diags.push(Diagnostic {
            path: world_rel.to_string(),
            line: 0,
            rule: "variant-drift",
            message: "the world source is missing from the scan".to_string(),
        }),
    }
    if !events.is_empty() {
        for name in events.keys() {
            if !handler_names.contains(name) {
                diags.push(Diagnostic {
                    path: world_rel.to_string(),
                    line: 0,
                    rule: "variant-drift",
                    message: format!(
                        "event variant `{name}` has no handler entry in {EFFECTS_PATH} - \
                         regenerate with `cargo xtask effects`"
                    ),
                });
            }
        }
        for name in handler_names {
            if !events.contains_key(name) {
                diags.push(Diagnostic {
                    path: world_rel.to_string(),
                    line: 0,
                    rule: "variant-drift",
                    message: format!(
                        "{EFFECTS_PATH} declares handler `{name}` but enum Event has no such \
                         variant"
                    ),
                });
            }
        }
    }

    let default_min_ms = check_floor(find(latency_rel), find(net_rel), &mut diags);

    // Per-file: the bypass rule, the transmit-argument rule, and every
    // event-scheduling call site.
    let mut sites = Vec::new();
    for (file, fns) in &parsed {
        let is_world = file.rel == world_rel;
        let own_enum = !is_world && defines_own_event_enum(&file.code).is_some();
        check_bypass(file, fns, is_world, &mut diags);
        if is_world {
            check_transmit_args(file, fns, &mut diags);
        }
        let code = &file.code;
        let bytes = code.as_bytes();
        let mut at = 0;
        while let Some(found) = code[at..].find(".schedule(") {
            let pos = at + found;
            at = pos + 10;
            let open = pos + 9;
            let end = skip_balanced(bytes, open);
            let inner = &code[open + 1..end.saturating_sub(1)];
            let mut parts = split_top(inner);
            if parts.last().is_some_and(|p| p.trim().is_empty()) {
                parts.pop(); // multiline calls keep a trailing comma
            }
            if parts.len() != 2 {
                continue;
            }
            let Some(variant) = event_variant(parts[1]) else { continue };
            let delay = parts[0].split_whitespace().collect::<Vec<_>>().join(" ");
            let func = enclosing_fn(fns, pos).map_or("<top>", |f| f.name.as_str()).to_string();
            let class = if own_enum {
                "file-local".to_string()
            } else {
                match events.get(&kebab(&variant)) {
                    Some(ec) => ec.class.to_string(),
                    None => {
                        diags.push(file.diag(
                            pos,
                            "variant-drift",
                            format!("scheduled `Event::{variant}` is not a world Event variant"),
                        ));
                        "unknown".to_string()
                    }
                }
            };
            // The delay bound: Deliver scheduled inside transmit must
            // carry a `now + latency (+ …)` expression. The producers'
            // floor makes `latency` >= the configured minimum and every
            // further term (jitter, duplicate spacing) only adds.
            if !own_enum && variant == "Deliver" && is_world && func == "transmit" {
                let terms = plus_terms(&delay);
                if !(terms.contains(&"now") && terms.contains(&"latency")) {
                    diags.push(file.diag(
                        pos,
                        "unbounded-delay",
                        format!(
                            "Deliver scheduled in transmit with delay `{delay}` - the delay \
                             must be `now + latency (+ …)` so the latency floor bounds it"
                        ),
                    ));
                }
            }
            sites.push(Site { file: file.rel.clone(), func, event: variant, delay, class });
        }
    }
    sites.sort_by(|a, b| {
        (&a.file, &a.func, &a.event, &a.delay).cmp(&(&b.file, &b.func, &b.event, &b.delay))
    });
    sites.dedup_by(|a, b| {
        (&a.file, &a.func, &a.event, &a.delay) == (&b.file, &b.func, &b.event, &b.delay)
    });
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let json = render_json(&events, &sites, default_min_ms, world_rel);
    Analysis { diagnostics: diags, events, sites, default_min_ms, json }
}

/// Loads and analyzes the real tree under `root`.
pub fn analyze(root: &Path) -> Analysis {
    let mut files = Vec::new();
    for name in SIM_REACHABLE_CRATES {
        for path in source::crate_sources(root, name) {
            let rel =
                path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let text = std::fs::read_to_string(&path).unwrap_or_default();
            files.push((rel, text));
        }
    }
    let effects = std::fs::read_to_string(root.join(EFFECTS_PATH)).unwrap_or_default();
    let handler_names = handler_names_from_effects(&effects);
    analyze_sources(&files, WORLD_FILE, NET_FILE, LATENCY_FILE, &handler_names)
}

/// The handler keys of the committed `EFFECTS.json` (the `"handlers"`
/// object's top-level keys — each renders as `"name": {`).
fn handler_names_from_effects(text: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let Some(h) = text.find("\"handlers\": {") else { return names };
    let open = h + "\"handlers\": ".len();
    let end = skip_balanced(text.as_bytes(), open);
    for line in text[open..end].lines() {
        let t = line.trim();
        let Some(rest) = t.strip_prefix('"') else { continue };
        let Some(q) = rest.find('"') else { continue };
        if rest[q + 1..].trim_start().starts_with(": {") {
            names.insert(rest[..q].to_string());
        }
    }
    names
}

// ---------------------------------------------------------------------
// Deterministic JSON rendering
// ---------------------------------------------------------------------

/// Renders the committed contract. Pure function of the analysis →
/// `--check` can byte-compare; no line numbers or timestamps appear
/// (call sites are keyed by enclosing function, not position).
fn render_json(
    events: &BTreeMap<String, EventClass>,
    sites: &[Site],
    default_min_ms: Option<u64>,
    world_rel: &str,
) -> String {
    let mut o = String::new();
    o.push_str("{\n  \"schema\": \"aria-horizon\",\n  \"version\": 1,\n  \"crates\": [");
    for (i, c) in SIM_REACHABLE_CRATES.iter().enumerate() {
        if i > 0 {
            o.push_str(", ");
        }
        o.push_str(&format!("\"{c}\""));
    }
    o.push_str("],\n  \"floor\": {\n");
    o.push_str("    \"source\": \"WorldConfig.latency (LatencyModel): minimum one-way link latency\",\n");
    o.push_str(&format!(
        "    \"default_min_ms\": {},\n",
        default_min_ms.map_or("null".to_string(), |ms| ms.to_string())
    ));
    o.push_str("    \"guard\": \"LatencyModel::new rejects a zero minimum; NetModel::Lockstep collapses latencies to zero, so sharded execution requires NetModel::Sampled\",\n");
    o.push_str("    \"producers\": {\n");
    o.push_str("      \"flood_latency\": \"one sampled link latency, >= floor under Sampled\",\n");
    o.push_str("      \"reply_latency\": \"reply_hops sampled link latencies, each >= floor under Sampled\"\n");
    o.push_str("    }\n  },\n");
    o.push_str(&format!("  \"choke_point\": \"{world_rel}::transmit\",\n"));
    o.push_str("  \"events\": {\n");
    for (i, (name, ec)) in events.iter().enumerate() {
        let comma = if i + 1 < events.len() { "," } else { "" };
        let key = ec.shard_key.as_ref().map_or("null".to_string(), |k| format!("\"{k}\""));
        o.push_str(&format!(
            "    \"{name}\": {{\"variant\": \"{}\", \"class\": \"{}\", \"shard_key\": {key}}}{comma}\n",
            ec.variant, ec.class
        ));
    }
    o.push_str("  },\n  \"schedule_sites\": [\n");
    for (i, s) in sites.iter().enumerate() {
        let comma = if i + 1 < sites.len() { "," } else { "" };
        o.push_str(&format!(
            "    {{\"file\": \"{}\", \"fn\": \"{}\", \"event\": \"{}\", \"delay\": \"{}\", \"class\": \"{}\"}}{comma}\n",
            s.file, s.func, s.event, s.delay, s.class
        ));
    }
    o.push_str("  ],\n  \"rules\": {\n");
    for (i, (name, desc)) in RULE_DOCS.iter().enumerate() {
        let comma = if i + 1 < RULE_DOCS.len() { "," } else { "" };
        o.push_str(&format!("    \"{name}\": \"{desc}\"{comma}\n"));
    }
    o.push_str("  }\n}\n");
    o
}

// ---------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------

const USAGE: &str = "usage: cargo xtask horizon [--check | --self-check]";

/// Entry point for `cargo xtask horizon`.
pub fn run(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        None => generate(false),
        Some("--check") => generate(true),
        Some("--self-check") => match self_check_cases() {
            Ok(()) => {
                println!("horizon --self-check: every planted violation was caught");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("horizon --self-check: {message}");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("xtask horizon: unknown flag `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Default mode writes `HORIZON.json`; `--check` regenerates and
/// byte-compares against the committed contract.
fn generate(check: bool) -> ExitCode {
    let root = workspace_root();
    let analysis = analyze(&root);
    if !analysis.diagnostics.is_empty() {
        for d in &analysis.diagnostics {
            eprintln!("{d}");
        }
        eprintln!("xtask horizon: {} violation(s)", analysis.diagnostics.len());
        return ExitCode::FAILURE;
    }
    let summary = format!(
        "{} event variant(s), {} schedule site(s), floor {} ms",
        analysis.events.len(),
        analysis.sites.len(),
        analysis.default_min_ms.unwrap_or(0)
    );
    let path = root.join(HORIZON_PATH);
    if check {
        let committed = std::fs::read_to_string(&path).unwrap_or_default();
        if committed == analysis.json {
            println!("xtask horizon --check: clean tree, {HORIZON_PATH} is current ({summary})");
            return ExitCode::SUCCESS;
        }
        for (i, (a, b)) in committed.lines().zip(analysis.json.lines()).enumerate() {
            if a != b {
                eprintln!("xtask horizon: {HORIZON_PATH} line {}:", i + 1);
                eprintln!("  committed: {a}");
                eprintln!("  current:   {b}");
                break;
            }
        }
        eprintln!(
            "xtask horizon: {HORIZON_PATH} is stale - regenerate with `cargo xtask horizon` \
             and commit the result"
        );
        ExitCode::FAILURE
    } else {
        if let Err(error) = std::fs::write(&path, &analysis.json) {
            eprintln!("xtask horizon: cannot write {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask horizon: wrote {HORIZON_PATH} ({summary})");
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------
// Self-check fixtures
// ---------------------------------------------------------------------

/// Builds the fixture world: a three-variant event enum, a dispatch, a
/// timer that transmits, and the marked transmit choke point.
fn mini_world(deliver_extra: &str, tick_body: &str, transmit_body: &str) -> String {
    format!(
        "pub(crate) enum Event {{\n    Deliver {{ to: NodeId, msg: Msg }},\n    \
         Tick {{ node: NodeId }},\n    Sample,\n}}\n\nimpl World {{\n    \
         fn handle(&mut self, now: SimTime, event: Event) {{\n        match event {{\n            \
         Event::Deliver {{ to, msg }} => self.deliver(now, to, msg),\n            \
         Event::Tick {{ node }} => self.tick(now, node),\n            \
         Event::Sample => self.sample(now),\n        }}\n    }}\n\n    \
         fn deliver(&mut self, now: SimTime, to: NodeId, msg: Msg) {{\n        {deliver_extra}\n        \
         self.events.schedule(now + self.period, Event::Tick {{ node: to }});\n    }}\n\n    \
         fn tick(&mut self, now: SimTime, node: NodeId) {{\n        {tick_body}\n    }}\n\n    \
         fn sample(&mut self, now: SimTime) {{\n        \
         self.events.schedule(now + self.sample_every, Event::Sample);\n    }}\n\n    \
         // effects:choke-point(deliver) - sole Deliver scheduling site.\n    \
         fn transmit(&mut self, now: SimTime, to: NodeId, msg: Msg, latency: SimDuration) {{\n        \
         {transmit_body}\n    }}\n}}\n"
    )
}

/// The fixture NetModel with honest Sampled arms.
fn mini_net() -> String {
    "pub(crate) enum NetModel { Sampled, Lockstep }\n\nimpl NetModel {\n    \
     pub(crate) fn flood_latency(&self, link: SimDuration) -> SimDuration {\n        \
     match self {\n            NetModel::Sampled => link,\n            \
     NetModel::Lockstep => SimDuration::ZERO,\n        }\n    }\n\n    \
     pub(crate) fn reply_latency(&self, rng: &mut Rng, latency: &LatencyModel, reply_hops: u32) -> SimDuration {\n        \
     match self {\n            NetModel::Sampled => {\n                \
     let mut total = SimDuration::ZERO;\n                \
     for _ in 0..reply_hops {\n                    total = total + latency.sample(rng);\n                \
     }\n                total\n            }\n            \
     NetModel::Lockstep => SimDuration::ZERO,\n        }\n    }\n}\n"
        .to_string()
}

/// The fixture LatencyModel; `guarded` controls the zero-min assert.
fn mini_latency(guarded: bool) -> String {
    let guard = if guarded {
        "assert!(!min.is_zero(), \"minimum latency must be positive\");\n        "
    } else {
        ""
    };
    format!(
        "impl LatencyModel {{\n    pub fn new(min: SimDuration, max: SimDuration) -> LatencyModel {{\n        \
         {guard}LatencyModel {{ min, max }}\n    }}\n}}\n\nimpl Default for LatencyModel {{\n    \
         fn default() -> LatencyModel {{\n        \
         LatencyModel::new(SimDuration::from_millis(5), SimDuration::from_millis(150))\n    }}\n}}\n"
    )
}

/// Runs each planted-violation fixture through the full analyzer and
/// demands the expected rule fires (and nothing fires on the clean
/// fixtures). The clean fixture also pins the classification table.
pub fn self_check_cases() -> Result<(), String> {
    let clean_tick = "let latency = self.config.net.flood_latency(self.link(node));\n        \
                      self.transmit(now, node, Msg::Ping, latency);";
    let clean_transmit = "self.events.schedule(now + latency, Event::Deliver { to, msg });";
    let handler_names: BTreeSet<String> =
        ["deliver", "tick", "sample"].iter().map(|s| s.to_string()).collect();
    let drifted_names: BTreeSet<String> =
        ["deliver", "sample"].iter().map(|s| s.to_string()).collect();
    type Case<'a> = (&'a str, String, String, &'a BTreeSet<String>, Option<&'a str>);
    let cases: Vec<Case<'_>> = vec![
        (
            "clean fixture",
            mini_world("self.nodes[to].seen += 1;", clean_tick, clean_transmit),
            mini_latency(true),
            &handler_names,
            None,
        ),
        (
            "allowed replay driver",
            mini_world(
                "// effects:allow(deliver-choke): fixture replay driver, not handler code\n        \
                 self.events.schedule(now, Event::Deliver { to, msg });",
                clean_tick,
                clean_transmit,
            ),
            mini_latency(true),
            &handler_names,
            None,
        ),
        (
            "planted transmit bypass",
            mini_world(
                "self.events.schedule(now, Event::Deliver { to, msg });",
                clean_tick,
                clean_transmit,
            ),
            mini_latency(true),
            &handler_names,
            Some("transmit-bypass"),
        ),
        (
            "planted zero-delay cross-node schedule",
            mini_world(
                "self.nodes[to].seen += 1;",
                clean_tick,
                "self.events.schedule(now, Event::Deliver { to, msg });",
            ),
            mini_latency(true),
            &handler_names,
            Some("unbounded-delay"),
        ),
        (
            "planted raw latency argument",
            mini_world(
                "self.nodes[to].seen += 1;",
                "self.transmit(now, node, Msg::Ping, SimDuration::ZERO);",
                clean_transmit,
            ),
            mini_latency(true),
            &handler_names,
            Some("latency-source"),
        ),
        (
            "planted floor removal",
            mini_world("self.nodes[to].seen += 1;", clean_tick, clean_transmit),
            mini_latency(false),
            &handler_names,
            Some("floor-guard"),
        ),
        (
            "planted handler drift",
            mini_world("self.nodes[to].seen += 1;", clean_tick, clean_transmit),
            mini_latency(true),
            &drifted_names,
            Some("variant-drift"),
        ),
    ];
    for (name, world, latency, names, expect) in cases {
        let files = vec![
            (WORLD_FILE.to_string(), world),
            (NET_FILE.to_string(), mini_net()),
            (LATENCY_FILE.to_string(), latency),
        ];
        let analysis = analyze_sources(&files, WORLD_FILE, NET_FILE, LATENCY_FILE, names);
        match expect {
            None => {
                if !analysis.diagnostics.is_empty() {
                    return Err(format!(
                        "{name}: expected a clean pass, got: {}",
                        analysis.diagnostics[0]
                    ));
                }
                let deliver = analysis
                    .events
                    .get("deliver")
                    .ok_or_else(|| format!("{name}: Deliver not classified"))?;
                let tick = analysis
                    .events
                    .get("tick")
                    .ok_or_else(|| format!("{name}: Tick not classified"))?;
                let sample = analysis
                    .events
                    .get("sample")
                    .ok_or_else(|| format!("{name}: Sample not classified"))?;
                if deliver.class != "cross-node" || deliver.shard_key.as_deref() != Some("to") {
                    return Err(format!("{name}: Deliver misclassified"));
                }
                if tick.class != "shard-local" || tick.shard_key.as_deref() != Some("node") {
                    return Err(format!("{name}: Tick misclassified"));
                }
                if sample.class != "global" || sample.shard_key.is_some() {
                    return Err(format!("{name}: Sample misclassified"));
                }
                if !analysis
                    .sites
                    .iter()
                    .any(|s| s.func == "transmit" && s.event == "Deliver" && s.class == "cross-node")
                {
                    return Err(format!("{name}: the transmit Deliver site was not recorded"));
                }
                if analysis.default_min_ms != Some(5) {
                    return Err(format!("{name}: default floor not extracted"));
                }
                println!("horizon --self-check: {name}: clean, classification table correct");
            }
            Some(rule) => match analysis.diagnostics.iter().find(|d| d.rule == rule) {
                Some(d) => println!("horizon --self-check: {name}: caught ({d})"),
                None => {
                    return Err(format!(
                        "{name}: expected a `{rule}` violation, analyzer saw {} other \
                         diagnostic(s)",
                        analysis.diagnostics.len()
                    ))
                }
            },
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_check_catches_every_planted_violation() {
        self_check_cases().expect("self-check fixtures");
    }

    #[test]
    fn delay_terms_split_at_top_level_plus_only() {
        assert_eq!(plus_terms("now + latency"), ["now", "latency"]);
        assert_eq!(plus_terms("now + latency + jitter + extra"), ["now", "latency", "jitter", "extra"]);
        assert_eq!(plus_terms("now + self.jitter(a + b)"), ["now", "self.jitter(a + b)"]);
        assert_eq!(plus_terms("now"), ["now"]);
    }

    #[test]
    fn real_tree_is_clean_and_classifies_all_variants() {
        let analysis = analyze(&workspace_root());
        assert!(
            analysis.diagnostics.is_empty(),
            "horizon violations on the tree:\n{}",
            analysis
                .diagnostics
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(analysis.events.len(), 14, "{:?}", analysis.events.keys());
        assert_eq!(analysis.events["deliver"].class, "cross-node");
        assert_eq!(analysis.events["deliver"].shard_key.as_deref(), Some("to"));
        assert_eq!(analysis.events["inform-tick"].class, "shard-local");
        assert_eq!(analysis.events["submit"].class, "global");
        assert_eq!(analysis.default_min_ms, Some(5));
        // The three transmit Deliver sites (plain, jittered, duplicate)
        // are all floor-bounded and recorded.
        let transmit_sites: Vec<&Site> = analysis
            .sites
            .iter()
            .filter(|s| s.file == WORLD_FILE && s.func == "transmit")
            .collect();
        assert_eq!(transmit_sites.len(), 3, "expected plain + jitter + duplicate Deliver sites");
        for s in transmit_sites {
            assert_eq!(s.class, "cross-node");
            assert!(s.delay.contains("latency"), "{}", s.delay);
        }
    }

    /// The tentpole golden: regenerating the contract on an unchanged
    /// tree is byte-identical to the committed `HORIZON.json`.
    #[test]
    fn committed_horizon_contract_is_current() {
        let root = workspace_root();
        let analysis = analyze(&root);
        let committed = std::fs::read_to_string(root.join(HORIZON_PATH))
            .expect("HORIZON.json must be committed; run `cargo xtask horizon`");
        assert!(
            committed == analysis.json,
            "HORIZON.json is stale - regenerate with `cargo xtask horizon`"
        );
    }
}
