//! Shared source-walking and expression-scan machinery.
//!
//! Both static passes — the determinism lint (`cargo xtask lint`,
//! [`crate::rules`]) and the effect-map analyzer (`cargo xtask effects`,
//! [`crate::effects`]) — walk the same sim-reachable file set and lean on
//! the same balanced-bracket expression scan. This module is the single
//! home for both, so the two gates can never drift apart on *what* they
//! scan or *how* they recover an expression.

use std::path::{Path, PathBuf};

/// Crates whose code runs inside (or builds the state of) the
/// discrete-event simulation: the determinism rules apply to their
/// sources, tests included.
pub const SIM_REACHABLE_CRATES: &[&str] = &[
    "sim", "overlay", "grid", "workload", "metrics", "jsdl", "trace", "core", "probe", "model",
    "scenarios", "codec",
];

/// Top-level directories compiled into sim-reachable test/example
/// targets (they live outside `crates/` but drive the same worlds).
pub const SIM_REACHABLE_DIRS: &[&str] = &["tests", "examples"];

/// Workspace crates exempt from the determinism rules (but not from the
/// attribute check): `bench` times wall-clock throughput by design,
/// `xtask` is this tool, and `node` is the live I/O layer — the one
/// crate whose whole job is the sockets and clocks the io-purity rule
/// bans everywhere else. `vendor/*` members (offline stand-ins for
/// external crates) are exempt wholesale.
pub const EXEMPT_CRATES: &[&str] = &["bench", "xtask", "node"];

/// Directory names never descended into while collecting sources:
/// build output and the vendored dependency stand-ins.
pub const SKIP_DIRS: &[&str] = &["target", "vendor"];

/// Locates the workspace root: the nearest ancestor of the current
/// directory (or of this crate's manifest) containing a top-level
/// `Cargo.toml` with a `[workspace]` table.
pub fn workspace_root() -> PathBuf {
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::current_dir().expect("current dir"));
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => panic!("no workspace root above {}", start.display()),
        }
    }
}

/// Every `.rs` file the determinism rules apply to, in sorted order.
pub fn sim_reachable_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for name in SIM_REACHABLE_CRATES {
        collect_rs(&root.join("crates").join(name), &mut files);
    }
    for dir in SIM_REACHABLE_DIRS {
        collect_rs(&root.join(dir), &mut files);
    }
    files.sort();
    files
}

/// The `src/` sources of one workspace crate, in sorted order (the
/// effect-map analyzer scans crate impls only — integration tests under
/// `tests/` drive worlds, they do not define handler code).
pub fn crate_sources(root: &Path, name: &str) -> Vec<PathBuf> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates").join(name).join("src"), &mut files);
    files.sort();
    files
}

/// The crate-root source of every workspace member (crates/* and
/// vendor/*), in sorted order.
pub fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    for group in ["crates", "vendor"] {
        let Ok(entries) = std::fs::read_dir(root.join(group)) else { continue };
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            for candidate in [src.join("lib.rs"), src.join("main.rs")] {
                if candidate.is_file() {
                    roots.push(candidate);
                    break;
                }
            }
        }
    }
    roots.sort();
    roots
}

/// Recursively collects `.rs` files under `dir` (sorted traversal),
/// explicitly skipping [`SKIP_DIRS`] (`target/` build output and
/// `vendor/` stand-ins) at every level.
pub fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Recovers the start of the expression ending at byte offset `at` in a
/// code line by a backward scan balanced over `()[]{}`: the scan stops
/// at a top-level `;`, `,`, `=` or an unmatched opening bracket.
///
/// This is how the lossy-cast rule recovers `(q * len as f64).ceil()`
/// from `… as usize`, and how the effects pass bounds field-access
/// chains; both gates share the exact same notion of "the expression to
/// the left".
pub fn expr_start(code: &str, at: usize) -> usize {
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    let mut start = at;
    while start > 0 {
        let c = bytes[start - 1] as char;
        match c {
            ')' | ']' | '}' => depth += 1,
            '(' | '[' | '{' if depth == 0 => break,
            '(' | '[' | '{' => depth -= 1,
            ';' | ',' | '=' if depth == 0 => break,
            _ => {}
        }
        start -= 1;
    }
    start
}

/// Advances past a balanced bracket group: `open` is the byte offset of
/// an opening `(`, `[` or `{` in `code`; returns the offset just past
/// its matching close (or `code.len()` if unbalanced). Counts all three
/// bracket kinds together, which is sound on the blanked code channel
/// (string/char contents are spaces, comments are gone).
pub fn skip_balanced(code: &[u8], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < code.len() {
        match code[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    code.len()
}

/// The crate directories actually present under `crates/`, sorted —
/// i.e. the workspace members the root manifest's `crates/*` glob
/// expands to. Used by the coverage test below to prove the
/// sim-reachable set tracks the workspace exactly.
pub fn workspace_crates(root: &Path) -> Vec<String> {
    let mut names = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() && path.join("Cargo.toml").is_file() {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    names.push(name.to_string());
                }
            }
        }
    }
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sim-reachable crate set plus the exempt crates must be
    /// exactly the workspace members the `crates/*` glob claims — a new
    /// crate cannot silently land outside both lists, and a deleted
    /// crate cannot haunt the scan. `vendor/*` stays out by
    /// construction ([`SKIP_DIRS`]).
    #[test]
    fn sim_reachable_set_matches_workspace_members() {
        let root = workspace_root();
        let members = workspace_crates(&root);
        assert!(!members.is_empty(), "no crates under {}", root.display());
        let mut covered: Vec<String> = SIM_REACHABLE_CRATES
            .iter()
            .chain(EXEMPT_CRATES)
            .map(|s| s.to_string())
            .collect();
        covered.sort();
        assert_eq!(
            covered, members,
            "SIM_REACHABLE_CRATES + EXEMPT_CRATES must equal the crates/* members; \
             update crates/xtask/src/source.rs when adding or removing a crate"
        );
    }

    /// `lint --list` and the scan itself agree because both call
    /// [`sim_reachable_sources`]; this pins that no listed file comes
    /// from a skipped directory and every sim-reachable crate
    /// contributes at least its crate root.
    #[test]
    fn scanned_files_never_come_from_target_or_vendor() {
        let root = workspace_root();
        let sources = sim_reachable_sources(&root);
        assert!(!sources.is_empty());
        for path in &sources {
            let rel = path.strip_prefix(&root).unwrap_or(path);
            for part in rel.components() {
                let name = part.as_os_str().to_str().unwrap_or("");
                assert!(
                    !SKIP_DIRS.contains(&name),
                    "scanned file {} lives under a skipped directory",
                    rel.display()
                );
            }
        }
        for name in SIM_REACHABLE_CRATES {
            assert!(
                sources.iter().any(|p| p.starts_with(root.join("crates").join(name))),
                "crate `{name}` contributes no files to the scan"
            );
        }
    }

    #[test]
    fn expr_start_recovers_balanced_expressions() {
        let code = "let n = (x * 2.0).round() as u64;";
        let at = code.find(" as ").unwrap();
        assert_eq!(&code[expr_start(code, at)..at], " (x * 2.0).round()");
        let code = "f(a, (b + c).exp() as u32)";
        let at = code.find(" as ").unwrap();
        assert_eq!(&code[expr_start(code, at)..at], " (b + c).exp()");
    }

    #[test]
    fn skip_balanced_crosses_nested_groups() {
        let code = b"foo(bar(1, [2, 3]), baz).tail";
        let end = skip_balanced(code, 3);
        assert_eq!(&code[end..], b".tail");
    }
}
