//! Workspace automation (`cargo xtask <command>`).
//!
//! Five commands:
//!
//! * `lint` — the determinism & protocol-hygiene gate described in
//!   DESIGN.md §8. It walks the sim-reachable sources with a
//!   dependency-free lexer (the build has no registry access, so no
//!   `syn`), applies the rules in [`rules`], checks every crate root for
//!   the mandatory hygiene attributes, and exits non-zero with
//!   `file:line` diagnostics on any violation.
//! * `effects` — the effect-map analyzer described in DESIGN.md §13: a
//!   method-level pass over the `World` handler call graph that
//!   classifies every `self.<field>` access into effect classes,
//!   enforces the parallel-safety rules (transmit choke point, forked
//!   RNG stream ownership, no handler-reachable unordered containers),
//!   and emits the committed `EFFECTS.json` the sharded runner will be
//!   built along (see [`effects`]).
//! * `horizon` — the latency-horizon analyzer described in DESIGN.md
//!   §14: proves every cross-node event flows through `World::transmit`
//!   with a delay bounded below by the link-latency floor, classifies
//!   every event variant as cross-node / shard-local / global against
//!   the `EFFECTS.json` partition, and commits `HORIZON.json` — the
//!   contract the sharded deterministic runner (`aria_core::shard`)
//!   loads and revalidates at runtime (see [`horizon`]).
//! * `explore` — bounded exhaustive exploration of the ARiA message
//!   state machine over every delivery ordering of a small world (see
//!   [`explore`] and `crates/model`).
//! * `probe` — run scenarios with the observability probe attached and
//!   inspect or diff the exported traces (see [`probe`] and
//!   `crates/probe`).
//! * `chaos` — randomized transport-fault schedules (loss, duplicates,
//!   jitter, partitions) under full invariant auditing plus a
//!   job-conservation oracle, shrinking any failing schedule to a
//!   minimal replayable fault list (see [`chaos`] and DESIGN.md §11).
//!
//! ```text
//! cargo xtask lint                  # gate the workspace
//! cargo xtask lint --self-check     # prove the gate still catches seeded violations
//! cargo xtask lint --list           # print the files the gate scans
//! cargo xtask effects               # regenerate EFFECTS.json + summary
//! cargo xtask effects --check       # diff regeneration against the committed map
//! cargo xtask effects --self-check  # prove the analyzer catches planted violations
//! cargo xtask effects --audit       # runtime tracer: observed ⊆ static on goldens
//! cargo xtask horizon               # regenerate HORIZON.json + summary
//! cargo xtask horizon --check       # diff regeneration against the committed contract
//! cargo xtask horizon --self-check  # prove the analyzer catches planted violations
//! cargo xtask explore --nodes 4     # enumerate a 4-node world's orderings
//! cargo xtask explore --self-check  # prove the checker still catches violations
//! cargo xtask probe run --scenario iMixed --scale 40 80 --out t.jsonl
//! cargo xtask probe diff a.jsonl b.jsonl
//! cargo xtask chaos --schedules 20  # randomized fault schedules, audited
//! cargo xtask chaos --self-check    # prove the shrinker on a planted violation
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod chaos;
mod effects;
mod explore;
mod horizon;
mod probe;
mod rules;
mod scan;
mod source;

use rules::Diagnostic;
use source::{crate_roots, sim_reachable_sources, workspace_root};
use std::path::Path;
use std::process::ExitCode;

/// Printed alongside a clean lint run so the exemption story stays
/// visible (the authoritative list lives in [`source::EXEMPT_CRATES`]).
const EXEMPT_NOTE: &str = "crates/bench, crates/xtask, crates/node and vendor/* are exempt \
                           from determinism rules (wall-clock timing and live I/O are their \
                           job; crates/node is the sole holder of the io-purity surface)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            if args.iter().any(|a| a == "--self-check") {
                self_check_gate()
            } else if args.iter().any(|a| a == "--list") {
                list_scanned(&workspace_root())
            } else {
                lint(&workspace_root())
            }
        }
        Some("effects") => effects::run(&args[1..]),
        Some("horizon") => horizon::run(&args[1..]),
        Some("explore") => explore::run(&args[1..]),
        Some("probe") => probe::run(&args[1..]),
        Some("chaos") => chaos::run(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask <lint [--self-check|--list] \
                 | effects [--check|--self-check|--audit] | horizon [--check|--self-check] \
                 | explore [flags] | probe <cmd> | chaos [flags]>"
            );
            ExitCode::FAILURE
        }
    }
}

/// Runs the full gate over the workspace at `root`.
fn lint(root: &Path) -> ExitCode {
    let mut diagnostics = Vec::new();
    let mut files = 0usize;

    // 1. Determinism rules over every sim-reachable source file.
    for source in sim_reachable_sources(root) {
        let rel = source.strip_prefix(root).unwrap_or(&source).display().to_string();
        let text = match std::fs::read_to_string(&source) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("xtask lint: cannot read {rel}: {err}");
                return ExitCode::FAILURE;
            }
        };
        files += 1;
        diagnostics.extend(rules::check_determinism(&rel, &text));
    }

    // 2. Mandatory hygiene attributes on every crate root (including the
    //    exempt crates: `forbid(unsafe_code)` is workspace-wide).
    let mut roots = 0usize;
    for crate_root in crate_roots(root) {
        let rel = crate_root.strip_prefix(root).unwrap_or(&crate_root).display().to_string();
        let text = std::fs::read_to_string(&crate_root).unwrap_or_default();
        roots += 1;
        diagnostics.extend(rules::check_crate_attrs(&rel, &text));
    }

    // 3. Crate-set coverage: every `crates/*` member must be either
    //    sim-reachable (scanned) or explicitly exempt — a new crate
    //    cannot silently land outside the gate.
    for member in source::workspace_crates(root) {
        if !source::SIM_REACHABLE_CRATES.contains(&member.as_str())
            && !source::EXEMPT_CRATES.contains(&member.as_str())
        {
            diagnostics.push(Diagnostic {
                path: format!("crates/{member}"),
                line: 0,
                rule: "crate-coverage",
                message: format!(
                    "crate `{member}` is neither sim-reachable nor exempt - categorize it in \
                     crates/xtask/src/source.rs"
                ),
            });
        }
    }

    report(&diagnostics);
    if diagnostics.is_empty() {
        println!(
            "xtask lint: clean — {files} sim-reachable files, {roots} crate roots checked \
             ({EXEMPT_NOTE})"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} violation(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

/// `lint --list` — prints every sim-reachable file the determinism
/// rules scan, one per line (workspace-relative). CI greps this to
/// assert that new crates (e.g. `crates/probe`) are inside the gate.
fn list_scanned(root: &Path) -> ExitCode {
    for source in sim_reachable_sources(root) {
        println!("{}", source.strip_prefix(root).unwrap_or(&source).display());
    }
    ExitCode::SUCCESS
}

fn report(diagnostics: &[Diagnostic]) {
    for d in diagnostics {
        eprintln!("{d}");
    }
}

/// Proves the gate still catches violations: runs the rule engine over
/// seeded-violation fixtures and fails if any rule has gone blind.
///
/// CI runs this next to the clean pass so a refactor of the lint itself
/// cannot silently disable a rule.
fn self_check_gate() -> ExitCode {
    // Each fixture seeds exactly one violation the named rule must catch.
    let seeded: &[(&str, &str)] = &[
        ("hash-collections", "use std::collections::HashMap;\n"),
        ("hash-collections", "let s: HashSet<u32> = HashSet::new();\n"),
        ("wall-clock", "let t = std::time::Instant::now();\n"),
        ("wall-clock", "let t = SystemTime::now();\n"),
        ("ambient-rng", "let mut rng = rand::thread_rng();\n"),
        ("thread-spawn", "let h = std::thread::spawn(move || work());\n"),
        ("thread-spawn", "let pool = ThreadPool::with_threads(8);\n"),
        ("io-purity", "use std::net::UdpSocket;\n"),
        ("io-purity", "let addr: SocketAddr = bind.parse().unwrap();\n"),
        ("io-purity", "tokio::spawn(async move { serve(listener).await });\n"),
        (
            "unordered-reduction",
            "// det:allow(hash-collections): seeded\nlet s: f64 = m.values().sum::<f64>(); let m: HashMap<u32, f64> = x;\n",
        ),
        ("float-ord", "costs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n"),
        ("float-ord", "nodes.sort_by_key(|n| n.load as f64 / n.capacity as f64);\n"),
        ("lossy-float-cast", "let n = (x * 2.0).round() as u64;\n"),
        ("lossy-float-cast", "let rank = (q * len as f64).ceil() as usize;\n"),
    ];
    let mut broken = 0;
    for (rule, fixture) in seeded {
        let diags = rules::check_determinism("<self-check>", fixture);
        if !diags.iter().any(|d| d.rule == *rule) {
            eprintln!("self-check: rule `{rule}` missed its seeded violation:\n{fixture}");
            broken += 1;
        }
    }
    // Allowlists must suppress — and only for the named rule.
    let allowed = "let m = HashMap::new(); // det:allow(hash-collections): fixture\n";
    if !rules::check_determinism("<self-check>", allowed).is_empty() {
        eprintln!("self-check: allow marker failed to suppress");
        broken += 1;
    }
    // Integer-only casts, integer sort keys and scoped worker threads
    // are fine: the float and spawn rules must not fire on them
    // (precision guard against over-matching).
    let clean = "let idx = (t.as_millis() / period.as_millis()) as usize;\n\
                 keyed.sort_by_key(|&(key, id)| (key, id));\n\
                 let wide = spec.min_memory_gb as u64 * GIB;\n\
                 std::thread::scope(|scope| { scope.spawn(move || drain(rx)); });\n";
    if !rules::check_determinism("<self-check>", clean).is_empty() {
        eprintln!("self-check: rules over-match integer-only or scoped-thread code");
        broken += 1;
    }
    // Line attribution must not drift past escaped char literals or
    // multiline string literals: a violation *after* them has to be
    // reported at its true line, and a violation *inside* a string must
    // not fire at all. (Regression fixture for the `'\\'` lexer bug that
    // left the scanner stuck in string mode.)
    let drift = "let sep = '\\\\';\nlet msg = \"multi\nline don't\nstring\";\nlet t = Instant::now();\n";
    let diags = rules::check_determinism("<self-check>", drift);
    if diags.len() != 1 || diags[0].rule != "wall-clock" || diags[0].line != 5 {
        eprintln!(
            "self-check: line attribution drifts past escaped literals / multiline strings \
             (want exactly one wall-clock violation at line 5, got {diags:?})"
        );
        broken += 1;
    }
    let raw = "let r = r#\"raw\nInstant::now()\nspan\"#;\nlet rng = rand::thread_rng();\n";
    let diags = rules::check_determinism("<self-check>", raw);
    if diags.len() != 1 || diags[0].rule != "ambient-rng" || diags[0].line != 4 {
        eprintln!(
            "self-check: raw-string contents leak into the scan or shift later lines \
             (want exactly one ambient-rng violation at line 4, got {diags:?})"
        );
        broken += 1;
    }
    // The attribute check must notice a bare crate root.
    if rules::check_crate_attrs("<self-check>", "pub fn f() {}\n").len()
        != rules::REQUIRED_CRATE_ATTRS.len()
    {
        eprintln!("self-check: crate-attrs rule missed a bare crate root");
        broken += 1;
    }
    if broken == 0 {
        println!("xtask lint --self-check: all rules catch their seeded violations");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
