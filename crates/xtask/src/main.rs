//! Workspace automation (`cargo xtask <command>`).
//!
//! Three commands:
//!
//! * `lint` — the determinism & protocol-hygiene gate described in
//!   DESIGN.md §8. It walks the sim-reachable sources with a
//!   dependency-free lexer (the build has no registry access, so no
//!   `syn`), applies the rules in [`rules`], checks every crate root for
//!   the mandatory hygiene attributes, and exits non-zero with
//!   `file:line` diagnostics on any violation.
//! * `explore` — bounded exhaustive exploration of the ARiA message
//!   state machine over every delivery ordering of a small world (see
//!   [`explore`] and `crates/model`).
//! * `probe` — run scenarios with the observability probe attached and
//!   inspect or diff the exported traces (see [`probe`] and
//!   `crates/probe`).
//! * `chaos` — randomized transport-fault schedules (loss, duplicates,
//!   jitter, partitions) under full invariant auditing plus a
//!   job-conservation oracle, shrinking any failing schedule to a
//!   minimal replayable fault list (see [`chaos`] and DESIGN.md §11).
//!
//! ```text
//! cargo xtask lint                  # gate the workspace
//! cargo xtask lint --self-check     # prove the gate still catches seeded violations
//! cargo xtask lint --list           # print the files the gate scans
//! cargo xtask explore --nodes 4     # enumerate a 4-node world's orderings
//! cargo xtask explore --self-check  # prove the checker still catches violations
//! cargo xtask probe run --scenario iMixed --scale 40 80 --out t.jsonl
//! cargo xtask probe diff a.jsonl b.jsonl
//! cargo xtask chaos --schedules 20  # randomized fault schedules, audited
//! cargo xtask chaos --self-check    # prove the shrinker on a planted violation
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod chaos;
mod explore;
mod probe;
mod rules;
mod scan;

use rules::Diagnostic;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose code runs inside (or builds the state of) the
/// discrete-event simulation: the determinism rules apply to their
/// sources, tests included.
const SIM_REACHABLE_CRATES: &[&str] = &[
    "sim", "overlay", "grid", "workload", "metrics", "jsdl", "trace", "core", "probe", "model",
    "scenarios",
];

/// Top-level directories compiled into sim-reachable test/example
/// targets (they live outside `crates/` but drive the same worlds).
const SIM_REACHABLE_DIRS: &[&str] = &["tests", "examples"];

/// Crates exempt from the determinism rules (but not from the attribute
/// check): `bench` times wall-clock throughput by design, `xtask` is
/// this tool, and `vendor/*` are offline stand-ins for external crates.
const EXEMPT_NOTE: &str = "crates/bench, crates/xtask and vendor/* are exempt from \
                           determinism rules (wall-clock timing is their job)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            if args.iter().any(|a| a == "--self-check") {
                self_check_gate()
            } else if args.iter().any(|a| a == "--list") {
                list_scanned(&workspace_root())
            } else {
                lint(&workspace_root())
            }
        }
        Some("explore") => explore::run(&args[1..]),
        Some("probe") => probe::run(&args[1..]),
        Some("chaos") => chaos::run(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask <lint [--self-check|--list] | explore [flags] | probe <cmd> \
                 | chaos [flags]>"
            );
            ExitCode::FAILURE
        }
    }
}

/// Locates the workspace root: the nearest ancestor of the current
/// directory (or of this crate's manifest) containing a top-level
/// `Cargo.toml` with a `[workspace]` table.
fn workspace_root() -> PathBuf {
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::current_dir().expect("current dir"));
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => panic!("no workspace root above {}", start.display()),
        }
    }
}

/// Runs the full gate over the workspace at `root`.
fn lint(root: &Path) -> ExitCode {
    let mut diagnostics = Vec::new();
    let mut files = 0usize;

    // 1. Determinism rules over every sim-reachable source file.
    for source in sim_reachable_sources(root) {
        let rel = source.strip_prefix(root).unwrap_or(&source).display().to_string();
        let text = match std::fs::read_to_string(&source) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("xtask lint: cannot read {rel}: {err}");
                return ExitCode::FAILURE;
            }
        };
        files += 1;
        diagnostics.extend(rules::check_determinism(&rel, &text));
    }

    // 2. Mandatory hygiene attributes on every crate root (including the
    //    exempt crates: `forbid(unsafe_code)` is workspace-wide).
    let mut roots = 0usize;
    for crate_root in crate_roots(root) {
        let rel = crate_root.strip_prefix(root).unwrap_or(&crate_root).display().to_string();
        let text = std::fs::read_to_string(&crate_root).unwrap_or_default();
        roots += 1;
        diagnostics.extend(rules::check_crate_attrs(&rel, &text));
    }

    report(&diagnostics);
    if diagnostics.is_empty() {
        println!(
            "xtask lint: clean — {files} sim-reachable files, {roots} crate roots checked \
             ({EXEMPT_NOTE})"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} violation(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

/// `lint --list` — prints every sim-reachable file the determinism
/// rules scan, one per line (workspace-relative). CI greps this to
/// assert that new crates (e.g. `crates/probe`) are inside the gate.
fn list_scanned(root: &Path) -> ExitCode {
    for source in sim_reachable_sources(root) {
        println!("{}", source.strip_prefix(root).unwrap_or(&source).display());
    }
    ExitCode::SUCCESS
}

fn report(diagnostics: &[Diagnostic]) {
    for d in diagnostics {
        eprintln!("{d}");
    }
}

/// Every `.rs` file the determinism rules apply to, in sorted order.
fn sim_reachable_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for name in SIM_REACHABLE_CRATES {
        collect_rs(&root.join("crates").join(name), &mut files);
    }
    for dir in SIM_REACHABLE_DIRS {
        collect_rs(&root.join(dir), &mut files);
    }
    files.sort();
    files
}

/// The crate-root source of every workspace member (crates/* and
/// vendor/*), in sorted order.
fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    for group in ["crates", "vendor"] {
        let Ok(entries) = std::fs::read_dir(root.join(group)) else { continue };
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            for candidate in [src.join("lib.rs"), src.join("main.rs")] {
                if candidate.is_file() {
                    roots.push(candidate);
                    break;
                }
            }
        }
    }
    roots.sort();
    roots
}

/// Recursively collects `.rs` files under `dir` (sorted traversal).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Proves the gate still catches violations: runs the rule engine over
/// seeded-violation fixtures and fails if any rule has gone blind.
///
/// CI runs this next to the clean pass so a refactor of the lint itself
/// cannot silently disable a rule.
fn self_check_gate() -> ExitCode {
    // Each fixture seeds exactly one violation the named rule must catch.
    let seeded: &[(&str, &str)] = &[
        ("hash-collections", "use std::collections::HashMap;\n"),
        ("hash-collections", "let s: HashSet<u32> = HashSet::new();\n"),
        ("wall-clock", "let t = std::time::Instant::now();\n"),
        ("wall-clock", "let t = SystemTime::now();\n"),
        ("ambient-rng", "let mut rng = rand::thread_rng();\n"),
        (
            "unordered-reduction",
            "// det:allow(hash-collections): seeded\nlet s: f64 = m.values().sum::<f64>(); let m: HashMap<u32, f64> = x;\n",
        ),
        ("float-ord", "costs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n"),
        ("float-ord", "nodes.sort_by_key(|n| n.load as f64 / n.capacity as f64);\n"),
        ("lossy-float-cast", "let n = (x * 2.0).round() as u64;\n"),
        ("lossy-float-cast", "let rank = (q * len as f64).ceil() as usize;\n"),
    ];
    let mut broken = 0;
    for (rule, fixture) in seeded {
        let diags = rules::check_determinism("<self-check>", fixture);
        if !diags.iter().any(|d| d.rule == *rule) {
            eprintln!("self-check: rule `{rule}` missed its seeded violation:\n{fixture}");
            broken += 1;
        }
    }
    // Allowlists must suppress — and only for the named rule.
    let allowed = "let m = HashMap::new(); // det:allow(hash-collections): fixture\n";
    if !rules::check_determinism("<self-check>", allowed).is_empty() {
        eprintln!("self-check: allow marker failed to suppress");
        broken += 1;
    }
    // Integer-only casts and integer sort keys are fine: the float rules
    // must not fire on them (precision guard against over-matching).
    let clean = "let idx = (t.as_millis() / period.as_millis()) as usize;\n\
                 keyed.sort_by_key(|&(key, id)| (key, id));\n\
                 let wide = spec.min_memory_gb as u64 * GIB;\n";
    if !rules::check_determinism("<self-check>", clean).is_empty() {
        eprintln!("self-check: float rules over-match integer-only code");
        broken += 1;
    }
    // The attribute check must notice a bare crate root.
    if rules::check_crate_attrs("<self-check>", "pub fn f() {}\n").len()
        != rules::REQUIRED_CRATE_ATTRS.len()
    {
        eprintln!("self-check: crate-attrs rule missed a bare crate root");
        broken += 1;
    }
    if broken == 0 {
        println!("xtask lint --self-check: all rules catch their seeded violations");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
