//! `cargo xtask explore` — bounded exhaustive exploration of the ARiA
//! message state machine (see `crates/model` and DESIGN.md §"Exhaustive
//! exploration").
//!
//! ```text
//! cargo xtask explore                          # default 3-node / 1-job world
//! cargo xtask explore --nodes 4 --depth 2000   # wider world, deeper bound
//! cargo xtask explore --drops 1 --dups 1       # with fault injection
//! cargo xtask explore --self-check             # prove violations are caught
//! ```
//!
//! Exit status is non-zero when a property is violated; the counterexample
//! is printed as a minimal replayable action trace.

use aria_model::{Explorer, ModelConfig, Property};
use std::process::ExitCode;

/// Parses the CLI flags and runs the exploration.
pub fn run(args: &[String]) -> ExitCode {
    let mut config = ModelConfig::default();
    let mut self_check = false;
    let mut workers = aria_sim::pool::default_budget() + 1;
    // `--trace-out PATH` takes a string value, so it is stripped before
    // the numeric-flag loop below.
    let mut args = args.to_vec();
    let mut trace_out: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--trace-out") {
        if pos + 1 >= args.len() {
            eprintln!("xtask explore: --trace-out needs a path");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
        trace_out = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut number = |what: &str| -> Result<u64, String> {
            iter.next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{flag} {what}: {e}"))
        };
        let parsed = match flag.as_str() {
            "--nodes" => number("nodes").map(|v| config.nodes = v as usize),
            "--jobs" => number("jobs").map(|v| config.jobs = v as usize),
            "--seed" => number("seed").map(|v| config.seed = v),
            "--depth" => number("depth").map(|v| config.max_depth = v as usize),
            "--states" => number("states").map(|v| config.max_states = v as usize),
            "--drops" => number("drops").map(|v| config.drops = v as u32),
            "--dups" => number("dups").map(|v| config.dups = v as u32),
            "--workers" => number("workers").map(|v| workers = (v as usize).max(1)),
            "--no-por" => {
                config.por = false;
                Ok(())
            }
            "--rescheduling" => {
                config.rescheduling = true;
                Ok(())
            }
            "--self-check" => {
                self_check = true;
                Ok(())
            }
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(message) = parsed {
            eprintln!("xtask explore: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    if self_check {
        return self_check_explorer(config, trace_out.as_deref(), workers);
    }
    explore(config, trace_out.as_deref(), workers)
}

const USAGE: &str = "usage: cargo xtask explore [--nodes N] [--jobs N] [--seed N] [--depth N] \
                     [--states N] [--drops N] [--dups N] [--workers N] [--no-por] \
                     [--rescheduling] [--self-check] [--trace-out PATH]";

/// Replays a counterexample with a probe attached and writes the
/// recording as `aria-probe` JSONL — the same schema scenario runs
/// export, so `cargo xtask probe timeline/summary/diff` work on checker
/// counterexamples too.
fn export_trace(explorer: &Explorer, trace: &[aria_model::ModelAction], path: &str) {
    let (trace, _) = explorer.replay_traced(trace);
    match std::fs::write(path, aria_probe::schema::to_jsonl(&trace)) {
        Ok(()) => eprintln!(
            "xtask explore: counterexample trace written to {path} ({} probe event(s))",
            trace.entries.len()
        ),
        Err(error) => eprintln!("xtask explore: cannot write {path}: {error}"),
    }
}

/// Runs one exploration and reports the counters (or the counterexample).
/// `run_parallel` is answer-identical to the serial search at any worker
/// count (pinned by the `aria-model` tests), so the fan-out changes only
/// the wall clock — never the counters or the counterexample.
fn explore(config: ModelConfig, trace_out: Option<&str>, workers: usize) -> ExitCode {
    // `workers` is deliberately absent from the report: exploration
    // output is byte-identical at every worker count, and CI diffs it.
    println!(
        "xtask explore: {} nodes, {} job(s), seed {}, depth ≤ {}, states ≤ {}, \
         drops {}, dups {}, por {}",
        config.nodes,
        config.jobs,
        config.seed,
        config.max_depth,
        config.max_states,
        config.drops,
        config.dups,
        if config.por { "on" } else { "off" },
    );
    let explorer = Explorer::new(config);
    let (stats, violation) = explorer.run_parallel(workers);
    println!(
        "xtask explore: {} state(s) visited, {} dedup hit(s), {} transition(s), \
         max depth {}, {} terminal state(s) ({} distinct)",
        stats.states,
        stats.dedup_hits,
        stats.transitions,
        stats.max_depth,
        stats.terminals,
        stats.terminal_fingerprints.len(),
    );
    if stats.truncated {
        println!("xtask explore: search TRUNCATED by the depth/state bounds (not exhaustive)");
    } else {
        println!("xtask explore: enumeration exhaustive within the fault budgets");
    }
    match violation {
        None => {
            println!("xtask explore: all properties hold");
            ExitCode::SUCCESS
        }
        Some(violation) => {
            eprintln!("{violation}");
            if let Some(path) = trace_out {
                export_trace(&explorer, &violation.trace, path);
            }
            ExitCode::FAILURE
        }
    }
}

/// Proves the checker still finds violations: explores under the
/// deliberately-false "no job ever starts" property, demands a
/// counterexample, and replays its trace to the same violation.
fn self_check_explorer(config: ModelConfig, trace_out: Option<&str>, workers: usize) -> ExitCode {
    let config = ModelConfig { property: Property::SelfCheckNoExecution, ..config };
    let explorer = Explorer::new(config);
    let (_, violation) = explorer.run_parallel(workers);
    let Some(violation) = violation else {
        eprintln!("explore --self-check: the deliberately-false property was NOT caught");
        return ExitCode::FAILURE;
    };
    let (_, replayed) = explorer.replay(&violation.trace);
    if replayed.as_deref() != Some(violation.message.as_str()) {
        eprintln!(
            "explore --self-check: the counterexample did not replay \
             (expected `{}`, replay said `{:?}`)",
            violation.message, replayed
        );
        return ExitCode::FAILURE;
    }
    println!(
        "xtask explore --self-check: seeded violation caught and replayed \
         ({} action(s)):",
        violation.trace.len()
    );
    print!("{violation}");
    if let Some(path) = trace_out {
        export_trace(&explorer, &violation.trace, path);
    }
    ExitCode::SUCCESS
}
