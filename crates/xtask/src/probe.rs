//! `cargo xtask probe` — run scenarios with the observability probe
//! attached and work with the exported traces (see `crates/probe` and
//! DESIGN.md §"Observability").
//!
//! ```text
//! cargo xtask probe run --scenario iMixed --seed 1 --scale 40 80 --out t.jsonl
//! cargo xtask probe timeline t.jsonl --job 3      # one job's event timeline
//! cargo xtask probe summary t.jsonl               # whole-trace counters
//! cargo xtask probe diff a.jsonl b.jsonl          # first divergent event
//! ```
//!
//! `diff` exits 0 when the two traces are identical event-for-event and
//! 1 at the first divergence (printed with sim-time and node), which
//! makes it usable directly as a determinism gate in CI.

use aria_probe::schema;
use aria_scenarios::{Runner, Scenario};
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask probe <run|timeline|summary|diff> ...
  run      --scenario NAME [--seed N] [--scale NODES JOBS] [--shards N] [--out PATH]
  timeline TRACE.jsonl [--job N]
  summary  TRACE.jsonl
  diff     LEFT.jsonl RIGHT.jsonl";

/// Dispatches the probe subcommands.
pub fn run(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("run") => run_scenario(&args[1..]),
        Some("timeline") => timeline(&args[1..]),
        Some("summary") => summary(&args[1..]),
        Some("diff") => diff(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("xtask probe: {message}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

/// Loads and schema-validates one trace file.
fn load(path: &str) -> Result<aria_probe::Trace, String> {
    let text =
        std::fs::read_to_string(path).map_err(|error| format!("cannot read {path}: {error}"))?;
    schema::from_jsonl(&text).map_err(|error| format!("{path}: {error}"))
}

/// `probe run` — executes one probed scenario run, writes the trace as
/// JSONL, and prints a BENCH_core.json-style stats block (wall time,
/// processed events, events/second) to stdout.
///
/// `--shards N` drives the world with the latency-horizon sharded
/// executor instead of the serial loop; the exported trace must be
/// `probe diff`-identical to the serial one (CI's sharded gate).
fn run_scenario(args: &[String]) -> ExitCode {
    let mut scenario = Scenario::IMixed;
    let mut seed = 1u64;
    let mut scale: Option<(usize, usize)> = None;
    let mut shards: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--scenario" => {
                let Some(name) = iter.next() else { return fail("--scenario needs a name") };
                match Scenario::from_name(name) {
                    Some(s) => scenario = s,
                    None => return fail(&format!("unknown scenario `{name}` (paper names, e.g. iMixed)")),
                }
            }
            "--seed" => {
                let Some(v) = iter.next() else { return fail("--seed needs a value") };
                match v.parse() {
                    Ok(v) => seed = v,
                    Err(error) => return fail(&format!("--seed {v}: {error}")),
                }
            }
            "--scale" => {
                let (Some(n), Some(j)) = (iter.next(), iter.next()) else {
                    return fail("--scale needs NODES and JOBS");
                };
                match (n.parse(), j.parse()) {
                    (Ok(n), Ok(j)) => scale = Some((n, j)),
                    _ => return fail(&format!("--scale {n} {j}: not integers")),
                }
            }
            "--shards" => {
                let Some(v) = iter.next() else { return fail("--shards needs a value") };
                match v.parse::<usize>() {
                    Ok(v) if v >= 1 => shards = Some(v),
                    Ok(_) => return fail("--shards needs at least 1"),
                    Err(error) => return fail(&format!("--shards {v}: {error}")),
                }
            }
            "--out" => {
                let Some(path) = iter.next() else { return fail("--out needs a path") };
                out = Some(path.clone());
            }
            other => return fail(&format!("unknown flag `{other}`")),
        }
    }
    let runner = match scale {
        Some((nodes, jobs)) => Runner::scaled(nodes, jobs),
        None => Runner::paper(),
    };
    let (stats, trace) = match shards {
        Some(shards) => runner.run_once_traced_sharded(scenario, seed, shards),
        None => runner.run_once_traced(scenario, seed),
    };
    if let Err(error) = schema::validate(&trace) {
        eprintln!("xtask probe run: exported trace fails its own schema: {error}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &out {
        if let Err(error) = std::fs::write(path, schema::to_jsonl(&trace)) {
            eprintln!("xtask probe run: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "xtask probe run: {} probe event(s) written to {path} ({} evicted by ring)",
            trace.entries.len(),
            trace.dropped
        );
    }
    // Same hand-rolled JSON style as crates/bench's BENCH_core.json, so
    // the two outputs are comparable side by side.
    println!("{{");
    println!("  \"scenario\": \"{}\",", trace.meta.scenario);
    println!("  \"seed\": {},", trace.meta.seed);
    println!("  \"nodes\": {},", trace.meta.nodes);
    println!("  \"jobs\": {},", trace.meta.jobs);
    println!("  \"wall_time_secs\": {:.6},", stats.wall_time_secs);
    println!("  \"events\": {},", stats.events);
    println!("  \"events_per_sec\": {:.0},", stats.events_per_sec());
    println!(
        "  \"trace\": {{\"entries\": {}, \"dropped\": {}}},",
        trace.entries.len(),
        trace.dropped
    );
    println!(
        "  \"fingerprint\": {{\"completed\": {}, \"messages\": {}, \"completion_mean_secs\": {:.3}}}",
        stats.completed,
        stats.traffic.total_messages(),
        stats.completion.mean()
    );
    println!("}}");
    ExitCode::SUCCESS
}

/// `probe timeline` — renders one job's lifecycle, or lists every job's
/// lifecycle summary when `--job` is omitted.
fn timeline(args: &[String]) -> ExitCode {
    let mut path: Option<&String> = None;
    let mut job: Option<u64> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--job" => {
                let Some(v) = iter.next() else { return fail("--job needs a value") };
                match v.parse() {
                    Ok(v) => job = Some(v),
                    Err(error) => return fail(&format!("--job {v}: {error}")),
                }
            }
            _ if path.is_none() => path = Some(arg),
            other => return fail(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(path) = path else { return fail("timeline needs a TRACE.jsonl path") };
    let trace = match load(path) {
        Ok(trace) => trace,
        Err(message) => return fail(&message),
    };
    match job {
        Some(id) => print!("{}", aria_probe::render_timeline(&trace, aria_grid::JobId::new(id))),
        None => {
            let lifecycles = aria_probe::lifecycles(&trace);
            println!("{} job(s) in {}:", lifecycles.len(), path);
            for (job, lc) in &lifecycles {
                println!(
                    "  {job}: {} assignment(s) ({} reschedule(s)), {} recovery(ies), {}",
                    lc.assignments,
                    lc.reschedules,
                    lc.recoveries,
                    if lc.completed {
                        "completed"
                    } else if lc.abandoned {
                        "abandoned"
                    } else if lc.lost {
                        "lost"
                    } else {
                        "in flight"
                    }
                );
            }
            println!("(re-run with --job N for one job's full event timeline)");
        }
    }
    ExitCode::SUCCESS
}

/// `probe summary` — whole-trace counters: events by kind, flood
/// fan-out, offers per request, queue-depth histogram, busiest node.
fn summary(args: &[String]) -> ExitCode {
    let [path] = args else { return fail("summary needs exactly one TRACE.jsonl path") };
    match load(path) {
        Ok(trace) => {
            println!("{} seed {} ({} nodes, {} jobs)", trace.meta.scenario, trace.meta.seed, trace.meta.nodes, trace.meta.jobs);
            print!("{}", aria_probe::summarize(&trace).render());
            ExitCode::SUCCESS
        }
        Err(message) => fail(&message),
    }
}

/// `probe diff` — exit 0 when the traces match event-for-event, exit 1
/// with the first divergent entry (sim-time, node, event) otherwise.
fn diff(args: &[String]) -> ExitCode {
    let [left_path, right_path] = args else {
        return fail("diff needs exactly two TRACE.jsonl paths");
    };
    let (left, right) = match (load(left_path), load(right_path)) {
        (Ok(l), Ok(r)) => (l, r),
        (Err(message), _) | (_, Err(message)) => return fail(&message),
    };
    match aria_probe::first_divergence(&left, &right) {
        None => {
            println!(
                "xtask probe diff: traces are identical ({} event(s) each)",
                left.entries.len()
            );
            ExitCode::SUCCESS
        }
        Some(divergence) => {
            println!(
                "xtask probe diff: {left_path} ({} events) vs {right_path} ({} events)",
                left.entries.len(),
                right.entries.len()
            );
            println!("{divergence}");
            ExitCode::FAILURE
        }
    }
}
