//! A minimal Rust source lexer for the determinism lint.
//!
//! The workspace builds with no registry access, so this is a
//! hand-rolled scan instead of a `syn` parse: it splits a source file
//! into per-line *code* and *comment* channels, blanking out string and
//! character literals along the way. That is exactly the fidelity the
//! lint rules need — patterns inside strings or comments must not fire,
//! and allowlist markers live in comments — without pulling in a parser.
//!
//! Handled: line comments, nested block comments, string literals,
//! raw strings (`r"…"`, `r#"…"#`, any hash depth), byte strings, char
//! literals (including `'\''` escapes) vs. lifetimes (`'a`), and
//! doc-comment forms of all of the above.

/// One physical source line, split into channels.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The line's code with comments removed and every string/char
    /// literal's contents replaced by spaces (delimiters kept).
    pub code: String,
    /// The concatenated text of comments on this line.
    pub comment: String,
}

/// Lexer state carried across lines.
enum Mode {
    Code,
    /// Inside `/* … */`, with nesting depth.
    Block(u32),
    /// Inside a regular `"…"` string.
    Str,
    /// Inside a raw string with the given `#` count.
    RawStr(u32),
}

/// Splits `source` into per-line code/comment channels.
pub fn split_channels(source: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut mode = Mode::Code;
    for (i, raw) in source.lines().enumerate() {
        let mut line = Line { number: i + 1, ..Line::default() };
        let bytes: Vec<char> = raw.chars().collect();
        let mut pos = 0;
        while pos < bytes.len() {
            match mode {
                Mode::Block(depth) => {
                    if bytes[pos] == '*' && bytes.get(pos + 1) == Some(&'/') {
                        mode = if depth == 1 { Mode::Code } else { Mode::Block(depth - 1) };
                        pos += 2;
                    } else if bytes[pos] == '/' && bytes.get(pos + 1) == Some(&'*') {
                        mode = Mode::Block(depth + 1);
                        pos += 2;
                    } else {
                        line.comment.push(bytes[pos]);
                        pos += 1;
                    }
                }
                Mode::Str => {
                    if bytes[pos] == '\\' {
                        line.code.push(' ');
                        if pos + 1 < bytes.len() {
                            line.code.push(' ');
                        }
                        pos += 2;
                    } else if bytes[pos] == '"' {
                        line.code.push('"');
                        mode = Mode::Code;
                        pos += 1;
                    } else {
                        line.code.push(' ');
                        pos += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if bytes[pos] == '"' && closes_raw(&bytes, pos, hashes) {
                        line.code.push('"');
                        for _ in 0..hashes {
                            line.code.push('#');
                        }
                        pos += 1 + hashes as usize;
                        mode = Mode::Code;
                    } else {
                        line.code.push(' ');
                        pos += 1;
                    }
                }
                Mode::Code => {
                    let c = bytes[pos];
                    if c == '/' && bytes.get(pos + 1) == Some(&'/') {
                        line.comment.extend(&bytes[pos + 2..]);
                        pos = bytes.len();
                    } else if c == '/' && bytes.get(pos + 1) == Some(&'*') {
                        mode = Mode::Block(1);
                        pos += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        mode = Mode::Str;
                        pos += 1;
                    } else if let Some(hashes) = raw_string_opening(&bytes, pos) {
                        // Emit the opener (`r##"`), then swallow contents.
                        for &o in &bytes[pos..pos + opener_len(&bytes, pos, hashes)] {
                            line.code.push(o);
                        }
                        pos += opener_len(&bytes, pos, hashes);
                        mode = Mode::RawStr(hashes);
                    } else if c == '\'' {
                        // Char literal vs lifetime: a lifetime is `'` +
                        // ident with no closing quote right after.
                        if let Some(end) = char_literal_end(&bytes, pos) {
                            line.code.push('\'');
                            for _ in pos + 1..end {
                                line.code.push(' ');
                            }
                            line.code.push('\'');
                            pos = end + 1;
                        } else {
                            line.code.push('\'');
                            pos += 1;
                        }
                    } else {
                        line.code.push(c);
                        pos += 1;
                    }
                }
            }
        }
        // A raw-string `\` does not escape the newline; a regular string
        // continued over a line break simply stays in Str mode.
        lines.push(line);
    }
    lines
}

/// Whether `bytes[pos..]` starts a raw (byte) string; returns the hash
/// count if so. `pos` must point at `r` or `b`.
fn raw_string_opening(bytes: &[char], pos: usize) -> Option<u32> {
    let mut p = pos;
    if bytes[p] == 'b' {
        p += 1;
    }
    if bytes.get(p) != Some(&'r') {
        return None;
    }
    // Don't mistake identifiers like `for r in …` → check the char
    // before is not alphanumeric/underscore.
    if pos > 0 {
        let prev = bytes[pos - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    p += 1;
    let mut hashes = 0;
    while bytes.get(p) == Some(&'#') {
        hashes += 1;
        p += 1;
    }
    if bytes.get(p) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Length of the raw-string opener starting at `pos` (`r"`, `br#"`, …).
fn opener_len(bytes: &[char], pos: usize, hashes: u32) -> usize {
    let b = usize::from(bytes[pos] == 'b');
    b + 1 + hashes as usize + 1
}

/// Whether the `"` at `pos` is followed by `hashes` `#`s.
fn closes_raw(bytes: &[char], pos: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|i| bytes.get(pos + i) == Some(&'#'))
}

/// If `bytes[pos]` (a `'`) opens a char literal, returns the index of
/// its closing quote; `None` for lifetimes.
///
/// Escapes are parsed precisely rather than "scan to the next quote":
/// the closing quote of `'\\'` is the very next character, and a sloppy
/// scan used to run past it, swallow an apostrophe later on the line
/// (even one inside a string literal) and leave the lexer in the wrong
/// mode for every following line — which is how lint spans drifted past
/// multiline strings. See `escaped_char_literals_close_precisely`.
fn char_literal_end(bytes: &[char], pos: usize) -> Option<usize> {
    let next = *bytes.get(pos + 1)?;
    if next == '\\' {
        // The escape body: `\x41` (two hex digits), `\u{…}` (braced
        // hex), or a single-character escape (`\n`, `\\`, `\'`, …).
        let close = match bytes.get(pos + 2)? {
            'x' => pos + 5,
            'u' => {
                if bytes.get(pos + 3) != Some(&'{') {
                    return None;
                }
                let mut p = pos + 4;
                while bytes.get(p).is_some_and(|c| *c != '}') {
                    p += 1;
                }
                p + 1
            }
            _ => pos + 3,
        };
        (bytes.get(close) == Some(&'\'')).then_some(close)
    } else if bytes.get(pos + 2) == Some(&'\'') && next != '\'' {
        Some(pos + 2)
    } else {
        None
    }
}

/// Whether `needle` occurs in `haystack` delimited by non-identifier
/// characters on both sides (a poor man's word-boundary match).
pub fn contains_word(haystack: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(found) = haystack[start..].find(needle) {
        let at = start + found;
        let before_ok = at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= haystack.len()
            || !haystack[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        split_channels(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped_into_the_comment_channel() {
        let lines = split_channels("let x = 1; // HashMap here\n");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert!(lines[0].comment.contains("HashMap"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let code = code_of(r#"let s = "HashMap::new()";"#);
        assert!(!code[0].contains("HashMap"), "{:?}", code[0]);
        assert!(code[0].starts_with("let s = \""));
    }

    #[test]
    fn raw_strings_are_blanked_across_lines() {
        let src = "let s = r#\"line one HashMap\nline two HashSet\"#;\nuse std::x;";
        let code = code_of(src);
        assert!(!code[0].contains("HashMap"));
        assert!(!code[1].contains("HashSet"));
        assert_eq!(code[2], "use std::x;");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\nHashMap\n*/ c";
        let lines = split_channels(src);
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert_eq!(lines[2].code, "");
        assert!(lines[2].comment.contains("HashMap"));
        assert_eq!(lines[3].code.trim(), "c");
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let code = code_of("fn f<'a>(x: &'a str) { let c = 'H'; let q = '\\''; }");
        assert!(code[0].contains("'a"), "{:?}", code[0]);
        assert!(!code[0].contains('H'), "{:?}", code[0]);
    }

    #[test]
    fn string_escapes_do_not_end_the_literal() {
        let code = code_of(r#"let s = "a\"HashMap\""; let t = 1;"#);
        assert!(!code[0].contains("HashMap"));
        assert!(code[0].contains("let t = 1;"));
    }

    #[test]
    fn escaped_char_literals_close_precisely() {
        // `'\\'` closes at the very next quote; the old scan ran past it
        // and matched the apostrophe inside the following string, eating
        // the string's opening `"` and corrupting every later line.
        let src = "let c = '\\\\'; let s = \"don't\";\nlet t = Instant::now();";
        let code = code_of(src);
        assert!(!code[0].contains("don"), "string contents must be blanked: {:?}", code[0]);
        assert!(
            code[1].contains("Instant::now()"),
            "line after the literal must stay in code mode: {:?}",
            code[1]
        );
        // `'\''` closes at the quote *after* the escaped quote.
        let code = code_of("let q = '\\''; let u = 1;");
        assert!(code[0].contains("let u = 1;"), "{:?}", code[0]);
        // Hex and unicode escape bodies are consumed exactly.
        let code = code_of("let a = '\\x41'; let b = '\\u{1F600}'; let v = 2;");
        assert!(code[0].contains("let v = 2;"), "{:?}", code[0]);
        assert!(!code[0].contains("x41"), "{:?}", code[0]);
        assert!(!code[0].contains("1F600"), "{:?}", code[0]);
    }

    #[test]
    fn line_numbers_do_not_drift_past_escaped_literals() {
        // Regression fixture for lint span attribution: a violation on a
        // known line *after* a tricky literal + multiline string must be
        // reported on its own line, not swallowed or shifted.
        let src = "let sep = '\\\\';\nlet s = \"multi\nline don't\nstring\";\nlet t = Instant::now();\n";
        let lines = split_channels(src);
        assert_eq!(lines[4].number, 5);
        assert!(
            lines[4].code.contains("Instant::now()"),
            "line 5 must be visible code: {:?}",
            lines[4].code
        );
        for mid in &lines[1..4] {
            assert!(!mid.code.contains("don"), "string body leaked into code: {:?}", mid.code);
        }
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("type MyHashMap = ();", "HashMap"));
        assert!(!contains_word("HashMapLike", "HashMap"));
        assert!(contains_word("HashMap<K, V>", "HashMap"));
        assert!(contains_word("Instant::now()", "Instant"));
        assert!(!contains_word("SimInstant", "Instant"));
    }
}
