//! `cargo xtask effects` — the effect-map analyzer: a static proof that
//! event handlers are state-isolated enough for a parallel runner.
//!
//! ```text
//! cargo xtask effects               # analyze + write EFFECTS.json
//! cargo xtask effects --check       # CI gate: clean tree AND committed map is current
//! cargo xtask effects --self-check  # planted violations must be caught
//! cargo xtask effects --audit       # runtime tracer: observed ⊆ static map
//! ```
//!
//! The analyzer walks the sim-reachable crates with the same lexer as the
//! determinism lint ([`crate::scan`]), builds the call graph of every
//! `World` event handler from the `match event { … }` dispatch, and
//! classifies each `self.<field>` access into a declared **effect class**
//! (per-node state, event queue, flood tables, RNG streams, metrics, …).
//! The result is committed as `EFFECTS.json`; `--check` regenerates and
//! byte-compares, so the map can never drift from the code.
//!
//! Three structural rules ride on the same pass:
//!
//! * **deliver-choke** — handler code may schedule [`Event::Deliver`]
//!   only inside `World::transmit` (the marked choke point). Everything
//!   a handler does to *another* node's state must flow through it.
//! * **fork-stream** — every `rng.fork(k)` uses an integer-literal
//!   stream id, and each `(file, stream)` pair is owned by exactly one
//!   function, so subsystems provably stay on their declared streams.
//! * **handler-collections** — hash-order collections are banned from
//!   handler-reachable code outright; unlike the lint, `det:allow` is
//!   **not** honored here (iteration order leaks into the schedule).
//!
//! Writes are **over-approximated**: an unrecognized method call on a
//! field chain counts as a write. That direction is what makes the
//! runtime half sound — `--audit` replays worlds under the
//! [`aria_core::EffectAudit`] tracer and asserts *observed ⊆ declared*.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::path::Path;
use std::process::ExitCode;

use crate::rules::{Diagnostic, HASH_PATTERNS};
use crate::scan::{contains_word, split_channels};
use crate::source::{self, skip_balanced, workspace_root};

/// Crates scanned for handler-reachable code: the simulation core and
/// the protocol/overlay/observability crates it dispatches into.
pub const EFFECTS_CRATES: &[&str] = &["core", "grid", "overlay", "probe", "sim"];

/// The file defining `struct World` and the handler dispatch.
const WORLD_FILE: &str = "crates/core/src/world.rs";

/// Repo-relative path of the committed map.
pub const EFFECTS_PATH: &str = "EFFECTS.json";

/// Comment marker escaping one effects rule at a statement:
/// `effects:allow(<rule>): reason`.
const ALLOW_MARKER: &str = "effects:allow(";

/// Comment marker that must sit on the one legitimate Deliver
/// scheduling site.
const CHOKE_MARKER: &str = "effects:choke-point(deliver)";

/// Every effect class, with the description exported to `EFFECTS.json`.
/// The first twelve are fingerprinted at runtime by
/// [`aria_core::EffectAudit`]; `probe` and `scratch` are statically
/// tracked but exempt from runtime hashing (see DESIGN.md §13).
const EFFECT_CLASSES: &[(&str, &str)] = &[
    ("accounting", "job-outcome counters and ledgers (abandoned, crashed, lost, recovered, processed)"),
    ("alive-index", "incremental index of alive nodes and the idle/queued tallies"),
    ("config", "world configuration, read-only after construction"),
    ("event-queue", "the global discrete-event queue"),
    ("fault", "fault-injection bookkeeping: active plan, sequence counter, open partitions, log"),
    ("flood-table", "per-request flood round and visited-set tables"),
    ("job-table", "dense job state table"),
    ("metrics", "metrics collector and time series"),
    ("node-state", "per-node protocol state - the parallel-runner partition unit"),
    ("probe", "observability sink; untracked at runtime, pinned by the probe goldens"),
    ("rng-fault", "fault-injection RNG stream"),
    ("rng-main", "protocol RNG stream"),
    ("scratch", "per-event scratch buffers, cleared before reuse; untracked at runtime"),
    ("topology", "overlay topology and the blatant latency model"),
];

/// `World` field → effect class. Sorted by field name (binary-searched).
/// Kept in lockstep with `World::effect_fingerprints` in
/// `crates/core/src/effects.rs`; the field-classes rule fails the gate
/// when this table and the struct definition drift apart.
const FIELD_CLASSES: &[(&str, &str)] = &[
    ("abandoned", "accounting"),
    ("alive", "alive-index"),
    ("bid_cache", "scratch"),
    ("blatant", "topology"),
    ("candidates", "scratch"),
    ("config", "config"),
    ("crashed", "accounting"),
    ("events", "event-queue"),
    ("fault_active", "fault"),
    ("fault_log", "fault"),
    ("fault_rng", "rng-fault"),
    ("fault_seq", "fault"),
    ("floods", "flood-table"),
    ("idle_alive", "alive-index"),
    ("jobs", "job-table"),
    ("lost", "accounting"),
    ("metrics", "metrics"),
    ("nodes", "node-state"),
    ("partitions_open", "fault"),
    ("picked", "scratch"),
    ("probe", "probe"),
    ("processed", "accounting"),
    ("queued_alive", "alive-index"),
    ("recovered", "accounting"),
    ("rng", "rng-main"),
    ("topology", "topology"),
];

/// Chain methods known not to mutate their receiver. Anything *not*
/// listed counts as a write — the sound direction for the runtime
/// subset check. Mutating names (`push`, `insert`, `take`, `get_mut`,
/// `schedule`, …) must never appear here.
const READ_METHODS: &[&str] = &[
    "actual_running_time", "all", "and_then", "any", "are_connected", "as_deref", "as_millis",
    "as_ref", "as_secs", "binary_search", "chain", "clamped_count", "clone", "cloned", "collect",
    "contains", "contains_key", "copied", "count", "degree", "entries", "enumerate", "expect",
    "filter", "filter_map", "find", "first", "flat_map", "flatten", "flood_latency", "fold",
    "free_ids", "get", "is_empty", "is_none", "is_some", "is_some_and", "iter", "keeps", "keys",
    "last", "latency", "len", "map", "max", "max_by_key", "min", "min_by_key", "neighbors",
    "nodes", "now", "ok", "peek", "peek_time", "pick_initiator", "pick_targets", "position",
    "raw", "reply_latency", "request_latency", "rev", "sample", "saturating_sub", "skip", "slot",
    "slots", "spec", "stats", "step_by", "sum", "take_while", "to_string", "unwrap", "unwrap_or",
    "unwrap_or_default", "unwrap_or_else", "values", "zip",
];

/// Rule catalog exported under `"rules"` in the JSON.
const RULE_DOCS: &[(&str, &str)] = &[
    ("choke-marker", "the world source must carry the effects:choke-point(deliver) marker on transmit"),
    ("deliver-choke", "handlers may schedule Event::Deliver only inside World::transmit"),
    ("effect-call", "every handler-reachable self-call must resolve to a known method"),
    ("effect-field", "every World field maps to exactly one declared effect class, and vice versa"),
    ("fork-stream", "every rng.fork(k) uses a literal stream id owned by exactly one fn per file"),
    ("handler-collections", "no hash-order collections in handler-reachable code; det:allow is not honored here"),
];

// ---------------------------------------------------------------------
// Source model
// ---------------------------------------------------------------------

/// One scanned file: the blanked code channel joined back into a single
/// string (offsets are stable), plus per-line comments for allow
/// markers. Unit-test modules are cut off — `#[cfg(test)] mod …` code
/// drives worlds, it does not define handler effects.
pub(crate) struct SourceFile {
    pub(crate) rel: String,
    pub(crate) code: String,
    /// Byte offset where each (0-based) line starts in `code`.
    line_starts: Vec<usize>,
    pub(crate) comments: Vec<String>,
}

impl SourceFile {
    pub(crate) fn parse(rel: &str, text: &str) -> SourceFile {
        let lines = split_channels(text);
        // Cut at `#[cfg(test)]` only when a `mod` follows within two
        // lines: `#[cfg(test)] pub fn helper()` mid-impl must survive.
        let mut cut = lines.len();
        for (i, line) in lines.iter().enumerate() {
            if line.code.contains("#[cfg(test)]")
                && lines[i..(i + 3).min(lines.len())].iter().any(|l| l.code.contains("mod "))
            {
                cut = i;
                break;
            }
        }
        let mut code = String::new();
        let mut line_starts = Vec::new();
        let mut comments = Vec::new();
        for line in &lines[..cut] {
            line_starts.push(code.len());
            code.push_str(&line.code);
            code.push('\n');
            comments.push(line.comment.clone());
        }
        SourceFile { rel: rel.to_string(), code, line_starts, comments }
    }

    /// 1-based line number of a byte offset in `code`.
    pub(crate) fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset).max(1)
    }

    /// Whether any comment on lines `[from_line-1 ..= to_line]`
    /// (1-based, clamped) carries `effects:allow(<rule>)`. The span is
    /// the whole statement plus one preceding line, so a multi-line
    /// justification above the statement still counts.
    pub(crate) fn allowed(&self, rule: &str, from_line: usize, to_line: usize) -> bool {
        let marker = format!("{ALLOW_MARKER}{rule})");
        let lo = from_line.saturating_sub(2); // 1-based -> 0-based, minus one extra line
        let hi = to_line.min(self.comments.len());
        self.comments[lo..hi].iter().any(|c| c.contains(&marker))
    }

    pub(crate) fn diag(&self, offset: usize, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic { path: self.rel.clone(), line: self.line_of(offset), rule, message }
    }
}

pub(crate) fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

pub(crate) fn skip_ws(bytes: &[u8], mut p: usize) -> usize {
    while p < bytes.len() && bytes[p].is_ascii_whitespace() {
        p += 1;
    }
    p
}

/// Whether the `len` bytes at `pos` sit on identifier boundaries.
fn word_at(bytes: &[u8], pos: usize, len: usize) -> bool {
    (pos == 0 || !is_ident(bytes[pos - 1]))
        && (pos + len >= bytes.len() || !is_ident(bytes[pos + len]))
}

/// All word-bounded occurrences of `needle` in `code[range]`.
pub(crate) fn find_words(code: &str, range: Range<usize>, needle: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut at = range.start;
    while let Some(found) = code[at..range.end].find(needle) {
        let pos = at + found;
        at = pos + needle.len();
        if word_at(bytes, pos, needle.len()) {
            out.push(pos);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Function and struct parsing
// ---------------------------------------------------------------------

/// A parsed `fn`: its name and the byte range of its `{ … }` body.
#[derive(Clone)]
pub(crate) struct FnItem {
    pub(crate) name: String,
    pub(crate) sig_start: usize,
    pub(crate) body: Range<usize>,
}

/// Finds every `fn` with a body (declarations are skipped). Generic
/// parameter lists are crossed with an angle-bracket depth scan that
/// ignores the `>` of `->` (so `fn f<F: Fn() -> bool>` parses).
pub(crate) fn parse_fns(code: &str) -> Vec<FnItem> {
    let bytes = code.as_bytes();
    let mut fns = Vec::new();
    for pos in find_words(code, 0..code.len(), "fn") {
        let mut p = skip_ws(bytes, pos + 2);
        let name_start = p;
        while p < bytes.len() && is_ident(bytes[p]) {
            p += 1;
        }
        if p == name_start {
            continue;
        }
        let name = code[name_start..p].to_string();
        p = skip_ws(bytes, p);
        if p < bytes.len() && bytes[p] == b'<' {
            let mut depth = 0i32;
            while p < bytes.len() {
                match bytes[p] {
                    b'<' => depth += 1,
                    b'>' if p > 0 && bytes[p - 1] == b'-' => {}
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            p += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                p += 1;
            }
        }
        while p < bytes.len() && bytes[p] != b'(' && bytes[p] != b'{' && bytes[p] != b';' {
            p += 1;
        }
        if p >= bytes.len() || bytes[p] != b'(' {
            continue;
        }
        p = skip_balanced(bytes, p);
        while p < bytes.len() && bytes[p] != b'{' && bytes[p] != b';' {
            p += 1;
        }
        if p >= bytes.len() || bytes[p] == b';' {
            continue;
        }
        let end = skip_balanced(bytes, p);
        fns.push(FnItem { name, sig_start: pos, body: p..end });
    }
    fns
}

/// The innermost function containing `offset`.
pub(crate) fn enclosing_fn(fns: &[FnItem], offset: usize) -> Option<&FnItem> {
    fns.iter()
        .filter(|f| f.sig_start <= offset && offset < f.body.end)
        .min_by_key(|f| f.body.end - f.sig_start)
}

/// The field names of `struct World { … }` (line-shaped: `name: Type,`
/// with optional visibility, attribute lines skipped).
fn parse_world_fields(file: &SourceFile) -> Vec<String> {
    let code = &file.code;
    let bytes = code.as_bytes();
    let mut fields = Vec::new();
    let Some(pos) = find_words(code, 0..code.len(), "struct World").first().copied() else {
        return fields;
    };
    let Some(open) = code[pos..].find('{').map(|o| pos + o) else { return fields };
    let end = skip_balanced(bytes, open);
    for line in code[open + 1..end.saturating_sub(1)].lines() {
        let t = line.trim_start();
        if t.starts_with('#') {
            continue;
        }
        let t = t.strip_prefix("pub(crate) ").or_else(|| t.strip_prefix("pub ")).unwrap_or(t);
        let ident: String =
            t.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if !ident.is_empty() && t[ident.len()..].trim_start().starts_with(':') {
            fields.push(ident);
        }
    }
    fields
}

// ---------------------------------------------------------------------
// Effect classification
// ---------------------------------------------------------------------

/// Effects of one code range: classes read, classes written, and
/// `self.method(…)` call edges.
#[derive(Default, Clone)]
struct Effects {
    reads: BTreeSet<String>,
    writes: BTreeSet<String>,
    calls: BTreeSet<String>,
}

/// Classifies every `self.…` access in `range`. Field accesses map to
/// their effect class (read or write, see [`classify_chain`]); calls to
/// other methods become edges; an unknown field is an `effect-field`
/// diagnostic.
fn analyze_range(
    file: &SourceFile,
    range: Range<usize>,
    field_classes: &[(&str, &str)],
    diags: &mut Vec<Diagnostic>,
) -> Effects {
    let code = &file.code;
    let bytes = code.as_bytes();
    let mut fx = Effects::default();
    for pos in find_words(code, range.clone(), "self") {
        let p = skip_ws(bytes, pos + 4);
        if p >= bytes.len() || bytes[p] != b'.' {
            continue;
        }
        let p = skip_ws(bytes, p + 1);
        let ident_start = p;
        let mut q = p;
        while q < bytes.len() && is_ident(bytes[q]) {
            q += 1;
        }
        if q == ident_start {
            continue;
        }
        let ident = &code[ident_start..q];
        if let Ok(i) = field_classes.binary_search_by(|(f, _)| (*f).cmp(ident)) {
            let class = field_classes[i].1;
            if classify_chain(code, pos, q, class) {
                fx.writes.insert(class.to_string());
            } else {
                fx.reads.insert(class.to_string());
            }
        } else if bytes.get(skip_ws(bytes, q)) == Some(&b'(') {
            fx.calls.insert(ident.to_string());
        } else {
            diags.push(file.diag(
                pos,
                "effect-field",
                format!("`self.{ident}` does not match any declared World field - update FIELD_CLASSES (crates/xtask/src/effects.rs) and the runtime fingerprints"),
            ));
        }
    }
    // `Self::helper(…)` — associated calls carry no receiver but may
    // still be handler-reachable code worth analyzing.
    for pos in find_words(code, range, "Self") {
        if !code[pos + 4..].starts_with("::") {
            continue;
        }
        let s = pos + 6;
        let mut q = s;
        while q < bytes.len() && is_ident(bytes[q]) {
            q += 1;
        }
        if q > s && bytes.get(skip_ws(bytes, q)) == Some(&b'(') {
            fx.calls.insert(code[s..q].to_string());
        }
    }
    fx
}

/// Walks the access chain starting after the field ident at `chain` and
/// decides write vs read. Writes are over-approximated: an assignment
/// operator after the chain, a `&mut` borrow of it, or any chain method
/// **not** in [`READ_METHODS`] all count. RNG fields are always writes
/// (every useful method on a stream advances it).
fn classify_chain(code: &str, self_pos: usize, mut p: usize, class: &str) -> bool {
    if class.starts_with("rng-") {
        return true;
    }
    let bytes = code.as_bytes();
    if code[..self_pos].trim_end().ends_with("&mut") {
        return true;
    }
    loop {
        if p >= bytes.len() {
            break;
        }
        match bytes[p] {
            b'[' => p = skip_balanced(bytes, p),
            b'?' => p += 1,
            b'.' => {
                let s = skip_ws(bytes, p + 1);
                let mut q = s;
                while q < bytes.len() && is_ident(bytes[q]) {
                    q += 1;
                }
                if q == s {
                    break;
                }
                let name = &code[s..q];
                if name.bytes().all(|b| b.is_ascii_digit()) {
                    p = q; // tuple index — keep walking the chain
                    continue;
                }
                let r = skip_ws(bytes, q);
                if r < bytes.len() && bytes[r] == b'(' {
                    if !READ_METHODS.contains(&name) {
                        return true;
                    }
                    p = skip_balanced(bytes, r);
                } else {
                    p = q; // plain subfield
                }
            }
            _ => break,
        }
    }
    // Assignment operators after the chain: `=` (but not `==`/`=>`),
    // compound `+= -= *= /= %= ^= |= &=`, shifts `<<=`/`>>=`. Plain
    // comparisons (`<= >= == && ||`) never match.
    let t = skip_ws(bytes, p);
    match bytes.get(t) {
        Some(b'=') => !matches!(bytes.get(t + 1), Some(b'=') | Some(b'>')),
        Some(b'+') | Some(b'-') | Some(b'*') | Some(b'/') | Some(b'%') | Some(b'^')
        | Some(b'|') | Some(b'&') => bytes.get(t + 1) == Some(&b'='),
        Some(b'<') => bytes.get(t + 1) == Some(&b'<') && bytes.get(t + 2) == Some(&b'='),
        Some(b'>') => bytes.get(t + 1) == Some(&b'>') && bytes.get(t + 2) == Some(&b'='),
        _ => false,
    }
}

/// `CamelCase` → `kebab-case`, matching `aria_core::effects::handler_name`.
pub(crate) fn kebab(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Handler extraction
// ---------------------------------------------------------------------

/// One `Event::Variant => …` arm of the dispatch match.
struct Arm {
    variant: String,
    body: Range<usize>,
}

/// Parses the arms of the `match event { … }` inside `fn handle`.
/// Occurrences of `Event::…` *inside* arm bodies are skipped by jumping
/// the scan past each parsed body.
fn parse_handle_arms(file: &SourceFile, handle: &FnItem) -> Vec<Arm> {
    let code = &file.code;
    let bytes = code.as_bytes();
    let Some(m) = find_words(code, handle.body.clone(), "match").first().copied() else {
        return Vec::new();
    };
    let Some(open) = code[m..handle.body.end].find('{').map(|o| m + o) else { return Vec::new() };
    let interior = (open + 1)..skip_balanced(bytes, open).saturating_sub(1);
    let mut arms = Vec::new();
    let mut at = interior.start;
    while let Some(found) = code[at..interior.end].find("Event::") {
        let pos = at + found;
        at = pos + 7;
        if pos > 0 && is_ident(bytes[pos - 1]) {
            continue;
        }
        let vs = pos + 7;
        let mut p = vs;
        while p < bytes.len() && is_ident(bytes[p]) {
            p += 1;
        }
        if p == vs {
            continue;
        }
        let variant = code[vs..p].to_string();
        p = skip_ws(bytes, p);
        if p < interior.end && (bytes[p] == b'{' || bytes[p] == b'(') {
            p = skip_balanced(bytes, p); // destructured payload
            p = skip_ws(bytes, p);
        }
        if !code[p..].starts_with("=>") {
            continue; // an `Event::…` expression, not an arm pattern
        }
        p = skip_ws(bytes, p + 2);
        let body = if bytes.get(p) == Some(&b'{') {
            let e = skip_balanced(bytes, p);
            (p + 1)..e.saturating_sub(1)
        } else {
            let mut q = p;
            let mut depth = 0i32;
            while q < interior.end {
                match bytes[q] {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' | b'}' => depth -= 1,
                    b',' if depth == 0 => break,
                    _ => {}
                }
                q += 1;
            }
            p..q
        };
        at = body.end;
        arms.push(Arm { variant, body });
    }
    arms
}

/// The entry call of an arm: `self.deliver(to, msg)` → `deliver`;
/// anything else is `inline`.
fn entry_of(code: &str, body: &Range<usize>) -> String {
    let text = code[body.clone()].trim_start();
    if let Some(rest) = text.strip_prefix("self.") {
        let ident: String =
            rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if !ident.is_empty() && rest[ident.len()..].starts_with('(') {
            return ident;
        }
    }
    "inline".to_string()
}

/// One handler's transitive effect summary.
pub struct Handler {
    entry: String,
    methods: BTreeSet<String>,
    reads: BTreeSet<String>,
    pub writes: BTreeSet<String>,
}

/// An RNG stream ownership record.
struct RngStream {
    file: String,
    func: String,
    stream: u64,
    line: usize,
}

/// The full analysis result.
pub struct Analysis {
    pub diagnostics: Vec<Diagnostic>,
    pub handlers: BTreeMap<String, Handler>,
    streams: Vec<RngStream>,
    pub json: String,
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

/// **deliver-choke**: any statement containing both `schedule` and a
/// word-bounded `Event::Deliver` must sit inside the world file's
/// `transmit` (or carry an `effects:allow(deliver-choke)` comment).
fn check_deliver_choke(
    file: &SourceFile,
    fns: &[FnItem],
    is_world: bool,
    diags: &mut Vec<Diagnostic>,
) {
    let code = &file.code;
    let bytes = code.as_bytes();
    for pos in find_words(code, 0..code.len(), "Event::Deliver") {
        let mut s = pos;
        while s > 0 && !matches!(bytes[s - 1], b';' | b'{' | b'}') {
            s -= 1;
        }
        if !contains_word(&code[s..pos], "schedule") {
            continue;
        }
        if is_world && enclosing_fn(fns, pos).is_some_and(|f| f.name == "transmit") {
            continue;
        }
        if file.allowed("deliver-choke", file.line_of(s), file.line_of(pos)) {
            continue;
        }
        diags.push(file.diag(
            pos,
            "deliver-choke",
            "Event::Deliver scheduled outside World::transmit - handlers must route every \
             remote-state write through the transmit choke point"
                .to_string(),
        ));
    }
}

/// **fork-stream** (part 1): every `.fork(arg)` must pass an integer
/// literal; literal sites are recorded for the ownership post-pass.
fn check_forks(
    file: &SourceFile,
    fns: &[FnItem],
    streams: &mut Vec<RngStream>,
    diags: &mut Vec<Diagnostic>,
) {
    let code = &file.code;
    let bytes = code.as_bytes();
    let mut at = 0;
    while let Some(found) = code[at..].find(".fork(") {
        let pos = at + found;
        at = pos + 6;
        let open = pos + 5;
        let end = skip_balanced(bytes, open);
        let arg = code[open + 1..end.saturating_sub(1)].trim();
        if arg.is_empty() || !arg.bytes().all(|b| b.is_ascii_digit() || b == b'_') {
            if !file.allowed("fork-stream", file.line_of(pos), file.line_of(pos)) {
                diags.push(file.diag(
                    pos,
                    "fork-stream",
                    format!(
                        "rng fork with non-literal stream id `{arg}` - stream ids must be \
                         integer literals so stream ownership is statically provable"
                    ),
                ));
            }
            continue;
        }
        let stream: u64 = arg.replace('_', "").parse().unwrap_or(u64::MAX);
        let func =
            enclosing_fn(fns, pos).map_or_else(|| "<top>".to_string(), |f| f.name.clone());
        streams.push(RngStream { file: file.rel.clone(), func, stream, line: file.line_of(pos) });
    }
}

/// **fork-stream** (part 2): each `(file, stream)` pair must be forked
/// from exactly one function.
fn check_stream_ownership(streams: &[RngStream], diags: &mut Vec<Diagnostic>) {
    let mut owners: BTreeMap<(&str, u64), BTreeSet<&str>> = BTreeMap::new();
    for s in streams {
        owners.entry((&s.file, s.stream)).or_default().insert(&s.func);
    }
    for s in streams {
        let fns = &owners[&(s.file.as_str(), s.stream)];
        if fns.len() > 1 {
            let list: Vec<&str> = fns.iter().copied().collect();
            diags.push(Diagnostic {
                path: s.file.clone(),
                line: s.line,
                rule: "fork-stream",
                message: format!(
                    "rng stream {} is forked from multiple fns ({}) - each stream id must \
                     have exactly one owner per file",
                    s.stream,
                    list.join(", ")
                ),
            });
        }
    }
}

/// **handler-collections**: hash-order collections in handler-reachable
/// ranges. `det:allow` escapes the global lint, not this rule.
fn check_handler_collections(
    file: &SourceFile,
    ranges: &[Range<usize>],
    diags: &mut Vec<Diagnostic>,
) {
    let mut seen = BTreeSet::new();
    for range in ranges {
        for pat in HASH_PATTERNS {
            for pos in find_words(&file.code, range.clone(), pat) {
                let line = file.line_of(pos);
                if seen.insert((line, *pat)) {
                    diags.push(file.diag(
                        pos,
                        "handler-collections",
                        format!(
                            "`{pat}` in handler-reachable code - hash iteration order leaks \
                             into the event schedule; det:allow is not honored here"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The analysis driver
// ---------------------------------------------------------------------

/// Runs the whole static pass over in-memory `(rel_path, text)` pairs.
/// `world_rel` names the file holding `struct World` + `fn handle`;
/// `field_classes` must be sorted by field name.
pub fn analyze_sources(
    files: &[(String, String)],
    world_rel: &str,
    field_classes: &[(&str, &str)],
) -> Analysis {
    let mut diags = Vec::new();
    let mut streams = Vec::new();
    let mut handlers = BTreeMap::new();
    let mut choke_ok = false;
    for (rel, text) in files {
        let file = SourceFile::parse(rel, text);
        let fns = parse_fns(&file.code);
        let is_world = rel == world_rel;
        check_deliver_choke(&file, &fns, is_world, &mut diags);
        check_forks(&file, &fns, &mut streams, &mut diags);
        if !is_world {
            continue;
        }
        // choke-marker: the annotated transmit must exist.
        let has_marker = file.comments.iter().any(|c| c.contains(CHOKE_MARKER));
        let has_transmit = fns.iter().any(|f| f.name == "transmit");
        choke_ok = has_marker && has_transmit;
        if !choke_ok {
            diags.push(Diagnostic {
                path: rel.clone(),
                line: 0,
                rule: "choke-marker",
                message: format!(
                    "the world source must define `fn transmit` carrying a `{CHOKE_MARKER}` \
                     marker comment"
                ),
            });
        }
        // field-classes: the struct and the class table must agree.
        let parsed = parse_world_fields(&file);
        for field in &parsed {
            if field_classes.binary_search_by(|(f, _)| (*f).cmp(field)).is_err() {
                diags.push(Diagnostic {
                    path: rel.clone(),
                    line: 0,
                    rule: "effect-field",
                    message: format!(
                        "World field `{field}` has no effect class - add it to FIELD_CLASSES \
                         and to the runtime fingerprints (crates/core/src/effects.rs)"
                    ),
                });
            }
        }
        for (field, _) in field_classes {
            if !parsed.iter().any(|f| f == field) {
                diags.push(Diagnostic {
                    path: rel.clone(),
                    line: 0,
                    rule: "effect-field",
                    message: format!(
                        "FIELD_CLASSES declares `{field}` but struct World has no such field"
                    ),
                });
            }
        }
        // Handler call graph + transitive effect closure.
        let fn_map: BTreeMap<&str, &FnItem> =
            fns.iter().rev().map(|f| (f.name.as_str(), f)).collect();
        let Some(handle) = fn_map.get("handle") else {
            diags.push(Diagnostic {
                path: rel.clone(),
                line: 0,
                rule: "effect-call",
                message: "no `fn handle` dispatch found in the world source".to_string(),
            });
            continue;
        };
        let arms = parse_handle_arms(&file, handle);
        let mut cache: BTreeMap<String, Effects> = BTreeMap::new();
        let mut reachable: Vec<Range<usize>> = arms.iter().map(|a| a.body.clone()).collect();
        for arm in &arms {
            let mut fx = analyze_range(&file, arm.body.clone(), field_classes, &mut diags);
            let mut seen: BTreeSet<String> = BTreeSet::new();
            let mut work: Vec<String> = fx.calls.iter().cloned().collect();
            while let Some(name) = work.pop() {
                if !seen.insert(name.clone()) {
                    continue;
                }
                if !cache.contains_key(&name) {
                    let sub = match fn_map.get(name.as_str()) {
                        Some(f) => {
                            reachable.push(f.body.clone());
                            analyze_range(&file, f.body.clone(), field_classes, &mut diags)
                        }
                        None => {
                            diags.push(Diagnostic {
                                path: rel.clone(),
                                line: 0,
                                rule: "effect-call",
                                message: format!(
                                    "handler-reachable call `self.{name}(..)` does not resolve \
                                     to a method in {rel}"
                                ),
                            });
                            Effects::default()
                        }
                    };
                    cache.insert(name.clone(), sub);
                }
                let sub = cache[&name].clone();
                fx.reads.extend(sub.reads);
                fx.writes.extend(sub.writes);
                work.extend(sub.calls.into_iter().filter(|c| !seen.contains(c)));
            }
            let reads: BTreeSet<String> = fx.reads.difference(&fx.writes).cloned().collect();
            handlers.insert(
                kebab(&arm.variant),
                Handler {
                    entry: entry_of(&file.code, &arm.body),
                    methods: seen,
                    reads,
                    writes: fx.writes,
                },
            );
        }
        reachable.sort_by_key(|r| r.start);
        reachable.dedup_by_key(|r| r.start);
        check_handler_collections(&file, &reachable, &mut diags);
    }
    check_stream_ownership(&streams, &mut diags);
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    streams.sort_by(|a, b| (&a.file, a.stream, &a.func).cmp(&(&b.file, b.stream, &b.func)));
    let json = render_json(&handlers, &streams, choke_ok, world_rel);
    Analysis { diagnostics: diags, handlers, streams, json }
}

/// Loads and analyzes the real tree under `root`.
pub fn analyze(root: &Path) -> Analysis {
    let mut files = Vec::new();
    for name in EFFECTS_CRATES {
        for path in source::crate_sources(root, name) {
            let rel =
                path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let text = std::fs::read_to_string(&path).unwrap_or_default();
            files.push((rel, text));
        }
    }
    analyze_sources(&files, WORLD_FILE, FIELD_CLASSES)
}

// ---------------------------------------------------------------------
// Deterministic JSON rendering
// ---------------------------------------------------------------------

fn push_list(out: &mut String, indent: &str, items: &BTreeSet<String>) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = indent; // items are short; keep them on one line
        out.push('"');
        out.push_str(item);
        out.push('"');
    }
    out.push(']');
}

/// Renders the committed map. Pure function of the analysis → `--check`
/// can byte-compare; no line numbers or timestamps appear.
fn render_json(
    handlers: &BTreeMap<String, Handler>,
    streams: &[RngStream],
    choke_ok: bool,
    world_rel: &str,
) -> String {
    let mut o = String::new();
    o.push_str("{\n  \"schema\": \"aria-effects\",\n  \"version\": 1,\n  \"crates\": [");
    for (i, c) in EFFECTS_CRATES.iter().enumerate() {
        if i > 0 {
            o.push_str(", ");
        }
        o.push_str(&format!("\"{c}\""));
    }
    o.push_str("],\n  \"effect_classes\": {\n");
    for (i, (name, desc)) in EFFECT_CLASSES.iter().enumerate() {
        let comma = if i + 1 < EFFECT_CLASSES.len() { "," } else { "" };
        o.push_str(&format!("    \"{name}\": \"{desc}\"{comma}\n"));
    }
    o.push_str("  },\n  \"field_classes\": {\n");
    for (i, (field, class)) in FIELD_CLASSES.iter().enumerate() {
        let comma = if i + 1 < FIELD_CLASSES.len() { "," } else { "" };
        o.push_str(&format!("    \"{field}\": \"{class}\"{comma}\n"));
    }
    o.push_str("  },\n  \"rng_streams\": [\n");
    for (i, s) in streams.iter().enumerate() {
        let comma = if i + 1 < streams.len() { "," } else { "" };
        o.push_str(&format!(
            "    {{\"file\": \"{}\", \"fn\": \"{}\", \"stream\": {}}}{comma}\n",
            s.file, s.func, s.stream
        ));
    }
    o.push_str("  ],\n  \"choke_points\": {");
    if choke_ok {
        o.push_str(&format!("\n    \"deliver\": \"{world_rel}::transmit\"\n  "));
    }
    o.push_str("},\n  \"handlers\": {\n");
    for (i, (name, h)) in handlers.iter().enumerate() {
        o.push_str(&format!("    \"{name}\": {{\n      \"entry\": \"{}\",\n", h.entry));
        o.push_str("      \"methods\": ");
        push_list(&mut o, "      ", &h.methods);
        o.push_str(",\n      \"reads\": ");
        push_list(&mut o, "      ", &h.reads);
        o.push_str(",\n      \"writes\": ");
        push_list(&mut o, "      ", &h.writes);
        let comma = if i + 1 < handlers.len() { "," } else { "" };
        o.push_str(&format!("\n    }}{comma}\n"));
    }
    o.push_str("  },\n  \"rules\": {\n");
    for (i, (name, desc)) in RULE_DOCS.iter().enumerate() {
        let comma = if i + 1 < RULE_DOCS.len() { "," } else { "" };
        o.push_str(&format!("    \"{name}\": \"{desc}\"{comma}\n"));
    }
    o.push_str("  }\n}\n");
    o
}

// ---------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------

const USAGE: &str = "usage: cargo xtask effects [--check | --self-check | --audit [--out PATH]]";

/// Entry point for `cargo xtask effects`.
pub fn run(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        None => generate(false),
        Some("--check") => generate(true),
        Some("--self-check") => match self_check_cases() {
            Ok(()) => {
                println!("effects --self-check: every planted violation was caught");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("effects --self-check: {message}");
                ExitCode::FAILURE
            }
        },
        Some("--audit") => {
            let out = match args.get(1).map(String::as_str) {
                Some("--out") => match args.get(2) {
                    Some(path) => Some(path.as_str()),
                    None => {
                        eprintln!("xtask effects: --out needs a path\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                },
                Some(other) => {
                    eprintln!("xtask effects: unknown flag `{other}`\n{USAGE}");
                    return ExitCode::FAILURE;
                }
                None => None,
            };
            audit(out)
        }
        Some(other) => {
            eprintln!("xtask effects: unknown flag `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Default mode writes `EFFECTS.json`; `--check` regenerates and
/// byte-compares against the committed map.
fn generate(check: bool) -> ExitCode {
    let root = workspace_root();
    let analysis = analyze(&root);
    if !analysis.diagnostics.is_empty() {
        for d in &analysis.diagnostics {
            eprintln!("{d}");
        }
        eprintln!("xtask effects: {} violation(s)", analysis.diagnostics.len());
        return ExitCode::FAILURE;
    }
    let summary = format!(
        "{} handler(s), {} effect class(es), {} rng stream(s)",
        analysis.handlers.len(),
        EFFECT_CLASSES.len(),
        analysis.streams.len()
    );
    let path = root.join(EFFECTS_PATH);
    if check {
        let committed = std::fs::read_to_string(&path).unwrap_or_default();
        if committed == analysis.json {
            println!("xtask effects --check: clean tree, {EFFECTS_PATH} is current ({summary})");
            return ExitCode::SUCCESS;
        }
        for (i, (a, b)) in committed.lines().zip(analysis.json.lines()).enumerate() {
            if a != b {
                eprintln!("xtask effects: {EFFECTS_PATH} line {}:", i + 1);
                eprintln!("  committed: {a}");
                eprintln!("  current:   {b}");
                break;
            }
        }
        eprintln!(
            "xtask effects: {EFFECTS_PATH} is stale - regenerate with `cargo xtask effects` \
             and commit the result"
        );
        ExitCode::FAILURE
    } else {
        if let Err(error) = std::fs::write(&path, &analysis.json) {
            eprintln!("xtask effects: cannot write {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask effects: wrote {EFFECTS_PATH} ({summary})");
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------
// Self-check fixtures
// ---------------------------------------------------------------------

/// Field table for the fixture world (sorted).
const MINI_FIELDS: &[(&str, &str)] = &[
    ("events", "event-queue"),
    ("metrics", "metrics"),
    ("nodes", "node-state"),
    ("rng", "rng-main"),
];

/// Builds the fixture world source: a dispatch over two events, a
/// `deliver` handler with a caller-chosen body, and the marked
/// `transmit` choke point.
fn mini_world(handler_body: &str, extra: &str, marker: bool) -> String {
    let marker_line =
        if marker { "// effects:choke-point(deliver) - sole Deliver scheduling site." } else { "" };
    format!(
        "pub struct World {{\n    pub events: Queue,\n    pub metrics: Metrics,\n    \
         pub nodes: Vec<Node>,\n    rng: Rng,\n}}\n\nimpl World {{\n    \
         fn handle(&mut self, event: Event) {{\n        match event {{\n            \
         Event::Deliver {{ to, msg }} => self.deliver(to, msg),\n            \
         Event::Submit(spec) => self.submit(spec),\n        }}\n    }}\n\n    \
         fn deliver(&mut self, to: usize, msg: Msg) {{\n        {handler_body}\n    }}\n\n    \
         fn submit(&mut self, spec: Spec) {{\n        self.nodes[0].queue += 1;\n        \
         self.transmit(0, Msg::Request);\n    }}\n\n    {marker_line}\n    \
         fn transmit(&mut self, to: usize, msg: Msg) {{\n        \
         let delay = self.rng.fork(1).jitter();\n        \
         self.events.schedule(delay, Event::Deliver {{ to, msg }});\n    }}\n\n    {extra}\n}}\n"
    )
}

/// Runs each planted-violation fixture through the full analyzer and
/// demands the expected rule fires (and nothing fires on the clean
/// fixture). The clean fixture also pins the extracted handler map.
pub fn self_check_cases() -> Result<(), String> {
    let clean_body = "self.nodes[to].queue += 1;\n        self.metrics.record(msg);";
    let cases: Vec<(&str, String, Option<&str>)> = vec![
        ("clean fixture", mini_world(clean_body, "", true), None),
        (
            "planted remote-queue write",
            mini_world(
                "self.events.schedule(now, Event::Deliver { to, msg });",
                "",
                true,
            ),
            Some("deliver-choke"),
        ),
        (
            "duplicate stream owner",
            mini_world(clean_body, "fn other(&mut self) { let r = self.rng.fork(1); }", true),
            Some("fork-stream"),
        ),
        (
            "non-literal stream id",
            mini_world(clean_body, "fn derive(&mut self, k: u64) { let r = self.rng.fork(k); }", true),
            Some("fork-stream"),
        ),
        (
            "hash map in handler",
            mini_world(
                // det:allow escapes the lint, not the effects gate.
                "let m: HashMap<u32, u32> = HashMap::new(); // det:allow(hash-collections): planted\n        \
                 self.nodes[to].queue += 1;",
                "",
                true,
            ),
            Some("handler-collections"),
        ),
        (
            "unknown field",
            mini_world("self.shadow += 1;", "", true),
            Some("effect-field"),
        ),
        ("missing choke marker", mini_world(clean_body, "", false), Some("choke-marker")),
    ];
    for (name, source, expect) in cases {
        let analysis = analyze_sources(
            &[(WORLD_FILE.to_string(), source)],
            WORLD_FILE,
            MINI_FIELDS,
        );
        match expect {
            None => {
                if !analysis.diagnostics.is_empty() {
                    return Err(format!(
                        "{name}: expected a clean pass, got: {}",
                        analysis.diagnostics[0]
                    ));
                }
                let deliver = analysis
                    .handlers
                    .get("deliver")
                    .ok_or_else(|| format!("{name}: no `deliver` handler extracted"))?;
                let submit = analysis
                    .handlers
                    .get("submit")
                    .ok_or_else(|| format!("{name}: no `submit` handler extracted"))?;
                if !deliver.writes.contains("node-state") || !deliver.writes.contains("metrics") {
                    return Err(format!("{name}: deliver writes misclassified"));
                }
                // submit reaches transmit transitively: queue + rng writes.
                if !submit.writes.contains("event-queue") || !submit.writes.contains("rng-main") {
                    return Err(format!("{name}: transitive transmit effects missing on submit"));
                }
                println!("effects --self-check: {name}: clean, handler closure correct");
            }
            Some(rule) => {
                let hit = analysis.diagnostics.iter().find(|d| d.rule == rule);
                match hit {
                    Some(d) => println!("effects --self-check: {name}: caught ({d})"),
                    None => {
                        return Err(format!(
                            "{name}: expected a `{rule}` violation, analyzer saw {} other \
                             diagnostic(s)",
                            analysis.diagnostics.len()
                        ))
                    }
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Runtime audit
// ---------------------------------------------------------------------

/// `--audit`: replays golden-shaped, churn, and lossy worlds under the
/// [`aria_core::EffectAudit`] tracer and asserts every observed
/// per-event touch is declared in the static map (observed ⊆ static).
fn audit(out: Option<&str>) -> ExitCode {
    use aria_core::{EffectAudit, FaultPlan, PartitionWindow, World, WorldConfig};
    use aria_probe::NullProbe;
    use aria_sim::{SimDuration, SimTime};
    use aria_workload::{JobGenerator, SubmissionSchedule};

    let root = workspace_root();
    let analysis = analyze(&root);
    if !analysis.diagnostics.is_empty() {
        for d in &analysis.diagnostics {
            eprintln!("{d}");
        }
        eprintln!("xtask effects --audit: static pass failed, not tracing");
        return ExitCode::FAILURE;
    }
    let declared: BTreeMap<String, BTreeSet<String>> = analysis
        .handlers
        .iter()
        .map(|(name, h)| (name.clone(), h.writes.iter().cloned().collect()))
        .collect();
    let mut audit = EffectAudit::new();
    // The determinism-golden shape (tests/determinism_golden.rs): the
    // iMixed scenario at 30 nodes / 15 jobs.
    let runner = aria_scenarios::Runner::scaled(30, 15);
    for seed in [11u64, 12] {
        let mut world =
            runner.build_world(aria_scenarios::Scenario::IMixed, seed, FaultPlan::none(), NullProbe);
        world.run_effect_traced(&mut audit);
    }
    // Churn + lossy-transport worlds reach join/crash/fault handlers.
    for (seed, faulted) in [(5u64, false), (6, true)] {
        let mut config = WorldConfig::small_test(24);
        config.joins = (0..4).map(|i| SimTime::from_mins(30 + 25 * i)).collect();
        config.crashes = (0..3).map(|i| SimTime::from_mins(45 + 40 * i)).collect();
        if faulted {
            config.fault = FaultPlan {
                loss: 0.15,
                duplicate: 0.1,
                jitter_ms: 400,
                partitions: vec![PartitionWindow {
                    start: SimTime::from_mins(60),
                    duration: SimDuration::from_mins(10),
                }],
                keep: None,
            };
        }
        let mut world = World::with_probe(config, seed, NullProbe);
        let mut generator = JobGenerator::paper_batch();
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_secs(40), 12);
        world.submit_schedule(&schedule, &mut generator);
        world.run_effect_traced(&mut audit);
    }
    if let Some(path) = out {
        if let Err(error) = std::fs::write(path, audit.to_jsonl()) {
            eprintln!("xtask effects --audit: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
        println!("xtask effects --audit: observed-effect trace written to {path}");
    }
    match audit.check_against(&declared) {
        Ok(()) => {
            println!(
                "xtask effects --audit: {} event(s) traced across 4 world(s); every observed \
                 touch is declared in {EFFECTS_PATH} (observed ⊆ static)",
                audit.events()
            );
            for (handler, classes) in audit.observed() {
                println!("  {handler}: {}", classes.join(", "));
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("xtask effects --audit: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kebab_matches_runtime_handler_names() {
        assert_eq!(kebab("Deliver"), "deliver");
        assert_eq!(kebab("AcceptWindowClosed"), "accept-window-closed");
        assert_eq!(kebab("RecoverJob"), "recover-job");
        assert_eq!(kebab("PartitionStart"), "partition-start");
    }

    #[test]
    fn fn_parser_crosses_generics_and_skips_declarations() {
        let src = "fn pick<F: Fn() -> bool>(f: F) { body(); }\nfn decl();\nfn plain() { x(); }";
        let file = SourceFile::parse("t.rs", src);
        let fns = parse_fns(&file.code);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["pick", "plain"]);
        assert!(file.code[fns[0].body.clone()].contains("body()"));
    }

    #[test]
    fn cfg_test_cut_spares_mid_impl_test_helpers() {
        let src = "impl W {\n    #[cfg(test)]\n    pub fn capacity(&self) -> usize { 1 }\n}\n\
                   fn late() {}\n#[cfg(test)]\nmod tests {\n    fn gone() {}\n}\n";
        let file = SourceFile::parse("t.rs", src);
        assert!(file.code.contains("capacity"), "mid-impl helper must survive the cut");
        assert!(file.code.contains("late"));
        assert!(!file.code.contains("gone"), "test module must be cut");
    }

    #[test]
    fn chain_classification_separates_reads_from_writes() {
        let fields: &[(&str, &str)] = &[("jobs", "job-table"), ("nodes", "node-state")];
        let src = "fn f(&mut self) {\n    let n = self.nodes.len();\n    if self.nodes[i].queue \
                   >= cap { return; }\n    self.nodes[i].queue += 1;\n    \
                   helper(&mut self.jobs);\n    let ok = self.jobs.len() == 2 || \
                   self.nodes.is_empty();\n}\n";
        let file = SourceFile::parse("t.rs", src);
        let fns = parse_fns(&file.code);
        let mut diags = Vec::new();
        let fx = analyze_range(&file, fns[0].body.clone(), fields, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(fx.writes.contains("node-state"), "compound assignment is a write");
        assert!(fx.writes.contains("job-table"), "&mut borrow is a write");
        assert!(fx.reads.contains("node-state"), ">= and == comparisons stay reads");
    }

    #[test]
    fn self_check_catches_every_planted_violation() {
        self_check_cases().expect("self-check fixtures");
    }

    #[test]
    fn real_tree_is_clean_and_extracts_all_handlers() {
        let analysis = analyze(&workspace_root());
        assert!(
            analysis.diagnostics.is_empty(),
            "effects violations on the tree:\n{}",
            analysis
                .diagnostics
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(analysis.handlers.len(), 14, "{:?}", analysis.handlers.keys());
        let deliver = &analysis.handlers["deliver"];
        assert!(deliver.writes.contains("event-queue"), "deliveries schedule follow-ups");
        assert!(deliver.writes.contains("node-state"));
        assert!(!analysis.streams.is_empty());
    }

    /// The satellite golden: regenerating the map on an unchanged tree
    /// is byte-identical to the committed `EFFECTS.json`.
    #[test]
    fn committed_effects_map_is_current() {
        let root = workspace_root();
        let analysis = analyze(&root);
        let committed = std::fs::read_to_string(root.join(EFFECTS_PATH))
            .expect("EFFECTS.json must be committed; run `cargo xtask effects`");
        assert!(
            committed == analysis.json,
            "EFFECTS.json is stale - regenerate with `cargo xtask effects`"
        );
    }
}
