//! The determinism & hygiene rules and the engine that applies them.
//!
//! Simulation results must be a pure function of `(config, seed)`
//! (DESIGN.md §8): the golden fingerprint test pins runs bit-for-bit, and
//! these rules statically refuse the usual ways that property gets broken
//! — iteration over randomized-layout collections, wall-clock reads and
//! ambient RNG. The same bans are mirrored in `clippy.toml`
//! (`disallowed-types`/`disallowed-methods`) so `cargo clippy` and
//! `cargo xtask lint` always agree; this pass exists so the gate runs in
//! seconds, needs no type information, and covers things clippy's config
//! cannot express (required crate attributes, reduction heuristics,
//! reason-carrying allowlists).

use crate::scan::{contains_word, split_channels, Line};
use crate::source::expr_start;

/// A lint diagnostic pointing at one source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number (0 for whole-file diagnostics).
    pub line: usize,
    /// Rule identifier (the name `det:allow(...)` takes).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// A pattern-based determinism rule.
struct Rule {
    /// Identifier used in diagnostics and `det:allow(<name>)` markers.
    name: &'static str,
    /// Word-boundary patterns that trigger the rule.
    patterns: &'static [&'static str],
    /// Why the construct is forbidden in sim-reachable code.
    why: &'static str,
}

/// Randomized-layout collection patterns. Shared with the effect-map
/// analyzer ([`crate::effects`]), whose handler-reachability rule
/// re-applies them to `World` handler closures *without* honoring
/// `det:allow` escapes — an allowlisted map elsewhere in a file must not
/// leak into the parallel-safety-critical handler code.
pub const HASH_PATTERNS: &[&str] =
    &["HashMap", "HashSet", "hash_map", "hash_set", "DefaultHasher", "RandomState"];

/// The determinism rules applied to sim-reachable sources.
const RULES: &[Rule] = &[
    Rule {
        name: "hash-collections",
        patterns: HASH_PATTERNS,
        why: "randomized-layout collection: iteration order varies per process; \
              use BTreeMap/BTreeSet (or a dense Vec table) so seeded runs replay bit-for-bit",
    },
    Rule {
        name: "wall-clock",
        patterns: &["Instant", "SystemTime"],
        why: "wall-clock read: simulated time must come from the event queue (SimTime), \
              never from the host clock",
    },
    Rule {
        name: "ambient-rng",
        patterns: &["thread_rng", "ThreadRng", "from_entropy", "OsRng", "getrandom"],
        why: "ambient randomness: every draw must come from a SimRng forked from the run seed",
    },
    Rule {
        name: "thread-spawn",
        patterns: &["thread::spawn", "ThreadPool", "threadpool", "rayon"],
        why: "ambient threading: free-running threads and global pools make scheduling \
              nondeterministic and oversubscribe cores; use scoped threads (std::thread::scope) \
              drawing worker permits from aria_sim::pool, as the multi-seed runner and the \
              shard executor do",
    },
    Rule {
        name: "io-purity",
        patterns: &[
            "tokio",
            "async_std",
            "std::net",
            "UdpSocket",
            "TcpStream",
            "TcpListener",
            "SocketAddr",
            "mio",
        ],
        why: "live I/O reachable from sans-io code: sockets and async runtimes belong \
              exclusively to crates/node (the exempt live layer); protocol code talks to \
              the world only through driver Inputs/Outputs, so the simulator and the live \
              node are guaranteed to replay the same decision kernels",
    },
    Rule {
        name: "float-ord",
        patterns: &["partial_cmp"],
        why: "partial float ordering: `partial_cmp(..).unwrap()` panics on NaN and silently \
              reorders under refactoring; use `total_cmp` or an integer sort key",
    },
];

/// The allowlist marker: `det:allow(<rule>): <reason>` in a comment on
/// the flagged line or the line directly above it.
const ALLOW_MARKER: &str = "det:allow(";

/// The attributes every workspace crate root must carry.
pub const REQUIRED_CRATE_ATTRS: &[&str] = &["#![forbid(unsafe_code)]", "#![deny(rust_2018_idioms)]"];

/// Whether `line` (or the one before it) carries an allow marker for
/// `rule`.
fn allowed(lines: &[Line], index: usize, rule: &str) -> bool {
    let marker = format!("{ALLOW_MARKER}{rule})");
    let here = &lines[index].comment;
    if here.contains(&marker) {
        return true;
    }
    index > 0 && lines[index - 1].comment.contains(&marker)
}

/// Applies the determinism rules to one sim-reachable source file.
pub fn check_determinism(path: &str, source: &str) -> Vec<Diagnostic> {
    let lines = split_channels(source);
    let mut diagnostics = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        for rule in RULES {
            let hit = rule.patterns.iter().find(|p| contains_word(&line.code, p));
            if let Some(pattern) = hit {
                if !allowed(&lines, i, rule.name) {
                    diagnostics.push(Diagnostic {
                        path: path.to_string(),
                        line: line.number,
                        rule: rule.name,
                        message: format!("`{pattern}` is forbidden here: {}", rule.why),
                    });
                }
            }
        }
        // Float reductions over unordered iterators: summing f32/f64 out
        // of a hash collection is order-dependent even when every element
        // is visited. The hash ban above already removes the source, but
        // an allowlisted map does NOT allowlist reducing over it — this
        // fires independently and needs its own `det:allow`.
        let reduces = ["sum", "product", "fold"].iter().any(|m| {
            line.code.contains(&format!(".{m}(")) || line.code.contains(&format!(".{m}::<"))
        });
        let floaty = line.code.contains("f64") || line.code.contains("f32");
        let unordered = ["HashMap", "HashSet"].iter().any(|p| contains_word(&line.code, p));
        if reduces && floaty && unordered && !allowed(&lines, i, "unordered-reduction") {
            diagnostics.push(Diagnostic {
                path: path.to_string(),
                line: line.number,
                rule: "unordered-reduction",
                message: "float reduction over an unordered iterator: the result depends on \
                          hash iteration order; collect and sort (or use an ordered map) first"
                    .to_string(),
            });
        }
        // Sorting on float keys: even NaN-free, a float sort key couples
        // the order (and therefore every downstream tie-break) to rounding
        // that changes under refactoring; require integer keys. Word-level
        // `f64`/`f32` on a sorting line is the heuristic.
        let sorts = ["sort_by", "sort_by_key", "sort_by_cached_key", "max_by_key", "min_by_key"]
            .iter()
            .any(|m| line.code.contains(&format!(".{m}(")));
        let float_words = contains_word(&line.code, "f64") || contains_word(&line.code, "f32");
        if sorts && float_words && !allowed(&lines, i, "float-ord") {
            diagnostics.push(Diagnostic {
                path: path.to_string(),
                line: line.number,
                rule: "float-ord",
                message: "float sort key: ordering ties to rounding behaviour; map to an \
                          integer key (e.g. millis) or use `total_cmp` deliberately"
                    .to_string(),
            });
        }
        // Lossy float→integer `as` casts: `as` saturates/truncates
        // silently, so a drifting float produces a silently different
        // integer — and therefore a different schedule — between runs of
        // refactored code. Sites that are genuinely safe (floor of a
        // bounded non-negative value, plot buckets) carry a reasoned
        // `det:allow(lossy-float-cast)`.
        if lossy_float_cast(&line.code) && !allowed(&lines, i, "lossy-float-cast") {
            diagnostics.push(Diagnostic {
                path: path.to_string(),
                line: line.number,
                rule: "lossy-float-cast",
                message: "float expression cast to an integer with `as`: truncation and \
                          saturation are silent; use `try_from` on a checked round, keep the \
                          value integral, or justify with `det:allow(lossy-float-cast)`"
                    .to_string(),
            });
        }
    }
    diagnostics
}

/// Integer types a float expression must not be `as`-cast into.
const INT_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Float methods whose presence marks the casted expression as float-valued.
const FLOAT_METHODS: &[&str] = &[
    ".ceil(", ".floor(", ".round(", ".trunc(", ".sqrt(", ".exp(", ".ln(", ".powf(", ".powi(",
];

/// Detects a lossy float→integer cast on one code line.
///
/// For every `as <int-type>` the expression to the left of the `as` is
/// recovered with [`expr_start`] (the shared backward scan balanced over
/// `()[]{}`, stopping at a top-level `;`, `,`, `=` or an unmatched
/// opening bracket). The cast is flagged when that expression shows
/// float evidence: an `f64`/`f32` token, a float literal (`2.0`), or a
/// float-typed method call. Pure integer casts (`len() as u64`,
/// `slack as u64`) never match.
fn lossy_float_cast(code: &str) -> bool {
    let mut search = 0;
    while let Some(pos) = code[search..].find(" as ") {
        let at = search + pos;
        search = at + 4;
        let rest = &code[at + 4..];
        let target: String =
            rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if !INT_TARGETS.contains(&target.as_str()) {
            continue;
        }
        let expr = &code[expr_start(code, at)..at];
        let literal = expr.as_bytes().windows(3).any(|w| {
            w[1] == b'.' && w[0].is_ascii_digit() && w[2].is_ascii_digit()
        });
        if contains_word(expr, "f64")
            || contains_word(expr, "f32")
            || literal
            || FLOAT_METHODS.iter().any(|m| expr.contains(m))
        {
            return true;
        }
    }
    false
}

/// Checks that a crate root source carries the required hygiene
/// attributes ([`REQUIRED_CRATE_ATTRS`]).
pub fn check_crate_attrs(path: &str, source: &str) -> Vec<Diagnostic> {
    let lines = split_channels(source);
    let code: String = lines.iter().map(|l| l.code.as_str()).collect::<Vec<_>>().join("\n");
    let compact: String = code.chars().filter(|c| !c.is_whitespace()).collect();
    REQUIRED_CRATE_ATTRS
        .iter()
        .filter(|attr| {
            let want: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
            !compact.contains(&want)
        })
        .map(|attr| Diagnostic {
            path: path.to_string(),
            line: 1,
            rule: "crate-attrs",
            message: format!("crate root is missing `{attr}`"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(source: &str) -> Vec<&'static str> {
        check_determinism("test.rs", source).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn hash_collections_are_flagged_with_location() {
        let diags = check_determinism("a/b.rs", "use std::collections::HashMap;\nlet x = 1;\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "hash-collections");
        assert_eq!((diags[0].path.as_str(), diags[0].line), ("a/b.rs", 1));
        assert!(diags[0].to_string().starts_with("a/b.rs:1: [hash-collections]"));
    }

    #[test]
    fn wall_clock_and_rng_are_flagged() {
        assert_eq!(
            rules_hit("let t = Instant::now();\nlet r = thread_rng();\n"),
            ["wall-clock", "ambient-rng"]
        );
        assert_eq!(rules_hit("let t = SystemTime::now();"), ["wall-clock"]);
    }

    #[test]
    fn sim_types_do_not_trip_the_wall_clock_rule() {
        assert!(rules_hit("let t: SimTime = world.now(); let i = SimInstant::ZERO;").is_empty());
    }

    #[test]
    fn ambient_thread_spawns_are_flagged() {
        assert_eq!(rules_hit("let h = std::thread::spawn(move || work());"), ["thread-spawn"]);
        assert_eq!(rules_hit("let pool = ThreadPool::new(8);"), ["thread-spawn"]);
        assert_eq!(rules_hit("rayon::join(a, b);"), ["thread-spawn"]);
    }

    #[test]
    fn live_io_is_flagged_in_sans_io_code() {
        assert_eq!(rules_hit("use std::net::UdpSocket;"), ["io-purity"]);
        assert_eq!(rules_hit("let addr: SocketAddr = s.parse()?;"), ["io-purity"]);
        assert_eq!(rules_hit("tokio::spawn(async move { serve().await });"), ["io-purity"]);
        assert_eq!(rules_hit("let l = TcpListener::bind(addr)?;"), ["io-purity"]);
    }

    #[test]
    fn driver_vocabulary_does_not_trip_the_io_rule() {
        // The sans-io driver talks *about* the network without touching
        // it: message/peer vocabulary must stay lint-clean.
        let clean = "let out = driver.handle(now, Input::Msg { from, msg });\n\
                     let peers: Vec<NodeId> = overlay.neighbors(id);\n\
                     out.push(Output::Send { to, msg });\n";
        assert!(rules_hit(clean).is_empty());
    }

    #[test]
    fn scoped_threads_do_not_trip_the_spawn_rule() {
        let scoped = "std::thread::scope(|scope| {\n    let h = scope.spawn(move || work());\n});\n";
        assert!(rules_hit(scoped).is_empty());
        assert!(rules_hit("let threads = pool::reserve(want);").is_empty());
    }

    #[test]
    fn patterns_in_strings_and_comments_are_ignored() {
        let src = "// a HashMap would be wrong here\nlet s = \"HashMap\"; /* Instant */\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn allow_marker_on_same_or_previous_line_suppresses() {
        let same = "let m = HashMap::new(); // det:allow(hash-collections): build-time only\n";
        assert!(rules_hit(same).is_empty());
        let prev = "// det:allow(hash-collections): build-time only\nlet m = HashMap::new();\n";
        assert!(rules_hit(prev).is_empty());
        let wrong_rule = "// det:allow(wall-clock): nope\nlet m = HashMap::new();\n";
        assert_eq!(rules_hit(wrong_rule), ["hash-collections"]);
    }

    #[test]
    fn allow_does_not_leak_past_one_line() {
        let src = "// det:allow(hash-collections): first only\nlet a = HashMap::new();\nlet b = HashMap::new();\n";
        let diags = check_determinism("t.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn unordered_float_reduction_fires_independently_of_the_type_ban() {
        // Allowlisting the map does not allowlist reducing over it.
        let src = "// det:allow(hash-collections): cache\n\
                   let s: f64 = cache.iter().map(HashMap::len).sum::<f64>();\n";
        assert_eq!(rules_hit(src), ["unordered-reduction"]);
    }

    #[test]
    fn ordered_float_reductions_are_fine() {
        assert!(rules_hit("let s: f64 = xs.iter().sum();").is_empty());
    }

    #[test]
    fn partial_cmp_and_float_sort_keys_are_flagged() {
        assert_eq!(rules_hit("xs.sort_by(|a, b| a.partial_cmp(b).unwrap());"), ["float-ord"]);
        assert_eq!(rules_hit("xs.sort_by_key(|x| x.cost as f64 / x.n as f64);"), ["float-ord"]);
        assert!(rules_hit("let w = items.min_by_key(|i| i.weight);").is_empty());
    }

    #[test]
    fn integer_sort_keys_and_total_cmp_are_fine() {
        assert!(rules_hit("keyed.sort_by_key(|&(key, id)| (key, id));").is_empty());
        assert!(rules_hit("xs.sort_by(|a, b| a.total_cmp(b));").is_empty());
    }

    #[test]
    fn lossy_float_casts_are_flagged() {
        assert_eq!(rules_hit("let n = (x * 2.0).round() as u64;"), ["lossy-float-cast"]);
        assert_eq!(rules_hit("let r = (q * len as f64).ceil() as usize;"), ["lossy-float-cast"]);
        assert_eq!(rules_hit("let b = rng.f64_range(lo, hi).exp() as u32;"), ["lossy-float-cast"]);
    }

    #[test]
    fn integer_only_casts_are_fine() {
        for clean in [
            "let idx = (t.as_millis() / period.as_millis()) as usize;",
            "let wide = spec.min_memory_gb as u64 * GIB;",
            "self.bounded(len as u64) as usize",
            "let d = self.0 as i64 - other.0 as i64;",
            "let id = NodeId::new(rng.u64_range(0, topo.len() as u64) as u32);",
            "let f = count as f64 / total as f64;",
        ] {
            assert_eq!(rules_hit(clean), [] as [&str; 0], "false positive on: {clean}");
        }
    }

    #[test]
    fn lossy_cast_allow_marker_suppresses() {
        let src = "// det:allow(lossy-float-cast): floor of a bounded mean\n\
                   let n = plan.mean.floor() as u64;\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn crate_attr_check_reports_missing_attrs() {
        let missing = check_crate_attrs("crates/x/src/lib.rs", "//! docs\npub fn f() {}\n");
        assert_eq!(missing.len(), 2);
        assert!(missing.iter().all(|d| d.rule == "crate-attrs"));
        let present = "#![forbid(unsafe_code)]\n#![deny(rust_2018_idioms)]\npub fn f() {}\n";
        assert!(check_crate_attrs("x.rs", present).is_empty());
    }

    #[test]
    fn crate_attrs_in_comments_do_not_count() {
        let fake = "// #![forbid(unsafe_code)]\n/* #![deny(rust_2018_idioms)] */\n";
        assert_eq!(check_crate_attrs("x.rs", fake).len(), 2);
    }
}
