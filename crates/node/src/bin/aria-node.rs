//! `aria-node <config.toml>` — one live ARiA grid node.
//!
//! Binds the configured UDP socket, joins the static peer overlay and
//! runs the sans-io protocol driver until a `Shutdown` frame arrives,
//! then flushes its probe trace (JSONL) and prints a one-line report.

use aria_node::config::NodeConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: aria-node <config.toml>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("aria-node: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let config = match NodeConfig::parse(&text) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("aria-node: {path}: {e}");
            std::process::exit(2);
        }
    };
    match aria_node::runtime::run(&config) {
        Ok(report) => {
            println!(
                "aria-node {}: completed={} abandoned={} lost={} injected_drops={} probe_events={}",
                config.id,
                report.completed,
                report.abandoned,
                report.lost,
                report.injected_drops,
                report.probe_events,
            );
        }
        Err(e) => {
            eprintln!("aria-node {}: {e}", config.id);
            std::process::exit(1);
        }
    }
}
