//! `aria-cluster` — spawn a localhost ARiA cluster, run a workload,
//! merge the probe traces and report completion metrics.
//!
//! ```text
//! aria-cluster [--nodes N] [--jobs J] [--ert-ms MS] [--loss P]
//!              [--loss-window N:FROM_MS:UNTIL_MS]... [--drop-first-assign]
//!              [--kill V:T_MS[:RESTART_MS]]... [--submit-gap-ms MS]
//!              [--soak-secs S] [--max-node-rss-mb MB]
//!              [--seed S] [--dir PATH] [--node-binary PATH]
//!              [--deadline-secs S]
//! ```
//!
//! The workload is an iMixed-style blend: jobs alternate between short
//! and long expected running times and between two resource classes, so
//! discovery, queueing and (with `--loss`) the retransmit path all get
//! exercised. Every job takes the JSDL round trip before submission.
//!
//! `--kill V:T[:R]` SIGKILLs node V at T ms after workload start and
//! (optionally) restarts it at R ms; kill victims are automatically
//! excluded from submission targets, since a job whose *initiator* dies
//! is unrecoverable by design. `--soak-secs` switches to a rolling
//! soak: a paced workload spanning S seconds with periodic kill/restart
//! churn over the last two nodes and a VmHWM memory high-water check.
//!
//! Exits non-zero if any job is lost, completes other than once, or
//! misses the liveness bound; churn runs additionally require
//! `peer-dead` (and, with restarts, `peer-rejoined`) probe events in
//! the merged trace.

use aria_core::config::ProtocolTiming;
use aria_core::driver::{DriverConfig, MembershipConfig};
use aria_core::AriaConfig;
use aria_grid::{
    Architecture, JobId, JobRequirements, JobSpec, NodeProfile, OperatingSystem, PerfIndex,
    Policy,
};
use aria_node::cluster::{liveness_bound, run_cluster, ChurnAction, ChurnEvent, ClusterSpec};
use aria_sim::SimDuration;
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    nodes: u32,
    jobs: u64,
    ert_ms: u64,
    loss: f64,
    loss_windows: Vec<(u32, u64, u64)>,
    drop_first_assign: bool,
    /// (victim, kill at ms, restart at ms).
    kills: Vec<(u32, u64, Option<u64>)>,
    submit_gap_ms: u64,
    soak_secs: Option<u64>,
    max_node_rss_mb: Option<u64>,
    seed: u64,
    dir: PathBuf,
    node_binary: PathBuf,
    deadline: Duration,
    deadline_set: bool,
}

/// Parses `a:b` / `a:b:c` colon-separated integer tuples.
fn split_ints(flag: &str, raw: &str, min: usize, max: usize) -> Result<Vec<u64>, String> {
    let parts: Result<Vec<u64>, _> = raw.split(':').map(str::parse).collect();
    let parts = parts.map_err(|e| format!("{flag} `{raw}`: {e}"))?;
    if parts.len() < min || parts.len() > max {
        return Err(format!("{flag} `{raw}`: expected {min}..={max} `:`-separated integers"));
    }
    Ok(parts)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        nodes: 5,
        jobs: 8,
        ert_ms: 1000,
        loss: 0.0,
        loss_windows: Vec::new(),
        drop_first_assign: false,
        kills: Vec::new(),
        submit_gap_ms: 5,
        soak_secs: None,
        max_node_rss_mb: None,
        seed: 42,
        dir: std::env::temp_dir().join("aria-cluster"),
        node_binary: sibling_binary()?,
        deadline: Duration::from_secs(45),
        deadline_set: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--nodes" => args.nodes = value("--nodes")?.parse().map_err(|e| format!("{e}"))?,
            "--jobs" => args.jobs = value("--jobs")?.parse().map_err(|e| format!("{e}"))?,
            "--ert-ms" => args.ert_ms = value("--ert-ms")?.parse().map_err(|e| format!("{e}"))?,
            "--loss" => args.loss = value("--loss")?.parse().map_err(|e| format!("{e}"))?,
            "--loss-window" => {
                let v = split_ints("--loss-window", &value("--loss-window")?, 3, 3)?;
                args.loss_windows.push((v[0] as u32, v[1], v[2]));
            }
            "--drop-first-assign" => args.drop_first_assign = true,
            "--kill" => {
                let v = split_ints("--kill", &value("--kill")?, 2, 3)?;
                args.kills.push((v[0] as u32, v[1], v.get(2).copied()));
            }
            "--submit-gap-ms" => {
                args.submit_gap_ms =
                    value("--submit-gap-ms")?.parse().map_err(|e| format!("{e}"))?
            }
            "--soak-secs" => {
                args.soak_secs =
                    Some(value("--soak-secs")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--max-node-rss-mb" => {
                args.max_node_rss_mb =
                    Some(value("--max-node-rss-mb")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--dir" => args.dir = PathBuf::from(value("--dir")?),
            "--node-binary" => args.node_binary = PathBuf::from(value("--node-binary")?),
            "--deadline-secs" => {
                args.deadline = Duration::from_secs(
                    value("--deadline-secs")?.parse().map_err(|e| format!("{e}"))?,
                );
                args.deadline_set = true;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    for &(victim, _, _) in &args.kills {
        if victim >= args.nodes {
            return Err(format!("--kill victim {victim} is not a node (nodes={})", args.nodes));
        }
    }
    Ok(args)
}

/// The `aria-node` binary next to this one in the target directory.
fn sibling_binary() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me.parent().ok_or("current_exe has no parent")?;
    let name = if cfg!(windows) { "aria-node.exe" } else { "aria-node" };
    Ok(dir.join(name))
}

/// An iMixed-style blend: alternating short/long ERTs over two resource
/// classes, all satisfiable by the cluster's profiles.
fn workload(jobs: u64, ert_ms: u64) -> Vec<JobSpec> {
    (0..jobs)
        .map(|i| {
            let ert = SimDuration::from_millis(if i % 2 == 0 { ert_ms } else { ert_ms * 3 });
            let requirements = if i % 3 == 0 {
                JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 8, 50)
            } else {
                JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 2, 10)
            };
            JobSpec::batch(JobId::new(i), requirements, ert)
        })
        .collect()
}

/// Protocol timing tightened from the paper's simulation timescale to a
/// live loopback one — shape preserved, constants scaled. The failure
/// detector matches: suspect after 1.5 s of silence, dead after 4 s.
fn live_timing() -> DriverConfig {
    let mut aria = AriaConfig::default().with_timing(ProtocolTiming {
        accept_window: SimDuration::from_millis(300),
        request_retry: SimDuration::from_millis(1000),
        max_request_rounds: 50,
        assign_ack_timeout: SimDuration::from_millis(200),
        assign_max_retries: 4,
    });
    aria.inform_period = SimDuration::from_millis(2000);
    DriverConfig {
        aria,
        failsafe: true,
        failsafe_detection: SimDuration::from_millis(3000),
        membership: MembershipConfig {
            heartbeat_period: SimDuration::from_millis(500),
            suspect_misses: 3,
            dead_misses: 8,
        },
    }
}

fn main() {
    let mut args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("aria-cluster: {e}");
            std::process::exit(2);
        }
    };

    // Soak mode: a rolling workload spanning the requested wall-clock,
    // with periodic kill/restart churn over the last two nodes while
    // submissions go to the others.
    if let Some(soak_secs) = args.soak_secs {
        if args.nodes < 4 {
            eprintln!("aria-cluster: --soak-secs needs at least 4 nodes");
            std::process::exit(2);
        }
        // ~1.3 jobs/s of 1–3 s work keeps the rolling queue shallow
        // even with one node down. ERTs stay whole seconds (JSDL).
        args.submit_gap_ms = args.submit_gap_ms.max(750);
        args.jobs = (soak_secs * 1000 / args.submit_gap_ms).max(4);
        // Kill one of the last two nodes every 12 s, restart it 4 s
        // later; the victim alternates so both see kill and rejoin.
        let mut t = 8_000u64;
        let mut victim = args.nodes - 1;
        while t + 6_000 < soak_secs * 1000 {
            args.kills.push((victim, t, Some(t + 4_000)));
            victim = if victim == args.nodes - 1 { args.nodes - 2 } else { args.nodes - 1 };
            t += 12_000;
        }
        if args.max_node_rss_mb.is_none() {
            args.max_node_rss_mb = Some(512);
        }
        if !args.deadline_set {
            args.deadline = Duration::from_secs(soak_secs + 30);
        }
    }

    let victims: Vec<u32> = {
        let mut v: Vec<u32> = args.kills.iter().map(|&(n, _, _)| n).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let submit_to: Vec<u32> = (0..args.nodes).filter(|n| !victims.contains(n)).collect();
    if submit_to.is_empty() {
        eprintln!("aria-cluster: every node is a kill victim; nothing safe to submit to");
        std::process::exit(2);
    }
    let mut churn: Vec<ChurnEvent> = Vec::new();
    for &(victim, kill_ms, restart_ms) in &args.kills {
        churn.push(ChurnEvent {
            at: Duration::from_millis(kill_ms),
            action: ChurnAction::Kill(victim),
        });
        if let Some(restart_ms) = restart_ms {
            churn.push(ChurnEvent {
                at: Duration::from_millis(restart_ms),
                action: ChurnAction::Restart(victim),
            });
        }
    }
    let restarts = churn.iter().any(|ev| matches!(ev.action, ChurnAction::Restart(_)));

    let jobs = workload(args.jobs, args.ert_ms);
    let driver = live_timing();
    let max_ert = jobs.iter().map(|j| j.ert).max().unwrap_or(SimDuration::ZERO);
    let bound = liveness_bound(&driver, Duration::from_millis(max_ert.as_millis()));
    let spec = ClusterSpec {
        nodes: args.nodes,
        jobs: jobs.clone(),
        profiles: vec![
            NodeProfile::new(
                Architecture::Amd64,
                OperatingSystem::Linux,
                64,
                1000,
                PerfIndex::BASELINE,
            ),
            NodeProfile::new(
                Architecture::Amd64,
                OperatingSystem::Linux,
                16,
                200,
                PerfIndex::new(1.5).expect("valid index"),
            ),
        ],
        policies: vec![Policy::Fcfs, Policy::Sjf],
        driver,
        loss: args.loss,
        loss_windows: args.loss_windows.clone(),
        drop_first_assign: args.drop_first_assign,
        seed: args.seed,
        submit_gap: Duration::from_millis(args.submit_gap_ms),
        submit_to,
        churn,
        dir: args.dir,
        node_binary: args.node_binary,
        deadline: args.deadline,
    };
    let outcome = match run_cluster(&spec) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("aria-cluster: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "aria-cluster: nodes={} jobs={} completed={} retransmits={} injected_drops={} \
         lost_events={} peer_dead={} peer_rejoined={} max_rss_kb={} trace={}",
        spec.nodes,
        jobs.len(),
        outcome.completed.len(),
        outcome.retransmits,
        outcome.injected_drops,
        outcome.lost_events,
        outcome.peer_dead_events,
        outcome.peer_rejoined_events,
        outcome.max_node_rss_kb,
        outcome.merged_path.display(),
    );
    if let Err(violation) = outcome.check_conservation(&jobs) {
        eprintln!("aria-cluster: CONSERVATION VIOLATED: {violation}");
        std::process::exit(1);
    }
    println!("aria-cluster: job conservation holds ({} jobs, exactly once each)", jobs.len());
    if let Err(violation) = outcome.check_liveness(&jobs, bound) {
        eprintln!("aria-cluster: LIVENESS VIOLATED: {violation}");
        std::process::exit(1);
    }
    println!(
        "aria-cluster: liveness holds (every job within {:.1}s of submission)",
        bound.as_secs_f64()
    );
    if !args.kills.is_empty() && outcome.peer_dead_events == 0 {
        eprintln!("aria-cluster: CHURN UNOBSERVED: kills ran but no peer-dead events in trace");
        std::process::exit(1);
    }
    if restarts && outcome.peer_rejoined_events == 0 {
        eprintln!("aria-cluster: CHURN UNOBSERVED: restarts ran but no peer-rejoined events");
        std::process::exit(1);
    }
    if let Some(cap_mb) = args.max_node_rss_mb {
        if outcome.max_node_rss_kb > cap_mb * 1024 {
            eprintln!(
                "aria-cluster: MEMORY HIGH-WATER EXCEEDED: {} KiB > {} MiB cap",
                outcome.max_node_rss_kb, cap_mb
            );
            std::process::exit(1);
        }
        println!(
            "aria-cluster: node memory high-water {} KiB within the {} MiB cap",
            outcome.max_node_rss_kb, cap_mb
        );
    }
}
