//! `aria-cluster` — spawn a localhost ARiA cluster, run a workload,
//! merge the probe traces and report completion metrics.
//!
//! ```text
//! aria-cluster [--nodes N] [--jobs J] [--ert-ms MS] [--loss P]
//!              [--drop-first-assign] [--seed S] [--dir PATH]
//!              [--node-binary PATH] [--deadline-secs S]
//! ```
//!
//! The workload is an iMixed-style blend: jobs alternate between short
//! and long expected running times and between two resource classes, so
//! discovery, queueing and (with `--loss`) the retransmit path all get
//! exercised. Every job takes the JSDL round trip before submission.
//! Exits non-zero if any job is lost or completes other than once.

use aria_core::config::ProtocolTiming;
use aria_core::driver::DriverConfig;
use aria_core::AriaConfig;
use aria_grid::{
    Architecture, JobId, JobRequirements, JobSpec, NodeProfile, OperatingSystem, PerfIndex,
    Policy,
};
use aria_node::cluster::{run_cluster, ClusterSpec};
use aria_sim::SimDuration;
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    nodes: u32,
    jobs: u64,
    ert_ms: u64,
    loss: f64,
    drop_first_assign: bool,
    seed: u64,
    dir: PathBuf,
    node_binary: PathBuf,
    deadline: Duration,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        nodes: 5,
        jobs: 8,
        ert_ms: 1000,
        loss: 0.0,
        drop_first_assign: false,
        seed: 42,
        dir: std::env::temp_dir().join("aria-cluster"),
        node_binary: sibling_binary()?,
        deadline: Duration::from_secs(45),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--nodes" => args.nodes = value("--nodes")?.parse().map_err(|e| format!("{e}"))?,
            "--jobs" => args.jobs = value("--jobs")?.parse().map_err(|e| format!("{e}"))?,
            "--ert-ms" => args.ert_ms = value("--ert-ms")?.parse().map_err(|e| format!("{e}"))?,
            "--loss" => args.loss = value("--loss")?.parse().map_err(|e| format!("{e}"))?,
            "--drop-first-assign" => args.drop_first_assign = true,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--dir" => args.dir = PathBuf::from(value("--dir")?),
            "--node-binary" => args.node_binary = PathBuf::from(value("--node-binary")?),
            "--deadline-secs" => {
                args.deadline = Duration::from_secs(
                    value("--deadline-secs")?.parse().map_err(|e| format!("{e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// The `aria-node` binary next to this one in the target directory.
fn sibling_binary() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me.parent().ok_or("current_exe has no parent")?;
    let name = if cfg!(windows) { "aria-node.exe" } else { "aria-node" };
    Ok(dir.join(name))
}

/// An iMixed-style blend: alternating short/long ERTs over two resource
/// classes, all satisfiable by the cluster's profiles.
fn workload(jobs: u64, ert_ms: u64) -> Vec<JobSpec> {
    (0..jobs)
        .map(|i| {
            let ert = SimDuration::from_millis(if i % 2 == 0 { ert_ms } else { ert_ms * 3 });
            let requirements = if i % 3 == 0 {
                JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 8, 50)
            } else {
                JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 2, 10)
            };
            JobSpec::batch(JobId::new(i), requirements, ert)
        })
        .collect()
}

/// Protocol timing tightened from the paper's simulation timescale to a
/// live loopback one — shape preserved, constants scaled.
fn live_timing() -> DriverConfig {
    let mut aria = AriaConfig::default().with_timing(ProtocolTiming {
        accept_window: SimDuration::from_millis(300),
        request_retry: SimDuration::from_millis(1000),
        max_request_rounds: 50,
        assign_ack_timeout: SimDuration::from_millis(200),
        assign_max_retries: 4,
    });
    aria.inform_period = SimDuration::from_millis(2000);
    DriverConfig { aria, failsafe: true, failsafe_detection: SimDuration::from_millis(3000) }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("aria-cluster: {e}");
            std::process::exit(2);
        }
    };
    let jobs = workload(args.jobs, args.ert_ms);
    let spec = ClusterSpec {
        nodes: args.nodes,
        jobs: jobs.clone(),
        profiles: vec![
            NodeProfile::new(
                Architecture::Amd64,
                OperatingSystem::Linux,
                64,
                1000,
                PerfIndex::BASELINE,
            ),
            NodeProfile::new(
                Architecture::Amd64,
                OperatingSystem::Linux,
                16,
                200,
                PerfIndex::new(1.5).expect("valid index"),
            ),
        ],
        policies: vec![Policy::Fcfs, Policy::Sjf],
        driver: live_timing(),
        loss: args.loss,
        drop_first_assign: args.drop_first_assign,
        seed: args.seed,
        dir: args.dir,
        node_binary: args.node_binary,
        deadline: args.deadline,
    };
    let outcome = match run_cluster(&spec) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("aria-cluster: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "aria-cluster: nodes={} jobs={} completed={} retransmits={} injected_drops={} \
         lost_events={} trace={}",
        spec.nodes,
        jobs.len(),
        outcome.completed.len(),
        outcome.retransmits,
        outcome.injected_drops,
        outcome.lost_events,
        outcome.merged_path.display(),
    );
    if let Err(violation) = outcome.check_conservation(&jobs) {
        eprintln!("aria-cluster: CONSERVATION VIOLATED: {violation}");
        std::process::exit(1);
    }
    println!("aria-cluster: job conservation holds ({} jobs, exactly once each)", jobs.len());
}
