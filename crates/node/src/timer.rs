//! A monotonic-clock timer wheel for driver timers.
//!
//! The driver requests timers in relative [`SimDuration`]s; the runtime
//! anchors them to its monotonic clock (milliseconds since startup,
//! mapped onto [`aria_sim::SimTime`]) and delivers each exactly once.
//! The wheel is a plain binary heap — node timer counts are tiny
//! (per-job protocol deadlines plus a periodic tick), far below where a
//! hashed or hierarchical wheel would pay off.

use aria_core::driver::Timer;
use aria_sim::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry {
    fire_at: SimTime,
    seq: u64,
    timer: Timer,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.fire_at == other.fire_at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest deadline pops first from the max-heap.
        (other.fire_at, other.seq).cmp(&(self.fire_at, self.seq))
    }
}

/// Pending timers ordered by deadline; FIFO among equal deadlines.
#[derive(Default)]
pub struct TimerWheel {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl TimerWheel {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        TimerWheel { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `timer` to fire at `fire_at`.
    pub fn arm(&mut self, fire_at: SimTime, timer: Timer) {
        self.heap.push(Entry { fire_at, seq: self.seq, timer });
        self.seq += 1;
    }

    /// The earliest pending deadline, if any timer is armed.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.fire_at)
    }

    /// Pops the next timer due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Timer> {
        if self.heap.peek().is_some_and(|e| e.fire_at <= now) {
            return self.heap.pop().map(|e| e.timer);
        }
        None
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_grid::JobId;

    #[test]
    fn fires_in_deadline_order_fifo_on_ties() {
        let mut wheel = TimerWheel::new();
        let t = |n: u64| Timer::ExecutionComplete { job: JobId::new(n) };
        wheel.arm(SimTime::from_millis(30), t(3));
        wheel.arm(SimTime::from_millis(10), t(1));
        wheel.arm(SimTime::from_millis(10), t(2));
        assert_eq!(wheel.next_deadline(), Some(SimTime::from_millis(10)));
        assert_eq!(wheel.pop_due(SimTime::from_millis(5)), None);
        assert_eq!(wheel.pop_due(SimTime::from_millis(10)), Some(t(1)));
        assert_eq!(wheel.pop_due(SimTime::from_millis(10)), Some(t(2)));
        assert_eq!(wheel.pop_due(SimTime::from_millis(10)), None);
        assert_eq!(wheel.pop_due(SimTime::from_millis(31)), Some(t(3)));
        assert!(wheel.is_empty());
    }
}
