//! # aria-node — the live ARiA node runtime and cluster harness
//!
//! Everything the sans-io layers deliberately exclude lives here: real
//! UDP sockets, a monotonic clock, process management. The crate is the
//! *only* workspace member allowed to touch those APIs (`cargo xtask
//! lint` enforces the boundary via the io-purity rule); all protocol
//! behaviour comes from [`aria_core::driver::NodeDriver`] and through it
//! the same `aria_core::logic` kernels the simulator runs.
//!
//! * [`config`] — strict TOML-subset node configuration (static
//!   peer-list overlay bootstrap, shared [`ProtocolTiming`] slice).
//! * [`timer`] — the monotonic timer wheel backing driver timers.
//! * [`runtime`] — the blocking UDP event loop (`aria-node` binary).
//! * [`cluster`] — the multi-process localhost harness
//!   (`aria-cluster` binary and the loopback integration test).
//!
//! [`ProtocolTiming`]: aria_core::config::ProtocolTiming

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
// The one workspace member whose job IS the banned I/O surface: real
// sockets and the monotonic clock live here (and only here — `cargo
// xtask lint` walks every other crate with the io-purity and wall-clock
// rules armed).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

pub mod cluster;
pub mod config;
pub mod runtime;
pub mod timer;

pub use cluster::{run_cluster, ClusterOutcome, ClusterSpec};
pub use config::{ConfigError, NodeConfig};
pub use runtime::RunReport;
pub use timer::TimerWheel;
