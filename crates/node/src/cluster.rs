//! Multi-process localhost cluster harness.
//!
//! [`run_cluster`] spawns N `aria-node` processes on loopback UDP,
//! submits a JSDL workload (each job is written to disk as a JSDL
//! document and parsed back before submission — the live counterpart of
//! the paper's job-profile interchange), collects completion reports,
//! shuts the nodes down and merges their per-node probe traces into one
//! schema-valid JSONL stream that `cargo xtask probe timeline/summary`
//! reads exactly like a simulator trace.

use crate::config::NodeConfig;
use aria_core::driver::{DriverConfig, LiveMsg};
use aria_grid::{JobId, JobSpec, NodeProfile, Policy};
use aria_jsdl::JobDefinition;
use aria_overlay::NodeId;
use aria_probe::schema;
use aria_probe::{ProbeEvent, Trace, TraceEntry, TraceMeta};
use std::collections::BTreeMap;
use std::io;
use std::net::UdpSocket;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// What to run: node count, workload, fault knobs and file layout.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of nodes to spawn.
    pub nodes: u32,
    /// The workload; each spec takes the JSDL round trip before submission.
    pub jobs: Vec<JobSpec>,
    /// Per-node profiles; cycled if shorter than `nodes`.
    pub profiles: Vec<NodeProfile>,
    /// Per-node policies; cycled if shorter than `nodes`.
    pub policies: Vec<Policy>,
    /// Driver configuration template (timing usually tightened for live
    /// runs; the defaults are the paper's simulation timescale).
    pub driver: DriverConfig,
    /// Inbound protocol-message loss probability injected at each node.
    pub loss: f64,
    /// Deterministically drop the first inbound ASSIGN at every node.
    pub drop_first_assign: bool,
    /// Base RNG seed; node k runs with `seed + k`.
    pub seed: u64,
    /// Scratch directory for configs, JSDL files and traces.
    pub dir: PathBuf,
    /// Path to the `aria-node` binary.
    pub node_binary: PathBuf,
    /// Wall-clock budget for the whole run.
    pub deadline: Duration,
}

/// What the run produced.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// Completion reports: which node finished each job.
    pub completed: BTreeMap<JobId, NodeId>,
    /// The merged, re-sequenced, schema-validated probe trace.
    pub merged: Trace,
    /// Path the merged JSONL was written to (`cluster.jsonl`).
    pub merged_path: PathBuf,
    /// ASSIGN retransmissions observed across the cluster.
    pub retransmits: u64,
    /// Fault-stage drops recorded across the cluster.
    pub injected_drops: u64,
    /// `job-lost` events observed (must be 0 for a conserving run).
    pub lost_events: u64,
}

impl ClusterOutcome {
    /// The job-conservation oracle over the merged trace: every
    /// submitted job completed on exactly one node, and nothing was
    /// lost. Returns a description of the first violation.
    pub fn check_conservation(&self, jobs: &[JobSpec]) -> Result<(), String> {
        if self.lost_events > 0 {
            return Err(format!("{} job-lost event(s) in the merged trace", self.lost_events));
        }
        let mut completions: BTreeMap<JobId, u64> = BTreeMap::new();
        for entry in &self.merged.entries {
            if let ProbeEvent::Completed { job, .. } = entry.event {
                *completions.entry(job).or_default() += 1;
            }
        }
        for spec in jobs {
            match completions.get(&spec.id).copied().unwrap_or(0) {
                1 => {}
                0 => return Err(format!("{} never completed", spec.id)),
                n => return Err(format!("{} completed {n} times", spec.id)),
            }
        }
        Ok(())
    }
}

/// Runs the cluster end to end. See the module docs for the phases.
pub fn run_cluster(spec: &ClusterSpec) -> io::Result<ClusterOutcome> {
    assert!(spec.nodes >= 2, "a cluster needs at least two nodes");
    assert!(!spec.jobs.is_empty(), "a cluster run needs a workload");
    std::fs::create_dir_all(&spec.dir)?;

    // The report socket stays bound for the whole run; node ports are
    // reserved by binding and immediately released (fine on loopback —
    // nothing else races for just-freed ephemeral ports in CI).
    let report = UdpSocket::bind("127.0.0.1:0")?;
    let report_addr = report.local_addr()?;
    let reservations: Vec<UdpSocket> =
        (0..spec.nodes).map(|_| UdpSocket::bind("127.0.0.1:0")).collect::<Result<_, _>>()?;
    let node_addrs: Vec<String> = reservations
        .iter()
        .map(|s| Ok(format!("127.0.0.1:{}", s.local_addr()?.port())))
        .collect::<io::Result<_>>()?;
    drop(reservations);

    // The JSDL leg: write each job out as a JSDL document and submit
    // what parses back, so the wire workload went through the standard
    // interchange format, not a Rust-only shortcut.
    let mut workload = Vec::with_capacity(spec.jobs.len());
    for job in &spec.jobs {
        let path = spec.dir.join(format!("job-{:06}.xml", job.id.raw()));
        let xml = JobDefinition::from_job_spec(job, Some(&format!("cluster-{}", job.id))).to_xml();
        std::fs::write(&path, &xml)?;
        let text = std::fs::read_to_string(&path)?;
        let parsed = JobDefinition::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        let round_tripped = parsed
            .to_job_spec(job.id)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        // JSDL carries ERT in whole seconds; a sub-second ERT would
        // silently become a zero-cost job. Refuse rather than run a
        // different workload than the caller asked for.
        if round_tripped != *job {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{} does not survive the JSDL round trip (sub-second ERT or deadline?): \
                     submitted {:?}, parsed back {:?}",
                    job.id, job, round_tripped
                ),
            ));
        }
        workload.push(round_tripped);
    }

    let peers: Vec<(NodeId, String)> = node_addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| (NodeId::new(i as u32), addr.clone()))
        .collect();
    let mut children: Vec<Child> = Vec::with_capacity(spec.nodes as usize);
    let mut trace_paths = Vec::with_capacity(spec.nodes as usize);
    for i in 0..spec.nodes {
        let trace = spec.dir.join(format!("node-{i}.jsonl"));
        let config = NodeConfig {
            id: NodeId::new(i),
            bind: node_addrs[i as usize].clone(),
            report: Some(report_addr.to_string()),
            seed: spec.seed + u64::from(i),
            policy: spec.policies[i as usize % spec.policies.len()],
            profile: spec.profiles[i as usize % spec.profiles.len()],
            driver: spec.driver,
            peers: peers.clone(),
            trace: Some(trace.to_string_lossy().into_owned()),
            trace_capacity: 1 << 16,
            loss: spec.loss,
            drop_first_assign: spec.drop_first_assign,
        };
        let config_path = spec.dir.join(format!("node-{i}.toml"));
        std::fs::write(&config_path, config.to_toml())?;
        trace_paths.push(trace);
        children.push(
            Command::new(&spec.node_binary)
                .arg(&config_path)
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()?,
        );
    }

    // Give every child time to bind before the first submission; a
    // datagram sent to an unbound port is silently gone.
    std::thread::sleep(Duration::from_millis(500));

    for (i, job) in workload.iter().enumerate() {
        let target: std::net::SocketAddr = node_addrs[i % node_addrs.len()].parse().unwrap();
        report.send_to(&aria_codec::encode(&LiveMsg::Submit { spec: *job }), target)?;
        std::thread::sleep(Duration::from_millis(5));
    }

    let started = Instant::now();
    let mut completed: BTreeMap<JobId, NodeId> = BTreeMap::new();
    let mut buf = vec![0u8; 64 * 1024];
    report.set_read_timeout(Some(Duration::from_millis(100)))?;
    while completed.len() < workload.len() && started.elapsed() < spec.deadline {
        let Ok((len, _src)) = report.recv_from(&mut buf) else { continue };
        if let Ok(LiveMsg::Done { job, node }) = aria_codec::decode(&buf[..len]) {
            completed.entry(job).or_insert(node);
        }
    }

    // Shut everything down; retry the datagram until the child exits in
    // case a copy is lost, then escalate to kill so the harness always
    // terminates inside its budget.
    for (i, child) in children.iter_mut().enumerate() {
        let target: std::net::SocketAddr = node_addrs[i].parse().unwrap();
        let mut exited = false;
        for _ in 0..50 {
            report.send_to(&aria_codec::encode(&LiveMsg::Shutdown), target)?;
            std::thread::sleep(Duration::from_millis(40));
            if child.try_wait()?.is_some() {
                exited = true;
                break;
            }
        }
        if !exited {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    // Merge: order all retained entries by (time, node, seq) and
    // re-sequence, producing one stream the schema validator accepts.
    let mut tagged: Vec<(u32, TraceEntry)> = Vec::new();
    let mut dropped = 0;
    let mut injected_drops = 0;
    for (i, path) in trace_paths.iter().enumerate() {
        let text = std::fs::read_to_string(path)?;
        let trace = schema::from_jsonl(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
        dropped += trace.dropped;
        for entry in trace.entries {
            if matches!(entry.event, ProbeEvent::MessageDropped { .. }) {
                injected_drops += 1;
            }
            tagged.push((i as u32, entry));
        }
    }
    tagged.sort_by_key(|(node, entry)| (entry.at, *node, entry.seq));
    let entries: Vec<TraceEntry> = tagged
        .into_iter()
        .enumerate()
        .map(|(seq, (_node, entry))| TraceEntry { seq: seq as u64, ..entry })
        .collect();
    let retransmits = entries
        .iter()
        .filter(|e| matches!(e.event, ProbeEvent::AssignRetransmit { .. }))
        .count() as u64;
    let lost_events =
        entries.iter().filter(|e| matches!(e.event, ProbeEvent::JobLost { .. })).count() as u64;
    let merged = Trace {
        meta: TraceMeta {
            scenario: "live-cluster".to_string(),
            seed: spec.seed,
            nodes: u64::from(spec.nodes),
            jobs: workload.len() as u64,
        },
        dropped,
        entries,
    };
    schema::validate(&merged)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
    let merged_path = spec.dir.join("cluster.jsonl");
    std::fs::write(&merged_path, schema::to_jsonl(&merged))?;

    Ok(ClusterOutcome {
        completed,
        merged,
        merged_path,
        retransmits,
        injected_drops,
        lost_events,
    })
}
