//! Multi-process localhost cluster harness.
//!
//! [`run_cluster`] spawns N `aria-node` processes on loopback UDP,
//! submits a JSDL workload (each job is written to disk as a JSDL
//! document and parsed back before submission — the live counterpart of
//! the paper's job-profile interchange), collects completion reports,
//! shuts the nodes down and merges their per-node probe traces into one
//! schema-valid JSONL stream that `cargo xtask probe timeline/summary`
//! reads exactly like a simulator trace.
//!
//! ## Chaos
//!
//! A [`ClusterSpec::churn`] schedule executes deterministic
//! process-level faults while the workload runs: SIGKILL a node at time
//! T, restart it (a fresh incarnation on the same port, a varied seed,
//! its own trace file) at T'. Scheduled per-node loss windows
//! ([`ClusterSpec::loss_windows`]) approximate asymmetric partitions on
//! loopback. Two oracles then read the run: job conservation
//! ([`ClusterOutcome::check_conservation`] — every job completes exactly
//! once, nothing lost) and liveness
//! ([`ClusterOutcome::check_liveness`] — every job submitted to a
//! surviving node completes within a bound derived from the timing
//! config, see [`liveness_bound`]).
//!
//! Every spawned child is held by a kill-on-drop guard: a harness panic
//! or oracle failure reaps the whole cluster instead of leaking node
//! processes. Trace collection tolerates killed incarnations by falling
//! back to the flushed `<trace>.part` stream (with a synthesized
//! header), and bounds how long it waits for any one node's file.

use crate::config::NodeConfig;
use aria_core::driver::{DriverConfig, LiveMsg};
use aria_grid::{JobId, JobSpec, NodeProfile, Policy};
use aria_jsdl::JobDefinition;
use aria_overlay::NodeId;
use aria_probe::schema;
use aria_probe::{ProbeEvent, Trace, TraceEntry, TraceMeta};
use aria_sim::SimDuration;
use std::collections::BTreeMap;
use std::io;
use std::net::UdpSocket;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// One scheduled process-level fault, relative to workload start.
#[derive(Debug, Clone, Copy)]
pub struct ChurnEvent {
    /// When (since the first submission) the action fires.
    pub at: Duration,
    /// What happens.
    pub action: ChurnAction,
}

/// A process-level fault the harness injects.
#[derive(Debug, Clone, Copy)]
pub enum ChurnAction {
    /// SIGKILL the node — no shutdown handshake, no trace finalization.
    Kill(u32),
    /// Start a fresh incarnation of a killed node on its original port.
    Restart(u32),
}

/// What to run: node count, workload, fault knobs and file layout.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of nodes to spawn.
    pub nodes: u32,
    /// The workload; each spec takes the JSDL round trip before submission.
    pub jobs: Vec<JobSpec>,
    /// Per-node profiles; cycled if shorter than `nodes`.
    pub profiles: Vec<NodeProfile>,
    /// Per-node policies; cycled if shorter than `nodes`.
    pub policies: Vec<Policy>,
    /// Driver configuration template (timing usually tightened for live
    /// runs; the defaults are the paper's simulation timescale).
    pub driver: DriverConfig,
    /// Inbound protocol-message loss probability injected at each node.
    pub loss: f64,
    /// Per-node scheduled loss windows `(node, from_ms, until_ms)`
    /// since that node's start: `loss` applies only inside the window.
    /// Nodes not listed are lossy for their whole run (when `loss > 0`).
    pub loss_windows: Vec<(u32, u64, u64)>,
    /// Deterministically drop the first inbound ASSIGN at every node.
    pub drop_first_assign: bool,
    /// Base RNG seed; node k runs with `seed + k` (restarted
    /// incarnations perturb it further).
    pub seed: u64,
    /// Gap between successive job submissions.
    pub submit_gap: Duration,
    /// Nodes that receive submissions (round-robin); empty = all nodes.
    /// Chaos runs keep this disjoint from kill victims: a job whose
    /// initiator dies is unrecoverable by design (§III-D recovers
    /// delegations, not initiators).
    pub submit_to: Vec<u32>,
    /// The fault schedule, executed while the workload runs.
    pub churn: Vec<ChurnEvent>,
    /// Scratch directory for configs, JSDL files and traces.
    pub dir: PathBuf,
    /// Path to the `aria-node` binary.
    pub node_binary: PathBuf,
    /// Wall-clock budget for the whole run.
    pub deadline: Duration,
}

/// What the run produced.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// Completion reports: which node finished each job.
    pub completed: BTreeMap<JobId, NodeId>,
    /// Wall-clock submission→completion latency per job.
    pub latencies: BTreeMap<JobId, Duration>,
    /// The merged, re-sequenced, schema-validated probe trace.
    pub merged: Trace,
    /// Path the merged JSONL was written to (`cluster.jsonl`).
    pub merged_path: PathBuf,
    /// ASSIGN retransmissions observed across the cluster.
    pub retransmits: u64,
    /// Fault-stage drops recorded across the cluster.
    pub injected_drops: u64,
    /// `job-lost` events observed (must be 0 for a conserving run).
    pub lost_events: u64,
    /// `peer-dead` events in the merged trace.
    pub peer_dead_events: u64,
    /// `peer-rejoined` events in the merged trace.
    pub peer_rejoined_events: u64,
    /// Highest per-node peak RSS (VmHWM) sampled before shutdown, in
    /// KiB; 0 where /proc is unavailable or every node was killed.
    pub max_node_rss_kb: u64,
}

impl ClusterOutcome {
    /// The job-conservation oracle over the merged trace: every
    /// submitted job completed on exactly one node, and nothing was
    /// lost. Returns a description of the first violation.
    pub fn check_conservation(&self, jobs: &[JobSpec]) -> Result<(), String> {
        if self.lost_events > 0 {
            return Err(format!("{} job-lost event(s) in the merged trace", self.lost_events));
        }
        let mut completions: BTreeMap<JobId, u64> = BTreeMap::new();
        for entry in &self.merged.entries {
            if let ProbeEvent::Completed { job, .. } = entry.event {
                *completions.entry(job).or_default() += 1;
            }
        }
        for spec in jobs {
            match completions.get(&spec.id).copied().unwrap_or(0) {
                1 => {}
                0 => return Err(format!("{} never completed", spec.id)),
                n => return Err(format!("{} completed {n} times", spec.id)),
            }
        }
        Ok(())
    }

    /// The liveness oracle: every submitted job was reported complete,
    /// and none took longer than `bound` wall-clock from submission.
    /// Run it with [`liveness_bound`] over specs whose initiators
    /// survive the churn schedule.
    pub fn check_liveness(&self, jobs: &[JobSpec], bound: Duration) -> Result<(), String> {
        for spec in jobs {
            match self.latencies.get(&spec.id) {
                None => return Err(format!("{} never reported completion", spec.id)),
                Some(lat) if *lat > bound => {
                    return Err(format!(
                        "{} took {:.1}s, liveness bound is {:.1}s",
                        spec.id,
                        lat.as_secs_f64(),
                        bound.as_secs_f64()
                    ))
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}

/// A wall-clock completion bound derived from the protocol timing: a
/// few discovery rounds (a satisfiable job on a non-starved cluster
/// rarely needs more — the full retry budget covers capacity
/// starvation, which is not what this oracle tests), the whole ASSIGN
/// retransmit ladder, failure detection, failsafe recovery with one
/// more discovery, then execution itself (three serialized ERTs cover
/// queueing behind recovered work), plus scheduling slack. Loose on
/// purpose — it is a liveness oracle ("completes on protocol
/// timescales"), not a performance SLO — but it stays well under a
/// typical harness deadline, so it still has teeth.
pub fn liveness_bound(driver: &DriverConfig, max_ert: Duration) -> Duration {
    let t = driver.aria.timing();
    let per_round = dur(t.accept_window) + dur(t.request_retry);
    let discovery = per_round * t.max_request_rounds.clamp(1, 3);
    let assign = dur(t.assign_ack_timeout) * (t.assign_max_retries + 1);
    let detection =
        dur(driver.membership.heartbeat_period) * (driver.membership.dead_misses + 1);
    let failsafe = dur(driver.failsafe_detection);
    2 * discovery + assign + detection + failsafe + 3 * max_ert + Duration::from_secs(5)
}

fn dur(d: SimDuration) -> Duration {
    Duration::from_millis(d.as_millis())
}

/// Owns a spawned node process and kills it on drop, so a harness panic
/// or early return reaps the whole cluster instead of leaking children.
struct ChildGuard(Child);

impl ChildGuard {
    fn kill_now(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }

    fn has_exited(&mut self) -> bool {
        matches!(self.0.try_wait(), Ok(Some(_)))
    }

    fn pid(&self) -> u32 {
        self.0.id()
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        self.kill_now();
    }
}

/// Peak RSS (VmHWM) of a process in KiB, from /proc; `None` off Linux
/// or once the process is gone.
fn peak_rss_kb(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// How long trace collection waits for any single node's final file
/// before falling back to its `.part` stream.
const TRACE_COLLECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Reads one incarnation's trace: the finalized file if it appears
/// within the timeout, else the flushed `.part` stream with a
/// synthesized header (a torn final line — a write cut by SIGKILL — is
/// dropped). `None` if the incarnation left nothing readable.
fn collect_trace(path: &Path, node: u32) -> io::Result<Option<Trace>> {
    let started = Instant::now();
    loop {
        if path.exists() {
            let text = std::fs::read_to_string(path)?;
            match schema::from_jsonl(&text) {
                Ok(trace) => return Ok(Some(trace)),
                // A shutdown may still be mid-write; retry within budget.
                Err(_) if started.elapsed() < TRACE_COLLECT_TIMEOUT => {}
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("node {node} trace {}: {e}", path.display()),
                    ))
                }
            }
        }
        let part = path.with_extension("jsonl.part");
        if started.elapsed() >= TRACE_COLLECT_TIMEOUT
            || (!path.exists() && part.exists() && started.elapsed() >= Duration::from_millis(200))
        {
            let Ok(text) = std::fs::read_to_string(&part) else { return Ok(None) };
            let mut lines: Vec<&str> = text.lines().collect();
            if !text.ends_with('\n') {
                lines.pop(); // torn by the kill mid-write
            }
            let meta = TraceMeta {
                scenario: "live-node".to_string(),
                seed: 0,
                nodes: 0,
                jobs: 0,
            };
            let mut doc = schema::header_line(&meta, lines.len() as u64, 0);
            doc.push('\n');
            for line in &lines {
                doc.push_str(line);
                doc.push('\n');
            }
            return match schema::from_jsonl(&doc) {
                Ok(trace) => Ok(Some(trace)),
                Err(e) => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("node {node} partial trace {}: {e}", part.display()),
                )),
            };
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Runs the cluster end to end. See the module docs for the phases.
pub fn run_cluster(spec: &ClusterSpec) -> io::Result<ClusterOutcome> {
    assert!(spec.nodes >= 2, "a cluster needs at least two nodes");
    assert!(!spec.jobs.is_empty(), "a cluster run needs a workload");
    std::fs::create_dir_all(&spec.dir)?;

    // The report socket stays bound for the whole run; node ports are
    // reserved by binding and immediately released (fine on loopback —
    // nothing else races for just-freed ephemeral ports in CI).
    let report = UdpSocket::bind("127.0.0.1:0")?;
    let report_addr = report.local_addr()?;
    let reservations: Vec<UdpSocket> =
        (0..spec.nodes).map(|_| UdpSocket::bind("127.0.0.1:0")).collect::<Result<_, _>>()?;
    let node_addrs: Vec<String> = reservations
        .iter()
        .map(|s| Ok(format!("127.0.0.1:{}", s.local_addr()?.port())))
        .collect::<io::Result<_>>()?;
    drop(reservations);

    // The JSDL leg: write each job out as a JSDL document and submit
    // what parses back, so the wire workload went through the standard
    // interchange format, not a Rust-only shortcut.
    let mut workload = Vec::with_capacity(spec.jobs.len());
    for job in &spec.jobs {
        let path = spec.dir.join(format!("job-{:06}.xml", job.id.raw()));
        let xml = JobDefinition::from_job_spec(job, Some(&format!("cluster-{}", job.id))).to_xml();
        std::fs::write(&path, &xml)?;
        let text = std::fs::read_to_string(&path)?;
        let parsed = JobDefinition::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        let round_tripped = parsed
            .to_job_spec(job.id)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        // JSDL carries ERT in whole seconds; a sub-second ERT would
        // silently become a zero-cost job. Refuse rather than run a
        // different workload than the caller asked for.
        if round_tripped != *job {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{} does not survive the JSDL round trip (sub-second ERT or deadline?): \
                     submitted {:?}, parsed back {:?}",
                    job.id, job, round_tripped
                ),
            ));
        }
        workload.push(round_tripped);
    }

    let peers: Vec<(NodeId, String)> = node_addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| (NodeId::new(i as u32), addr.clone()))
        .collect();

    // One incarnation's config + spawn; `incarnation` 0 is the initial
    // boot, restarts count up and get their own seed and trace file.
    let make_config = |i: u32, incarnation: u32| -> (NodeConfig, PathBuf, PathBuf) {
        let suffix =
            if incarnation == 0 { format!("node-{i}") } else { format!("node-{i}-r{incarnation}") };
        let trace = spec.dir.join(format!("{suffix}.jsonl"));
        let loss_window = spec
            .loss_windows
            .iter()
            .find(|(n, _, _)| *n == i)
            .map(|&(_, from, until)| (SimDuration::from_millis(from), SimDuration::from_millis(until)));
        let config = NodeConfig {
            id: NodeId::new(i),
            bind: node_addrs[i as usize].clone(),
            report: Some(report_addr.to_string()),
            seed: spec.seed + u64::from(i) + 1000 * u64::from(incarnation),
            policy: spec.policies[i as usize % spec.policies.len()],
            profile: spec.profiles[i as usize % spec.profiles.len()],
            driver: spec.driver,
            peers: peers.clone(),
            trace: Some(trace.to_string_lossy().into_owned()),
            trace_capacity: 1 << 16,
            loss: spec.loss,
            loss_window,
            drop_first_assign: spec.drop_first_assign,
        };
        (config, trace, spec.dir.join(format!("{suffix}.toml")))
    };
    let spawn = |config: &NodeConfig, config_path: &Path| -> io::Result<ChildGuard> {
        std::fs::write(config_path, config.to_toml())?;
        Ok(ChildGuard(
            Command::new(&spec.node_binary)
                .arg(config_path)
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()?,
        ))
    };

    let mut children: Vec<ChildGuard> = Vec::with_capacity(spec.nodes as usize);
    // Every incarnation's trace, tagged by node: killed incarnations
    // contribute their `.part` streams at merge time.
    let mut trace_paths: Vec<(u32, PathBuf)> = Vec::new();
    let mut incarnations = vec![0u32; spec.nodes as usize];
    for i in 0..spec.nodes {
        let (config, trace, config_path) = make_config(i, 0);
        trace_paths.push((i, trace));
        children.push(spawn(&config, &config_path)?);
    }

    // Give every child time to bind before the first submission; a
    // datagram sent to an unbound port is silently gone.
    std::thread::sleep(Duration::from_millis(500));

    let submit_targets: Vec<usize> = if spec.submit_to.is_empty() {
        (0..spec.nodes as usize).collect()
    } else {
        spec.submit_to.iter().map(|&n| n as usize).collect()
    };
    let mut churn: Vec<ChurnEvent> = spec.churn.clone();
    churn.sort_by_key(|ev| ev.at);
    let mut churn_next = 0usize;
    // A short workload can drain before the failure detector fires, so
    // the run also stays up long enough for every scheduled fault to
    // play out: a kill needs `dead_after` of silence before survivors
    // declare the corpse, a restart needs a few heartbeats to rejoin.
    let membership = &spec.driver.membership;
    let settle_until = churn
        .iter()
        .map(|ev| {
            ev.at
                + match ev.action {
                    ChurnAction::Kill(_) => {
                        Duration::from_millis(membership.dead_after().as_millis())
                    }
                    ChurnAction::Restart(_) => {
                        Duration::from_millis(membership.heartbeat_period.as_millis()) * 3
                    }
                }
                + Duration::from_secs(1)
        })
        .max()
        .unwrap_or(Duration::ZERO);

    // The main loop interleaves paced submission, the churn schedule
    // and completion collection, so kills land mid-workload.
    let started = Instant::now();
    let mut submitted_at: BTreeMap<JobId, Instant> = BTreeMap::new();
    let mut next_submit = 0usize;
    let mut completed: BTreeMap<JobId, NodeId> = BTreeMap::new();
    let mut latencies: BTreeMap<JobId, Duration> = BTreeMap::new();
    let mut max_node_rss_kb: u64 = 0;
    let mut buf = vec![0u8; 64 * 1024];
    report.set_read_timeout(Some(Duration::from_millis(20)))?;
    while (completed.len() < workload.len()
        || next_submit < workload.len()
        || started.elapsed() < settle_until)
        && started.elapsed() < spec.deadline
    {
        while churn_next < churn.len() && started.elapsed() >= churn[churn_next].at {
            match churn[churn_next].action {
                ChurnAction::Kill(victim) => {
                    // Sample the high-water mark before the process goes.
                    let pid = children[victim as usize].pid();
                    max_node_rss_kb = max_node_rss_kb.max(peak_rss_kb(pid).unwrap_or(0));
                    children[victim as usize].kill_now();
                }
                ChurnAction::Restart(node) => {
                    incarnations[node as usize] += 1;
                    let (config, trace, config_path) = make_config(node, incarnations[node as usize]);
                    trace_paths.push((node, trace));
                    children[node as usize] = spawn(&config, &config_path)?;
                }
            }
            churn_next += 1;
        }
        while next_submit < workload.len()
            && started.elapsed() >= spec.submit_gap * next_submit as u32
        {
            let job = &workload[next_submit];
            let target_node = submit_targets[next_submit % submit_targets.len()];
            let target: std::net::SocketAddr = node_addrs[target_node].parse().unwrap();
            report.send_to(&aria_codec::encode(&LiveMsg::Submit { spec: *job }), target)?;
            submitted_at.insert(job.id, Instant::now());
            next_submit += 1;
        }
        let Ok((len, _src)) = report.recv_from(&mut buf) else { continue };
        if let Ok(LiveMsg::Done { job, node }) = aria_codec::decode(&buf[..len]) {
            if completed.insert(job, node).is_none() {
                if let Some(at) = submitted_at.get(&job) {
                    latencies.insert(job, at.elapsed());
                }
            }
        }
    }

    // Memory high-water sample of everything still running, then shut
    // down; retry the datagram until the child exits in case a copy is
    // lost, then escalate to kill so the harness always terminates
    // inside its budget.
    for child in &children {
        max_node_rss_kb = max_node_rss_kb.max(peak_rss_kb(child.pid()).unwrap_or(0));
    }
    for (i, child) in children.iter_mut().enumerate() {
        let target: std::net::SocketAddr = node_addrs[i].parse().unwrap();
        let mut exited = child.has_exited();
        for _ in 0..50 {
            if exited {
                break;
            }
            report.send_to(&aria_codec::encode(&LiveMsg::Shutdown), target)?;
            std::thread::sleep(Duration::from_millis(40));
            exited = child.has_exited();
        }
        if !exited {
            child.kill_now();
        }
    }

    // Merge: order all retained entries by (time, node, seq) and
    // re-sequence, producing one stream the schema validator accepts.
    // Times are per-incarnation (each process clock starts at zero), so
    // the merged order is per-node-causal, not globally causal — the
    // oracles only count events, they never compare cross-node times.
    let mut tagged: Vec<(u32, TraceEntry)> = Vec::new();
    let mut dropped = 0;
    let mut injected_drops = 0;
    for (node, path) in &trace_paths {
        let Some(trace) = collect_trace(path, *node)? else { continue };
        dropped += trace.dropped;
        for entry in trace.entries {
            if matches!(entry.event, ProbeEvent::MessageDropped { .. }) {
                injected_drops += 1;
            }
            tagged.push((*node, entry));
        }
    }
    tagged.sort_by_key(|(node, entry)| (entry.at, *node, entry.seq));
    let entries: Vec<TraceEntry> = tagged
        .into_iter()
        .enumerate()
        .map(|(seq, (_node, entry))| TraceEntry { seq: seq as u64, ..entry })
        .collect();
    let count = |pred: fn(&ProbeEvent) -> bool| -> u64 {
        entries.iter().filter(|e| pred(&e.event)).count() as u64
    };
    let retransmits = count(|e| matches!(e, ProbeEvent::AssignRetransmit { .. }));
    let lost_events = count(|e| matches!(e, ProbeEvent::JobLost { .. }));
    let peer_dead_events = count(|e| matches!(e, ProbeEvent::PeerDead { .. }));
    let peer_rejoined_events = count(|e| matches!(e, ProbeEvent::PeerRejoined { .. }));
    let merged = Trace {
        meta: TraceMeta {
            scenario: "live-cluster".to_string(),
            seed: spec.seed,
            nodes: u64::from(spec.nodes),
            jobs: workload.len() as u64,
        },
        dropped,
        entries,
    };
    schema::validate(&merged)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
    let merged_path = spec.dir.join("cluster.jsonl");
    std::fs::write(&merged_path, schema::to_jsonl(&merged))?;

    Ok(ClusterOutcome {
        completed,
        latencies,
        merged,
        merged_path,
        retransmits,
        injected_drops,
        lost_events,
        peer_dead_events,
        peer_rejoined_events,
        max_node_rss_kb,
    })
}
