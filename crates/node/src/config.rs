//! Node runtime configuration: a strict TOML-subset parser (no external
//! dependency; the workspace builds offline) and the [`NodeConfig`] it
//! produces.
//!
//! The accepted grammar covers exactly what node config files need:
//! `[section]` headers, `key = value` pairs with quoted-string, integer,
//! float and boolean values, blank lines and `#` comments. Anything else
//! is a hard error — a config that silently half-parses is worse than
//! one that refuses to start a node.
//!
//! The `[timing]` section deserializes into the same
//! [`ProtocolTiming`] slice the simulator's `WorldConfig` sources, so a
//! live deployment and a simulation of it share one set of protocol
//! timing knobs by construction.

use aria_core::config::ProtocolTiming;
use aria_core::driver::{DriverConfig, MembershipConfig};
use aria_core::AriaConfig;
use aria_grid::{Architecture, NodeProfile, OperatingSystem, PerfIndex, Policy};
use aria_overlay::NodeId;
use aria_sim::SimDuration;
use std::collections::BTreeMap;
use std::fmt;

/// A parse or validation failure, with enough context to fix the file.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError(msg.into()))
}

/// One parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

type Section = BTreeMap<String, Value>;

/// Parses the TOML subset into `section → key → value` maps. Keys
/// before any `[section]` header land in the `""` section.
fn parse_toml(text: &str) -> Result<BTreeMap<String, Section>, ConfigError> {
    let mut sections: BTreeMap<String, Section> = BTreeMap::new();
    let mut current = String::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let line = match line.find('#') {
            // A `#` inside a quoted string is content, not a comment.
            Some(pos) if line[..pos].matches('"').count() % 2 == 0 => line[..pos].trim_end(),
            _ => line,
        };
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        if let Some(name) = line.strip_prefix('[') {
            let Some(name) = name.strip_suffix(']') else {
                return err(format!("line {n}: unterminated section header"));
            };
            current = name.trim().to_string();
            sections.entry(current.clone()).or_default();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return err(format!("line {n}: expected `key = value`"));
        };
        let key = key.trim().to_string();
        let value = parse_value(value.trim())
            .ok_or_else(|| ConfigError(format!("line {n}: unparseable value `{}`", value.trim())))?;
        let section = sections.entry(current.clone()).or_default();
        if section.insert(key.clone(), value).is_some() {
            return err(format!("line {n}: duplicate key `{key}`"));
        }
    }
    Ok(sections)
}

fn parse_value(text: &str) -> Option<Value> {
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner.strip_suffix('"')?;
        if inner.contains('"') {
            return None; // no escapes in the subset — keep strings plain
        }
        return Some(Value::Str(inner.to_string()));
    }
    match text {
        "true" => return Some(Value::Bool(true)),
        "false" => return Some(Value::Bool(false)),
        _ => {}
    }
    if text.contains('.') {
        return text.parse().ok().map(Value::Float);
    }
    text.parse().ok().map(Value::Int)
}

/// A fully validated node runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// This node's overlay id.
    pub id: NodeId,
    /// UDP bind address, e.g. `127.0.0.1:17000`.
    pub bind: String,
    /// Where completion (`Done`) frames are reported, if anywhere.
    pub report: Option<String>,
    /// RNG seed for fanout sampling and loss injection.
    pub seed: u64,
    /// Local scheduling policy.
    pub policy: Policy,
    /// The node's resource profile.
    pub profile: NodeProfile,
    /// Protocol configuration handed to the driver.
    pub driver: DriverConfig,
    /// Static peer list: the full overlay membership with addresses.
    pub peers: Vec<(NodeId, String)>,
    /// Probe trace output path (JSONL), if tracing is on.
    pub trace: Option<String>,
    /// Ring capacity for the trace recorder.
    pub trace_capacity: usize,
    /// Injected inbound loss probability for protocol messages, applied
    /// at the codec boundary (`0.0` = lossless).
    pub loss: f64,
    /// Optional window (since node start) outside which `loss` does not
    /// apply: scheduled asymmetric loss approximates a partition on
    /// loopback (each side can be given a different window).
    pub loss_window: Option<(SimDuration, SimDuration)>,
    /// Deterministic fault knob: drop the first inbound ASSIGN once.
    pub drop_first_assign: bool,
}

impl NodeConfig {
    /// Parses and validates a config file's text.
    pub fn parse(text: &str) -> Result<NodeConfig, ConfigError> {
        let sections = parse_toml(text)?;
        for name in sections.keys() {
            if !matches!(name.as_str(), "node" | "timing" | "peers") {
                return err(format!("unknown section [{name}]"));
            }
        }
        let node = sections.get("node").ok_or(ConfigError("missing [node] section".into()))?;
        let empty = Section::new();
        let timing = sections.get("timing").unwrap_or(&empty);
        let peers = sections.get("peers").unwrap_or(&empty);

        let id = NodeId::new(get_int(node, "node", "id")?.try_into().map_err(|_| {
            ConfigError("node.id must fit in u32".into())
        })?);
        let bind = get_str(node, "node", "bind")?;
        validate_addr("node.bind", &bind)?;
        let report = opt_str(node, "report");
        if let Some(report) = &report {
            validate_addr("node.report", report)?;
        }
        let seed = opt_u64(node, "node", "seed")?.unwrap_or(0);
        let policy = parse_policy(&opt_str(node, "policy").unwrap_or_else(|| "fcfs".into()))?;
        let profile = NodeProfile::new(
            parse_arch(&opt_str(node, "arch").unwrap_or_else(|| "amd64".into()))?,
            parse_os(&opt_str(node, "os").unwrap_or_else(|| "linux".into()))?,
            opt_u16(node, "node", "memory_gb")?.unwrap_or(64),
            opt_u16(node, "node", "disk_gb")?.unwrap_or(1000),
            PerfIndex::new(opt_float(node, "perf").unwrap_or(1.0))
                .map_err(|e| ConfigError(format!("node.perf: {e:?}")))?,
        );

        let defaults = ProtocolTiming::default();
        let slice = ProtocolTiming {
            accept_window: ms(timing, "accept_window_ms", defaults.accept_window)?,
            request_retry: ms(timing, "request_retry_ms", defaults.request_retry)?,
            max_request_rounds: opt_u32(timing, "timing", "max_request_rounds")?
                .unwrap_or(defaults.max_request_rounds),
            assign_ack_timeout: ms(timing, "assign_ack_timeout_ms", defaults.assign_ack_timeout)?,
            assign_max_retries: opt_u32(timing, "timing", "assign_max_retries")?
                .unwrap_or(defaults.assign_max_retries),
        };
        let mut aria = AriaConfig::default().with_timing(slice);
        let inform = ms(timing, "inform_period_ms", aria.inform_period)?;
        if inform.is_zero() {
            return err("timing.inform_period_ms must be positive");
        }
        aria.inform_period = inform;
        if let Some(Value::Bool(on)) = timing.get("rescheduling") {
            aria.rescheduling = *on;
        }
        let mdef = MembershipConfig::default();
        let membership = MembershipConfig {
            // ZERO disables the failure detector.
            heartbeat_period: ms(timing, "heartbeat_ms", mdef.heartbeat_period)?,
            suspect_misses: opt_u32(timing, "timing", "suspect_misses")?
                .unwrap_or(mdef.suspect_misses),
            dead_misses: opt_u32(timing, "timing", "dead_misses")?.unwrap_or(mdef.dead_misses),
        };
        if !membership.heartbeat_period.is_zero() {
            if membership.suspect_misses == 0 {
                return err("timing.suspect_misses must be at least 1");
            }
            if membership.dead_misses <= membership.suspect_misses {
                return err(format!(
                    "timing.dead_misses ({}) must exceed timing.suspect_misses ({})",
                    membership.dead_misses, membership.suspect_misses
                ));
            }
        }
        let driver = DriverConfig {
            aria,
            failsafe: true,
            failsafe_detection: ms(
                timing,
                "failsafe_detection_ms",
                DriverConfig::default().failsafe_detection,
            )?,
            membership,
        };

        let mut peer_list = Vec::new();
        for (key, value) in peers {
            let raw: u32 = key
                .parse()
                .map_err(|_| ConfigError(format!("peers key `{key}` is not a node id")))?;
            let Value::Str(addr) = value else {
                return err(format!("peers.{key} must be a \"host:port\" string"));
            };
            validate_addr(&format!("peers.{key}"), addr)?;
            peer_list.push((NodeId::new(raw), addr.clone()));
        }
        if !peer_list.iter().any(|(peer, _)| *peer == id) {
            return err(format!("peer list does not contain this node (id {})", id.raw()));
        }

        let loss = opt_float(node, "loss").unwrap_or(0.0);
        if !(0.0..1.0).contains(&loss) {
            return err(format!("node.loss {loss} must be in [0, 1)"));
        }
        let loss_window = match (
            opt_u64(node, "node", "loss_from_ms")?,
            opt_u64(node, "node", "loss_until_ms")?,
        ) {
            (None, None) => None,
            (Some(from), Some(until)) if until > from => Some((
                SimDuration::from_millis(from),
                SimDuration::from_millis(until),
            )),
            (Some(from), Some(until)) => {
                return err(format!(
                    "node.loss_until_ms ({until}) must exceed node.loss_from_ms ({from})"
                ))
            }
            _ => return err("node.loss_from_ms and node.loss_until_ms must be set together"),
        };

        let trace_capacity = match opt_u64(node, "node", "trace_capacity")? {
            None => 1 << 16,
            Some(0) => return err("node.trace_capacity must be at least 1"),
            Some(v) => v as usize,
        };

        Ok(NodeConfig {
            id,
            bind,
            report,
            seed,
            policy,
            profile,
            driver,
            peers: peer_list,
            trace: opt_str(node, "trace"),
            trace_capacity,
            loss,
            loss_window,
            drop_first_assign: matches!(node.get("drop_first_assign"), Some(Value::Bool(true))),
        })
    }

    /// Renders this configuration back to the accepted file format (the
    /// cluster harness writes per-node files with this).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("[node]\n");
        out.push_str(&format!("id = {}\n", self.id.raw()));
        out.push_str(&format!("bind = \"{}\"\n", self.bind));
        if let Some(report) = &self.report {
            out.push_str(&format!("report = \"{report}\"\n"));
        }
        out.push_str(&format!("seed = {}\n", self.seed));
        out.push_str(&format!("policy = \"{}\"\n", policy_name(self.policy)));
        out.push_str(&format!("arch = \"{}\"\n", arch_name(self.profile.arch)));
        out.push_str(&format!("os = \"{}\"\n", os_name(self.profile.os)));
        out.push_str(&format!("memory_gb = {}\n", self.profile.memory_gb));
        out.push_str(&format!("disk_gb = {}\n", self.profile.disk_gb));
        out.push_str(&format!("perf = {:.3}\n", self.profile.performance.value()));
        if let Some(trace) = &self.trace {
            out.push_str(&format!("trace = \"{trace}\"\n"));
        }
        out.push_str(&format!("trace_capacity = {}\n", self.trace_capacity));
        if self.loss > 0.0 {
            out.push_str(&format!("loss = {:.4}\n", self.loss));
        }
        if let Some((from, until)) = self.loss_window {
            out.push_str(&format!("loss_from_ms = {}\n", from.as_millis()));
            out.push_str(&format!("loss_until_ms = {}\n", until.as_millis()));
        }
        if self.drop_first_assign {
            out.push_str("drop_first_assign = true\n");
        }
        let t = self.driver.aria.timing();
        out.push_str("\n[timing]\n");
        out.push_str(&format!("accept_window_ms = {}\n", t.accept_window.as_millis()));
        out.push_str(&format!("request_retry_ms = {}\n", t.request_retry.as_millis()));
        out.push_str(&format!("max_request_rounds = {}\n", t.max_request_rounds));
        out.push_str(&format!("assign_ack_timeout_ms = {}\n", t.assign_ack_timeout.as_millis()));
        out.push_str(&format!("assign_max_retries = {}\n", t.assign_max_retries));
        out.push_str(&format!(
            "inform_period_ms = {}\n",
            self.driver.aria.inform_period.as_millis()
        ));
        out.push_str(&format!("rescheduling = {}\n", self.driver.aria.rescheduling));
        out.push_str(&format!(
            "failsafe_detection_ms = {}\n",
            self.driver.failsafe_detection.as_millis()
        ));
        let m = self.driver.membership;
        out.push_str(&format!("heartbeat_ms = {}\n", m.heartbeat_period.as_millis()));
        out.push_str(&format!("suspect_misses = {}\n", m.suspect_misses));
        out.push_str(&format!("dead_misses = {}\n", m.dead_misses));
        out.push_str("\n[peers]\n");
        for (peer, addr) in &self.peers {
            out.push_str(&format!("{} = \"{addr}\"\n", peer.raw()));
        }
        out
    }
}

fn get_str(section: &Section, name: &str, key: &str) -> Result<String, ConfigError> {
    match section.get(key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(_) => err(format!("{name}.{key} must be a string")),
        None => err(format!("missing {name}.{key}")),
    }
}

fn opt_str(section: &Section, key: &str) -> Option<String> {
    match section.get(key) {
        Some(Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn get_int(section: &Section, name: &str, key: &str) -> Result<i64, ConfigError> {
    match section.get(key) {
        Some(Value::Int(v)) => Ok(*v),
        Some(_) => err(format!("{name}.{key} must be an integer")),
        None => err(format!("missing {name}.{key}")),
    }
}

/// Optional unsigned integer: present-but-negative, overflowing or
/// mistyped values are typed errors, never silent wraps or clamps.
fn opt_u64(section: &Section, name: &str, key: &str) -> Result<Option<u64>, ConfigError> {
    match section.get(key) {
        None => Ok(None),
        Some(Value::Int(v)) => u64::try_from(*v)
            .map(Some)
            .map_err(|_| ConfigError(format!("{name}.{key} must be non-negative (got {v})"))),
        Some(_) => err(format!("{name}.{key} must be an integer")),
    }
}

fn opt_u32(section: &Section, name: &str, key: &str) -> Result<Option<u32>, ConfigError> {
    match section.get(key) {
        None => Ok(None),
        Some(Value::Int(v)) => u32::try_from(*v).map(Some).map_err(|_| {
            ConfigError(format!("{name}.{key} must be a non-negative 32-bit integer (got {v})"))
        }),
        Some(_) => err(format!("{name}.{key} must be an integer")),
    }
}

fn opt_u16(section: &Section, name: &str, key: &str) -> Result<Option<u16>, ConfigError> {
    match section.get(key) {
        None => Ok(None),
        Some(Value::Int(v)) => u16::try_from(*v).map(Some).map_err(|_| {
            ConfigError(format!("{name}.{key} must be a non-negative 16-bit integer (got {v})"))
        }),
        Some(_) => err(format!("{name}.{key} must be an integer")),
    }
}

/// Validates a `host:port` socket address: non-empty host, 16-bit port.
fn validate_addr(what: &str, addr: &str) -> Result<(), ConfigError> {
    let Some((host, port)) = addr.rsplit_once(':') else {
        return err(format!("{what} `{addr}` must be `host:port`"));
    };
    if host.is_empty() {
        return err(format!("{what} `{addr}` has an empty host"));
    }
    if port.parse::<u16>().is_err() {
        return err(format!("{what} `{addr}` has an invalid port `{port}`"));
    }
    Ok(())
}

fn opt_float(section: &Section, key: &str) -> Option<f64> {
    match section.get(key) {
        Some(Value::Float(v)) => Some(*v),
        Some(Value::Int(v)) => Some(*v as f64),
        _ => None,
    }
}

fn ms(section: &Section, key: &str, default: SimDuration) -> Result<SimDuration, ConfigError> {
    match section.get(key) {
        None => Ok(default),
        Some(Value::Int(v)) if *v >= 0 => Ok(SimDuration::from_millis(*v as u64)),
        Some(_) => err(format!("timing.{key} must be a non-negative integer (milliseconds)")),
    }
}

fn parse_policy(name: &str) -> Result<Policy, ConfigError> {
    Ok(match name {
        "fcfs" => Policy::Fcfs,
        "sjf" => Policy::Sjf,
        "ljf" => Policy::Ljf,
        "backfill" => Policy::Backfill,
        "priority" => Policy::Priority,
        "edf" => Policy::Edf,
        other => return err(format!("unknown policy `{other}`")),
    })
}

fn policy_name(policy: Policy) -> &'static str {
    match policy {
        Policy::Fcfs => "fcfs",
        Policy::Sjf => "sjf",
        Policy::Ljf => "ljf",
        Policy::Backfill => "backfill",
        Policy::Priority => "priority",
        Policy::Edf => "edf",
    }
}

fn parse_arch(name: &str) -> Result<Architecture, ConfigError> {
    Ok(match name {
        "amd64" => Architecture::Amd64,
        "power" => Architecture::Power,
        "ia64" => Architecture::Ia64,
        "sparc" => Architecture::Sparc,
        "mips" => Architecture::Mips,
        "nec" => Architecture::Nec,
        other => return err(format!("unknown architecture `{other}`")),
    })
}

fn arch_name(arch: Architecture) -> &'static str {
    match arch {
        Architecture::Amd64 => "amd64",
        Architecture::Power => "power",
        Architecture::Ia64 => "ia64",
        Architecture::Sparc => "sparc",
        Architecture::Mips => "mips",
        Architecture::Nec => "nec",
    }
}

fn parse_os(name: &str) -> Result<OperatingSystem, ConfigError> {
    Ok(match name {
        "linux" => OperatingSystem::Linux,
        "solaris" => OperatingSystem::Solaris,
        "unix" => OperatingSystem::Unix,
        "windows" => OperatingSystem::Windows,
        "bsd" => OperatingSystem::Bsd,
        other => return err(format!("unknown operating system `{other}`")),
    })
}

fn os_name(os: OperatingSystem) -> &'static str {
    match os {
        OperatingSystem::Linux => "linux",
        OperatingSystem::Solaris => "solaris",
        OperatingSystem::Unix => "unix",
        OperatingSystem::Windows => "windows",
        OperatingSystem::Bsd => "bsd",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# A two-node loopback deployment.
[node]
id = 0
bind = "127.0.0.1:17000"
report = "127.0.0.1:16999"
seed = 7
policy = "sjf"
memory_gb = 32
disk_gb = 500
perf = 1.5
trace = "/tmp/aria-node-0.jsonl"
loss = 0.05
drop_first_assign = true

[timing]
accept_window_ms = 300
assign_ack_timeout_ms = 200
inform_period_ms = 2000

[peers]
0 = "127.0.0.1:17000"
1 = "127.0.0.1:17001"
"#;

    #[test]
    fn sample_parses_and_round_trips() {
        let config = NodeConfig::parse(SAMPLE).expect("sample parses");
        assert_eq!(config.id, NodeId::new(0));
        assert_eq!(config.policy, Policy::Sjf);
        assert_eq!(config.profile.memory_gb, 32);
        assert_eq!(config.peers.len(), 2);
        assert!(config.drop_first_assign);
        assert!((config.loss - 0.05).abs() < 1e-9);
        // Overridden timing lands; untouched knobs keep their defaults.
        let t = config.driver.aria.timing();
        assert_eq!(t.accept_window, SimDuration::from_millis(300));
        assert_eq!(t.assign_ack_timeout, SimDuration::from_millis(200));
        assert_eq!(t.request_retry, ProtocolTiming::default().request_retry);
        assert_eq!(config.driver.aria.inform_period, SimDuration::from_secs(2));
        // to_toml → parse is the identity on the validated struct.
        let again = NodeConfig::parse(&config.to_toml()).expect("rendered config parses");
        assert_eq!(again, config);
    }

    #[test]
    fn strictness_rejects_bad_inputs() {
        assert!(NodeConfig::parse("").is_err(), "missing [node]");
        assert!(NodeConfig::parse("[node]\nid = 0\n").is_err(), "missing bind");
        assert!(
            NodeConfig::parse("[node\nid = 0\n").is_err(),
            "unterminated section header"
        );
        assert!(
            NodeConfig::parse("[node]\nid = 0\nid = 1\nbind = \"a\"\n[peers]\n0 = \"a\"")
                .is_err(),
            "duplicate key"
        );
        assert!(
            NodeConfig::parse("[node]\nid = 0\nbind = \"a\"\n[typo]\n[peers]\n0 = \"a\"")
                .is_err(),
            "unknown section"
        );
        assert!(
            NodeConfig::parse("[node]\nid = 0\nbind = \"a\"\nloss = 1.5\n[peers]\n0 = \"a\"")
                .is_err(),
            "loss out of range"
        );
        assert!(
            NodeConfig::parse("[node]\nid = 0\nbind = \"a\"\n[peers]\n1 = \"b\"").is_err(),
            "peer list must include self"
        );
    }

    #[test]
    fn comments_and_quoted_hashes_are_handled() {
        let text = "[node]\nid = 0 # trailing comment\nbind = \"127.0.0.1:12\"\ntrace = \"/tmp/a#b.jsonl\"\n[peers]\n0 = \"127.0.0.1:12\"\n";
        let config = NodeConfig::parse(text).expect("parses");
        assert_eq!(config.trace.as_deref(), Some("/tmp/a#b.jsonl"));
    }

    /// Every malformed input yields a typed [`ConfigError`] naming the
    /// offending key — never a panic, wrap or silent clamp.
    #[test]
    fn error_paths_are_typed() {
        fn parse_err(text: &str) -> ConfigError {
            NodeConfig::parse(text).expect_err("must be rejected")
        }
        fn with_peer(node_extra: &str, timing: &str) -> String {
            format!(
                "[node]\nid = 0\nbind = \"127.0.0.1:17000\"\n{node_extra}\n[timing]\n{timing}\n[peers]\n0 = \"127.0.0.1:17000\"\n"
            )
        }

        // Malformed peer addresses.
        let e = parse_err(
            "[node]\nid = 0\nbind = \"127.0.0.1:17000\"\n[peers]\n0 = \"127.0.0.1:17000\"\n1 = \"no-port-here\"\n",
        );
        assert!(e.0.contains("peers.1"), "peer error names the key: {e}");
        let e = parse_err(
            "[node]\nid = 0\nbind = \"127.0.0.1:17000\"\n[peers]\n0 = \"127.0.0.1:17000\"\n1 = \"host:99999\"\n",
        );
        assert!(e.0.contains("invalid port"), "overflowing port is typed: {e}");
        let e = parse_err("[node]\nid = 0\nbind = \"127.0.0.1:17000\"\n[peers]\n0 = 17000\n");
        assert!(e.0.contains("peers.0"), "non-string peer value: {e}");

        // Negative and overflowing timing values.
        let e = parse_err(&with_peer("", "accept_window_ms = -5"));
        assert!(e.0.contains("accept_window_ms"), "{e}");
        let e = parse_err(&with_peer("", "max_request_rounds = -1"));
        assert!(e.0.contains("max_request_rounds"), "{e}");
        let e = parse_err(&with_peer("", "assign_max_retries = 4294967296"));
        assert!(e.0.contains("assign_max_retries"), "{e}");
        let e = parse_err(&with_peer("", "inform_period_ms = 0"));
        assert!(e.0.contains("inform_period_ms"), "{e}");
        let e = parse_err(&with_peer("", "heartbeat_ms = -100"));
        assert!(e.0.contains("heartbeat_ms"), "{e}");
        let e = parse_err(&with_peer("", "suspect_misses = 0"));
        assert!(e.0.contains("suspect_misses"), "{e}");
        let e = parse_err(&with_peer("", "suspect_misses = 5\ndead_misses = 5"));
        assert!(e.0.contains("dead_misses"), "{e}");

        // Negative/overflow node values that were previously clamped.
        let e = parse_err(&with_peer("seed = -3", ""));
        assert!(e.0.contains("seed"), "{e}");
        let e = parse_err(&with_peer("memory_gb = 70000", ""));
        assert!(e.0.contains("memory_gb"), "{e}");
        let e = parse_err(&with_peer("disk_gb = -1", ""));
        assert!(e.0.contains("disk_gb"), "{e}");
        let e = parse_err(&with_peer("trace_capacity = 0", ""));
        assert!(e.0.contains("trace_capacity"), "{e}");

        // Loss windows must be well-formed pairs.
        let e = parse_err(&with_peer("loss = 0.5\nloss_from_ms = 100", ""));
        assert!(e.0.contains("loss_from_ms"), "{e}");
        let e = parse_err(&with_peer("loss = 0.5\nloss_from_ms = 200\nloss_until_ms = 100", ""));
        assert!(e.0.contains("loss_until_ms"), "{e}");

        // Unknown section stays a hard error.
        let e = parse_err(
            "[node]\nid = 0\nbind = \"127.0.0.1:17000\"\n[chaos]\nx = 1\n[peers]\n0 = \"127.0.0.1:17000\"\n",
        );
        assert!(e.0.contains("[chaos]"), "{e}");
    }

    #[test]
    fn membership_and_loss_window_round_trip() {
        let text = "[node]\nid = 0\nbind = \"127.0.0.1:17000\"\nloss = 0.25\nloss_from_ms = 2000\nloss_until_ms = 6000\n[timing]\nheartbeat_ms = 500\nsuspect_misses = 2\ndead_misses = 6\n[peers]\n0 = \"127.0.0.1:17000\"\n";
        let config = NodeConfig::parse(text).expect("parses");
        let m = config.driver.membership;
        assert_eq!(m.heartbeat_period, SimDuration::from_millis(500));
        assert_eq!(m.suspect_misses, 2);
        assert_eq!(m.dead_misses, 6);
        assert_eq!(
            config.loss_window,
            Some((SimDuration::from_secs(2), SimDuration::from_secs(6)))
        );
        let again = NodeConfig::parse(&config.to_toml()).expect("rendered config parses");
        assert_eq!(again, config);
        // heartbeat_ms = 0 disables the detector and skips the
        // misses-ordering validation.
        let off = "[node]\nid = 0\nbind = \"127.0.0.1:17000\"\n[timing]\nheartbeat_ms = 0\nsuspect_misses = 9\ndead_misses = 1\n[peers]\n0 = \"127.0.0.1:17000\"\n";
        let config = NodeConfig::parse(off).expect("disabled detector parses");
        assert!(config.driver.membership.heartbeat_period.is_zero());
    }
}
