//! The live node event loop: one UDP socket, one timer wheel, one
//! sans-io [`NodeDriver`].
//!
//! The loop is deliberately primitive — blocking receives with a
//! deadline-derived timeout, no async runtime, no threads. A node's
//! steady-state traffic is a handful of datagrams per second; what
//! matters is that every protocol *decision* stays inside the driver
//! (and through it the shared `aria_core::logic` kernels), leaving this
//! file nothing but mechanical effect execution:
//!
//! * `Send` outputs are encoded with `aria-codec` and written to the
//!   socket;
//! * `StartTimer` outputs are armed on the [`TimerWheel`] against the
//!   monotonic clock (an [`Instant`] anchor mapped to [`SimTime`]
//!   milliseconds — never wall-clock time, which can step);
//! * `Probe` outputs land in a bounded [`RingRecorder`] and are flushed
//!   as `aria-probe-trace` JSONL on shutdown, so `cargo xtask probe`
//!   reads live traces and simulator traces identically.
//!
//! Inbound datagrams cross the codec boundary, then an optional fault
//! stage (probabilistic loss — optionally confined to a scheduled
//! window, approximating an asymmetric partition — and the
//! deterministic `drop_first_assign` knob, the live counterparts of the
//! simulator's `FaultPlan`), and only then reach the driver. Loss
//! applies strictly to protocol messages; harness control frames
//! (`Submit`, `Shutdown`) are never dropped.
//!
//! When tracing is on, every probe event is also appended (and flushed)
//! to `<trace>.part` as it happens, so a SIGKILLed node still leaves
//! its events on disk for the chaos harness; a clean shutdown writes
//! the final `<trace>` file and removes the partial.

use crate::config::NodeConfig;
use crate::timer::TimerWheel;
use aria_core::driver::{Input, LiveMsg, NodeDriver, Output};
use aria_grid::JobId;
use aria_probe::schema;
use aria_probe::{Probe, ProbeEvent, RingRecorder, TraceMeta};
use aria_probe::TraceEntry;
use aria_sim::{SimRng, SimTime};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::{Duration, Instant};

/// What a finished node run observed, for callers embedding the runtime
/// (the binary prints it; tests assert on it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Jobs that finished executing on this node.
    pub completed: u64,
    /// Jobs this node initiated and abandoned (retry budget exhausted).
    pub abandoned: u64,
    /// Jobs lost for good.
    pub lost: u64,
    /// Inbound protocol messages dropped by the fault stage.
    pub injected_drops: u64,
    /// Probe events recorded (including any the ring evicted).
    pub probe_events: u64,
}

/// Maximum blocking-receive timeout; also the idle tick when no timer
/// is armed, keeping the loop responsive to shutdown.
const MAX_POLL: Duration = Duration::from_millis(50);

/// Runs a node until a `Shutdown` frame arrives. Returns the report
/// after flushing the probe trace (if configured).
pub fn run(config: &NodeConfig) -> io::Result<RunReport> {
    let socket = UdpSocket::bind(&config.bind)?;
    let mut addr_of: BTreeMap<_, SocketAddr> = BTreeMap::new();
    let mut node_at: BTreeMap<SocketAddr, _> = BTreeMap::new();
    for (peer, addr) in &config.peers {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable peer"))?;
        addr_of.insert(*peer, resolved);
        node_at.insert(resolved, *peer);
    }
    let report_addr = match &config.report {
        Some(addr) => Some(addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "unresolvable report address")
        })?),
        None => None,
    };

    let peers: Vec<_> = config.peers.iter().map(|(peer, _)| *peer).collect();
    let mut driver = NodeDriver::new(
        config.id,
        config.profile,
        config.policy,
        config.driver,
        config.seed,
        peers.clone(),
        peers,
    );
    let mut faults = SimRng::seed_from(config.seed ^ 0xFA01_7157_AC5E_0001);
    let mut wheel = TimerWheel::new();
    let mut tracer = Tracer::open(config)?;
    let mut report = RunReport::default();
    let mut armed_first_assign_drop = config.drop_first_assign;

    let epoch = Instant::now();
    let now_sim = |epoch: &Instant| SimTime::from_millis(epoch.elapsed().as_millis() as u64);

    let mut now = now_sim(&epoch);
    let startup = driver.start(now);
    execute(
        &mut driver, &socket, &addr_of, report_addr, &mut wheel, &mut tracer, &mut report,
        now, startup,
    )?;

    let mut buf = vec![0u8; 64 * 1024];
    loop {
        now = now_sim(&epoch);
        while let Some(timer) = wheel.pop_due(now) {
            let outputs = driver.handle(now, Input::Timer(timer));
            execute(
                &mut driver, &socket, &addr_of, report_addr, &mut wheel, &mut tracer,
                &mut report, now, outputs,
            )?;
        }

        let timeout = match wheel.next_deadline() {
            Some(at) => {
                let wait = at.saturating_since(now).as_millis();
                Duration::from_millis(wait.clamp(1, MAX_POLL.as_millis() as u64))
            }
            None => MAX_POLL,
        };
        socket.set_read_timeout(Some(timeout))?;
        let (len, src) = match socket.recv_from(&mut buf) {
            Ok(got) => got,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(e) => return Err(e),
        };
        now = now_sim(&epoch);
        let Ok(msg) = aria_codec::decode(&buf[..len]) else {
            continue; // undecodable datagrams are dropped, never fatal
        };
        if matches!(msg, LiveMsg::Shutdown) {
            break;
        }
        // Control frames from outside the overlay are fine (the harness
        // submits jobs); protocol messages from unknown senders are not.
        let from = match node_at.get(&src) {
            Some(&peer) => peer,
            None if msg.is_protocol() => continue,
            None => config.id,
        };
        if msg.is_protocol() {
            let lossy = config.loss > 0.0
                && config.loss_window.is_none_or(|(from, until)| {
                    now.as_millis() >= from.as_millis() && now.as_millis() < until.as_millis()
                });
            let drop_this = if armed_first_assign_drop && matches!(msg, LiveMsg::Assign { .. }) {
                armed_first_assign_drop = false;
                true
            } else {
                lossy && faults.chance(config.loss)
            };
            if drop_this {
                report.injected_drops += 1;
                if let Some(job) = msg_job(&msg) {
                    tracer.record(
                        now,
                        ProbeEvent::MessageDropped { kind: msg.kind(), job, to: config.id },
                    );
                }
                continue;
            }
        }
        let outputs = driver.handle(now, Input::Msg { from, msg });
        execute(
            &mut driver, &socket, &addr_of, report_addr, &mut wheel, &mut tracer, &mut report,
            now, outputs,
        )?;
    }

    report.probe_events = tracer.recorder.dropped() + tracer.recorder.len() as u64;
    if let Some(path) = &config.trace {
        let trace = tracer.recorder.into_trace(TraceMeta {
            scenario: "live-node".to_string(),
            seed: config.seed,
            nodes: config.peers.len() as u64,
            jobs: report.completed,
        });
        std::fs::write(path, schema::to_jsonl(&trace))?;
        let _ = std::fs::remove_file(format!("{path}.part"));
    }
    Ok(report)
}

/// Records probe events into the bounded ring and, when tracing is on,
/// streams each one (flushed per line) to `<trace>.part` so a SIGKILL
/// still leaves the node's history on disk for the chaos harness.
struct Tracer {
    recorder: RingRecorder,
    stream: Option<std::fs::File>,
    seq: u64,
}

impl Tracer {
    fn open(config: &NodeConfig) -> io::Result<Tracer> {
        let stream = match &config.trace {
            Some(path) => Some(std::fs::File::create(format!("{path}.part"))?),
            None => None,
        };
        Ok(Tracer { recorder: RingRecorder::with_capacity(config.trace_capacity), stream, seq: 0 })
    }

    fn record(&mut self, now: SimTime, event: ProbeEvent) {
        if let Some(file) = &mut self.stream {
            let entry = TraceEntry { seq: self.seq, at: now, event };
            // Flushed per line: a buffered partial would lose exactly
            // the pre-kill events the chaos harness needs.
            let line = schema::entry_line(&entry);
            let _ = writeln!(file, "{line}");
            let _ = file.flush();
        }
        self.seq += 1;
        self.recorder.record(now, event);
    }
}

/// Executes one batch of driver outputs against the real transport,
/// wheel and recorder.
#[allow(clippy::too_many_arguments)]
fn execute(
    driver: &mut NodeDriver,
    socket: &UdpSocket,
    addr_of: &BTreeMap<aria_overlay::NodeId, SocketAddr>,
    report_addr: Option<SocketAddr>,
    wheel: &mut TimerWheel,
    tracer: &mut Tracer,
    report: &mut RunReport,
    now: SimTime,
    outputs: Vec<Output>,
) -> io::Result<()> {
    for output in outputs {
        match output {
            Output::Send { to, msg } => {
                if let Some(addr) = addr_of.get(&to) {
                    // Unreachable peers surface as protocol timeouts, so
                    // a failed send must not kill the loop.
                    let _ = socket.send_to(&aria_codec::encode(&msg), addr);
                }
            }
            Output::StartTimer { after, timer } => wheel.arm(now + after, timer),
            Output::Probe(event) => tracer.record(now, event),
            Output::Completed { job } => {
                report.completed += 1;
                if let Some(addr) = report_addr {
                    let done = LiveMsg::Done { job, node: driver.id() };
                    let _ = socket.send_to(&aria_codec::encode(&done), addr);
                }
            }
            Output::Abandoned { .. } => report.abandoned += 1,
            Output::Lost { .. } => report.lost += 1,
        }
    }
    Ok(())
}

/// The job a protocol message concerns, for drop telemetry.
fn msg_job(msg: &LiveMsg) -> Option<JobId> {
    match msg {
        LiveMsg::Request { spec, .. }
        | LiveMsg::Inform { spec, .. }
        | LiveMsg::Assign { spec, .. }
        | LiveMsg::Submit { spec } => Some(spec.id),
        LiveMsg::Accept { job, .. }
        | LiveMsg::Ack { job, .. }
        | LiveMsg::Done { job, .. }
        | LiveMsg::Holding { job, .. } => Some(*job),
        LiveMsg::Join { .. } | LiveMsg::Leave { .. } | LiveMsg::Heartbeat { .. } | LiveMsg::Shutdown => {
            None
        }
    }
}
