//! Process-level churn integration tests: a real 5-node UDP cluster on
//! 127.0.0.1 where one node is SIGKILLed mid-workload.
//!
//! With a restart, the victim must be declared dead by its peers
//! (`peer-dead` in the merged trace), readmitted on rejoin
//! (`peer-rejoined`), and every job must still complete exactly once
//! within the liveness bound. Without a restart, conservation must hold
//! anyway: delegations to the corpse come back via peer-death recovery
//! and the §III-D failsafe. Submissions go only to surviving nodes — a
//! job whose *initiator* dies is unrecoverable by design.

use aria_core::config::ProtocolTiming;
use aria_core::driver::{DriverConfig, MembershipConfig};
use aria_core::AriaConfig;
use aria_grid::{
    Architecture, JobId, JobRequirements, JobSpec, NodeProfile, OperatingSystem, PerfIndex,
    Policy,
};
use aria_node::cluster::{
    liveness_bound, run_cluster, ChurnAction, ChurnEvent, ClusterOutcome, ClusterSpec,
};
use aria_sim::SimDuration;
use std::path::PathBuf;
use std::time::Duration;

/// Tight live timing with an aggressive failure detector: suspect after
/// 1.5 s of silence, dead after 4 s.
fn live_timing() -> DriverConfig {
    let mut aria = AriaConfig::default().with_timing(ProtocolTiming {
        accept_window: SimDuration::from_millis(300),
        request_retry: SimDuration::from_millis(1000),
        max_request_rounds: 50,
        assign_ack_timeout: SimDuration::from_millis(200),
        assign_max_retries: 4,
    });
    aria.inform_period = SimDuration::from_millis(2000);
    DriverConfig {
        aria,
        failsafe: true,
        failsafe_detection: SimDuration::from_millis(3000),
        membership: MembershipConfig {
            heartbeat_period: SimDuration::from_millis(500),
            suspect_misses: 3,
            dead_misses: 8,
        },
    }
}

/// Whole-second ERTs (JSDL carries seconds) over two resource classes.
fn workload(jobs: u64) -> Vec<JobSpec> {
    (0..jobs)
        .map(|i| {
            let ert = SimDuration::from_secs(if i % 2 == 0 { 1 } else { 2 });
            let requirements = if i % 3 == 0 {
                JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 8, 50)
            } else {
                JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 2, 10)
            };
            JobSpec::batch(JobId::new(i), requirements, ert)
        })
        .collect()
}

fn churn_spec(dir_name: &str, jobs: &[JobSpec], churn: Vec<ChurnEvent>) -> ClusterSpec {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(dir_name);
    let _ = std::fs::remove_dir_all(&dir);
    ClusterSpec {
        nodes: 5,
        jobs: jobs.to_vec(),
        profiles: vec![
            NodeProfile::new(
                Architecture::Amd64,
                OperatingSystem::Linux,
                64,
                1000,
                PerfIndex::BASELINE,
            ),
            NodeProfile::new(
                Architecture::Amd64,
                OperatingSystem::Linux,
                16,
                200,
                PerfIndex::new(1.5).expect("valid index"),
            ),
        ],
        policies: vec![Policy::Fcfs, Policy::Sjf],
        driver: live_timing(),
        loss: 0.0,
        loss_windows: Vec::new(),
        drop_first_assign: false,
        seed: 42,
        // Paced submission so the kill lands mid-workload.
        submit_gap: Duration::from_millis(300),
        submit_to: vec![0, 1, 2, 3], // node 4 is the victim
        churn,
        dir,
        node_binary: PathBuf::from(env!("CARGO_BIN_EXE_aria-node")),
        deadline: Duration::from_secs(50),
    }
}

fn check_both_oracles(outcome: &ClusterOutcome, jobs: &[JobSpec]) {
    outcome.check_conservation(jobs).expect("job conservation holds");
    let max_ert = jobs.iter().map(|j| j.ert.as_millis()).max().unwrap_or(0);
    let bound = liveness_bound(&live_timing(), Duration::from_millis(max_ert));
    outcome.check_liveness(jobs, bound).expect("liveness holds");
    assert_eq!(outcome.lost_events, 0, "no job-lost events in the merged trace");
}

#[test]
fn sigkill_and_restart_conserves_and_rejoins() {
    let jobs = workload(8);
    let spec = churn_spec(
        "churn-restart",
        &jobs,
        vec![
            ChurnEvent { at: Duration::from_millis(1500), action: ChurnAction::Kill(4) },
            ChurnEvent { at: Duration::from_millis(8000), action: ChurnAction::Restart(4) },
        ],
    );
    let outcome = run_cluster(&spec).expect("cluster run succeeds");
    check_both_oracles(&outcome, &jobs);
    assert!(
        outcome.peer_dead_events >= 1,
        "survivors must declare the SIGKILLed node dead (got {})",
        outcome.peer_dead_events
    );
    assert!(
        outcome.peer_rejoined_events >= 1,
        "survivors must readmit the restarted node (got {})",
        outcome.peer_rejoined_events
    );
}

#[test]
fn sigkill_without_restart_still_conserves() {
    let jobs = workload(8);
    let spec = churn_spec(
        "churn-no-restart",
        &jobs,
        vec![ChurnEvent { at: Duration::from_millis(1500), action: ChurnAction::Kill(4) }],
    );
    let outcome = run_cluster(&spec).expect("cluster run succeeds");
    check_both_oracles(&outcome, &jobs);
    assert!(
        outcome.peer_dead_events >= 1,
        "survivors must declare the SIGKILLed node dead (got {})",
        outcome.peer_dead_events
    );
    assert_eq!(outcome.peer_rejoined_events, 0, "nobody restarted, nobody rejoins");
}
