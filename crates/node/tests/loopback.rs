//! Loopback integration test: a real 5-node UDP cluster on 127.0.0.1
//! completes a small iMixed-style workload with zero lost jobs while the
//! fault stage drops the first inbound ASSIGN at every node and rolls
//! dice on everything else — so the test only passes if the ASSIGN→ACK
//! retransmit path actually fires over real sockets.
//!
//! This is the live counterpart of the simulator's job-conservation
//! oracle: same probe schema, same merged-trace validation, real I/O.

use aria_core::config::ProtocolTiming;
use aria_core::driver::{DriverConfig, MembershipConfig};
use aria_core::AriaConfig;
use aria_grid::{
    Architecture, JobId, JobRequirements, JobSpec, NodeProfile, OperatingSystem, PerfIndex,
    Policy,
};
use aria_node::cluster::{run_cluster, ClusterSpec};
use aria_probe::ProbeEvent;
use aria_sim::SimDuration;
use std::path::PathBuf;
use std::time::Duration;

/// Tight live timing: the paper's simulation constants shrunk to a
/// loopback timescale so the whole run fits in a few wall-clock seconds.
fn live_timing() -> DriverConfig {
    let mut aria = AriaConfig::default().with_timing(ProtocolTiming {
        accept_window: SimDuration::from_millis(300),
        request_retry: SimDuration::from_millis(1000),
        max_request_rounds: 50,
        assign_ack_timeout: SimDuration::from_millis(200),
        assign_max_retries: 4,
    });
    aria.inform_period = SimDuration::from_millis(2000);
    DriverConfig {
        aria,
        failsafe: true,
        failsafe_detection: SimDuration::from_millis(3000),
        membership: MembershipConfig {
            heartbeat_period: SimDuration::from_millis(500),
            suspect_misses: 3,
            dead_misses: 8,
        },
    }
}

/// Alternating short/long ERTs over two requirement classes, all
/// satisfiable by both profiles below. ERTs are whole seconds — JSDL
/// carries seconds, so anything finer would truncate to a zero-cost job
/// (and `run_cluster` refuses such workloads).
fn workload(jobs: u64) -> Vec<JobSpec> {
    (0..jobs)
        .map(|i| {
            let ert = SimDuration::from_secs(if i % 2 == 0 { 1 } else { 2 });
            let requirements = if i % 3 == 0 {
                JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 8, 50)
            } else {
                JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 2, 10)
            };
            JobSpec::batch(JobId::new(i), requirements, ert)
        })
        .collect()
}

#[test]
fn lossy_five_node_cluster_conserves_every_job() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("loopback-lossy");
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = workload(8);
    let spec = ClusterSpec {
        nodes: 5,
        jobs: jobs.clone(),
        profiles: vec![
            NodeProfile::new(
                Architecture::Amd64,
                OperatingSystem::Linux,
                64,
                1000,
                PerfIndex::BASELINE,
            ),
            NodeProfile::new(
                Architecture::Amd64,
                OperatingSystem::Linux,
                16,
                200,
                PerfIndex::new(1.5).expect("valid index"),
            ),
        ],
        policies: vec![Policy::Fcfs, Policy::Sjf],
        driver: live_timing(),
        loss: 0.05,
        loss_windows: Vec::new(),
        drop_first_assign: true,
        seed: 42,
        submit_gap: Duration::from_millis(5),
        submit_to: Vec::new(),
        churn: Vec::new(),
        dir,
        node_binary: PathBuf::from(env!("CARGO_BIN_EXE_aria-node")),
        deadline: Duration::from_secs(45),
    };
    let outcome = run_cluster(&spec).expect("cluster run succeeds");

    // The conservation oracle over the merged trace: every job
    // completed exactly once, nothing lost.
    outcome.check_conservation(&jobs).expect("job conservation holds");
    assert_eq!(outcome.completed.len(), jobs.len(), "every job reported Done");
    assert_eq!(outcome.lost_events, 0, "no job-lost events in the merged trace");

    // drop_first_assign guarantees at least one ASSIGN was eaten at the
    // first assignee, so completion *requires* the retransmit path.
    assert!(
        outcome.retransmits >= 1,
        "dropped ASSIGNs must surface as assign-retransmit events (got {})",
        outcome.retransmits
    );
    assert!(outcome.injected_drops >= 1, "the fault stage recorded its drops");

    // The merged stream is schema-valid (run_cluster validated it) and
    // carries the live scenario tag plus per-job lifecycle events.
    assert_eq!(outcome.merged.meta.scenario, "live-cluster");
    assert_eq!(outcome.merged.meta.nodes, 5);
    for spec in &jobs {
        let submitted = outcome.merged.entries.iter().any(
            |e| matches!(e.event, ProbeEvent::JobSubmitted { job, .. } if job == spec.id),
        );
        let started = outcome.merged.entries.iter().any(
            |e| matches!(e.event, ProbeEvent::Started { job, .. } if job == spec.id),
        );
        assert!(submitted, "{} has a job-submitted event", spec.id);
        assert!(started, "{} has a started event", spec.id);
    }
    assert!(outcome.merged_path.is_file(), "merged JSONL written to disk");
}
