//! # aria-model — exhaustive exploration of the ARiA message state machine
//!
//! The paper's correctness argument for REQUEST/ACCEPT/ASSIGN/INFORM is
//! empirical: 26 scenarios × 10 seeded runs, each exercising the *one*
//! delivery ordering its event queue happens to produce. This crate adds
//! the missing analysis tier — an explicit-state bounded model checker
//! that drives the **real** `aria-core` handler code (not a
//! re-implementation) over *every* reachable delivery ordering of small
//! worlds, with optional message loss and duplication.
//!
//! ## How it works
//!
//! * A world is built under [`aria_core::NetModel::Lockstep`]: transport
//!   decisions are pure functions of the state and carry zero latency,
//!   so the only nondeterminism left is the *order* of pending
//!   deliveries and timers — exactly what [`aria_core::Action`]
//!   enumerates.
//! * [`Explorer`] runs a breadth-first search over
//!   `World::step(action)`, deduplicating states by
//!   `World::fingerprint()` (BFS makes the first counterexample a
//!   minimal-length one by construction).
//! * Each discovered state is checked against [`Property`] — the world's
//!   own `try_check_invariants()` plus the temporal properties the
//!   single-ordering gates cannot see (cheapest-offer discipline via an
//!   independent shadow of the offer window, job conservation at
//!   terminal states, flood hop bounds).
//! * A simple partial-order reduction collapses provably-commuting
//!   deliveries (see `World::pending_deliveries` for the soundness
//!   argument); `por: false` turns it off, and an equivalence test pins
//!   that the reachable terminal states are identical either way.
//!
//! Counterexamples are replayable: [`Violation`] carries the exact
//! action trace from the initial state, [`Explorer::replay`] re-runs it
//! on a fresh world, and `cargo xtask explore` prints it ready to paste
//! into a regression test.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use aria_core::{Action, Message, NetModel, OverlayKind, PolicyMix, World, WorldConfig};
use aria_grid::{Cost, JobId, JobRequirements, JobSpec, Policy};
use aria_overlay::NodeId;
use aria_probe::{NullProbe, Probe, RingRecorder, Trace, TraceMeta};
use aria_sim::{SimDuration, SimTime};
use aria_workload::ArtModel;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

// Re-exported so `cargo xtask explore` can hold counterexample traces
// without depending on `aria-core` directly.
pub use aria_core::Action as ModelAction;

/// Which property set the checker enforces per state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Property {
    /// The real protocol properties: state-machine invariants,
    /// offer-window discipline with an independent cheapest-offer
    /// shadow, flood hop bounds, and job conservation at terminal
    /// states.
    #[default]
    Protocol,
    /// A deliberately false property — "no job ever starts executing" —
    /// used by `cargo xtask explore --self-check` to prove the checker
    /// still *finds* violations and that its traces replay (the
    /// `lint --self-check` pattern).
    SelfCheckNoExecution,
}

/// One small-world exploration problem.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Grid size (the intended range is 3–5 nodes).
    pub nodes: usize,
    /// Number of jobs submitted (1–3), all at the same instant so their
    /// floods race.
    pub jobs: usize,
    /// World build seed (profiles and policies; transport is lockstep
    /// and draws nothing).
    pub seed: u64,
    /// Maximum trace length explored before a path is truncated.
    pub max_depth: usize,
    /// Maximum distinct states visited before the search is truncated.
    pub max_states: usize,
    /// Fault budget: how many messages may be dropped along one path.
    pub drops: u32,
    /// Fault budget: how many flood messages may be duplicated along one
    /// path.
    pub dups: u32,
    /// Apply the partial-order reduction (inert deliveries explored
    /// alone).
    pub por: bool,
    /// Enable the INFORM/rescheduling phase (enlarges the state space
    /// considerably; off by default).
    pub rescheduling: bool,
    /// The property set to enforce.
    pub property: Property,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            nodes: 3,
            jobs: 1,
            seed: 1,
            max_depth: 2000,
            max_states: 200_000,
            drops: 0,
            dups: 0,
            por: true,
            rescheduling: false,
            property: Property::Protocol,
        }
    }
}

impl ModelConfig {
    /// Builds the initial world: a ring overlay under lockstep
    /// transport, exact running-time estimates, uniform FCFS policies,
    /// and `jobs` simultaneously submitted jobs that the seed node's
    /// profile can run (other nodes bid only if their drawn profile
    /// matches — mixed bidder/forwarder roles are part of the model).
    pub fn build_world(&self) -> World {
        self.build_world_with(NullProbe)
    }

    /// Like [`ModelConfig::build_world`], but with an explicit [`Probe`]
    /// attached — used by [`Explorer::replay_traced`] to export
    /// counterexample traces in the `aria-probe` schema.
    pub fn build_world_with<P: Probe>(&self, probe: P) -> World<P> {
        assert!(self.nodes >= 3, "crash-refusal and ring overlays need ≥ 3 nodes");
        let mut config = WorldConfig::small_test(self.nodes);
        config.net = NetModel::Lockstep;
        config.overlay = OverlayKind::Ring;
        config.art = ArtModel::Exact;
        config.policies = PolicyMix::Uniform(Policy::Fcfs);
        config.aria.rescheduling = self.rescheduling;
        config.aria.max_request_rounds = 2;
        // A short horizon keeps the periodic chains (gauge samples,
        // INFORM ticks) finite and small.
        config.horizon = SimTime::from_mins(30);
        config.sample_period = SimDuration::from_mins(30);
        let mut world = World::with_probe(config, self.seed, probe);
        let anchor = *world.profiles().first().expect("non-empty world");
        for i in 0..self.jobs {
            let req = JobRequirements::new(anchor.arch, anchor.os, 1, 1);
            let spec = JobSpec::batch(JobId::new(i as u64), req, SimDuration::from_mins(5));
            world.submit_job(SimTime::from_mins(1), spec);
        }
        world
    }

    fn job_ids(&self) -> impl Iterator<Item = JobId> {
        (0..self.jobs as u64).map(JobId::new)
    }
}

/// Aggregate counters of one exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states discovered (after dedup), including the root.
    pub states: u64,
    /// Transitions that led to an already-visited state.
    pub dedup_hits: u64,
    /// Transitions taken (edges explored).
    pub transitions: u64,
    /// Length of the longest explored trace.
    pub max_depth: usize,
    /// Deadlock-free end states (event pool drained).
    pub terminals: u64,
    /// Fingerprints of the terminal states (for cross-validation against
    /// the event-queue driver).
    pub terminal_fingerprints: BTreeSet<u64>,
    /// Whether any bound (`max_depth`/`max_states`) cut the search — if
    /// `false`, the enumeration was exhaustive.
    pub truncated: bool,
}

/// A property violation with its replayable counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The violated property's message.
    pub message: String,
    /// The action trace from the initial state to the violating state.
    /// BFS discovery order makes it minimal-length.
    pub trace: Vec<Action>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "property violated: {}", self.message)?;
        writeln!(f, "counterexample ({} action(s) from the initial state):", self.trace.len())?;
        for (i, action) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:>3}. {action}")?;
        }
        Ok(())
    }
}

/// The offer-window shadow: an independent record of the cheapest
/// eligible offer per open window, updated by the *checker* as ACCEPTs
/// are delivered, against which the protocol's own `pending.best` is
/// compared every state.
type Shadow = BTreeMap<JobId, Option<(Cost, NodeId)>>;

/// One frontier entry of the search. Generic over the attached probe so
/// [`Explorer::replay_traced`] can re-drive the same checking machinery
/// with a recorder where the BFS uses the free [`NullProbe`].
#[derive(Debug, Clone)]
struct SearchNode<P: Probe = NullProbe> {
    world: World<P>,
    shadow: Shadow,
    drops_left: u32,
    dups_left: u32,
    trace: Vec<Action>,
}

/// The explicit-state bounded model checker.
#[derive(Debug, Clone)]
pub struct Explorer {
    config: ModelConfig,
}

impl Explorer {
    /// Creates a checker for one exploration problem.
    pub fn new(config: ModelConfig) -> Self {
        Explorer { config }
    }

    /// The configured problem.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Runs the breadth-first exploration. Returns the counters and the
    /// first violation found (with its minimal trace), if any.
    pub fn run(&self) -> (ExploreStats, Option<Violation>) {
        let mut stats = ExploreStats::default();
        let root = self.root();
        if let Some(message) = self.check_state(&root, true) {
            stats.states = 1;
            return (stats, Some(Violation { message, trace: Vec::new() }));
        }
        let mut visited: BTreeSet<(u64, u64, u32, u32)> = BTreeSet::new();
        visited.insert(Self::key(&root));
        let mut frontier: VecDeque<SearchNode> = VecDeque::new();
        frontier.push_back(root);
        stats.states = 1;

        while let Some(node) = frontier.pop_front() {
            stats.max_depth = stats.max_depth.max(node.trace.len());
            let actions = self.enabled(&node);
            if actions.is_empty() {
                stats.terminals += 1;
                stats.terminal_fingerprints.insert(node.world.fingerprint());
                if let Some(message) = self.check_terminal(&node) {
                    return (stats, Some(Violation { message, trace: node.trace }));
                }
                continue;
            }
            if node.trace.len() >= self.config.max_depth {
                stats.truncated = true;
                continue;
            }
            for action in actions {
                stats.transitions += 1;
                let next = self.apply(&node, action);
                if let Some(message) = self.check_state(&next, false) {
                    return (stats, Some(Violation { message, trace: next.trace }));
                }
                if !visited.insert(Self::key(&next)) {
                    stats.dedup_hits += 1;
                    continue;
                }
                stats.states += 1;
                if stats.states >= self.config.max_states as u64 {
                    stats.truncated = true;
                    return (stats, None);
                }
                frontier.push_back(next);
            }
        }
        (stats, None)
    }

    /// Like [`Explorer::run`], but precomputing each BFS level's
    /// transitions on worker threads drawn from the shared
    /// [`aria_sim::pool`]. The expensive work per edge — cloning the
    /// parent world and stepping the real handlers, then running the
    /// per-state safety checks — is a pure function of the frozen
    /// `(state, action)` pair, so the edges of one level fan out freely;
    /// every *stateful* decision (counter updates, dedup against
    /// `visited`, both truncation bounds, and which violation is
    /// reported first) is then made serially in the exact order
    /// [`Explorer::run`] makes it. The two are therefore
    /// answer-identical at any worker count — same [`ExploreStats`],
    /// same minimal counterexample — which
    /// `run_parallel_is_bit_identical_to_run` pins.
    ///
    /// A FIFO frontier already visits states in level order, so the
    /// level-synchronous loop below is the serial iteration order, not
    /// an approximation of it.
    pub fn run_parallel(&self, workers: usize) -> (ExploreStats, Option<Violation>) {
        // The calling thread is one lane; only the extras draw permits.
        // A zero grant (budget exhausted, or workers <= 1) falls back to
        // the serial search rather than waiting.
        let reservation = aria_sim::pool::reserve(workers.saturating_sub(1));
        if reservation.workers() == 0 {
            return self.run();
        }
        let mut stats = ExploreStats::default();
        let root = self.root();
        if let Some(message) = self.check_state(&root, true) {
            stats.states = 1;
            return (stats, Some(Violation { message, trace: Vec::new() }));
        }
        let mut visited: BTreeSet<(u64, u64, u32, u32)> = BTreeSet::new();
        visited.insert(Self::key(&root));
        stats.states = 1;
        let mut level: Vec<SearchNode> = vec![root];

        while !level.is_empty() {
            // Cheap serial prepass: the enabled-action menu per node.
            // Terminal and depth-truncated nodes expand no edges, so
            // only the rest contribute work items.
            let menus: Vec<Vec<Action>> = level.iter().map(|n| self.enabled(n)).collect();
            let mut items: Vec<(usize, Action)> = Vec::new();
            for (i, menu) in menus.iter().enumerate() {
                if menu.is_empty() || level[i].trace.len() >= self.config.max_depth {
                    continue;
                }
                items.extend(menu.iter().map(|&action| (i, action)));
            }
            let mut results = self.expand(&level, &items, reservation.workers()).into_iter();

            // Serial consumption, replicating `run()` decision for
            // decision. Edges computed past an early return are simply
            // discarded — they were pure, so nothing observable leaks.
            let mut next_level: Vec<SearchNode> = Vec::new();
            for (i, node) in level.iter().enumerate() {
                stats.max_depth = stats.max_depth.max(node.trace.len());
                if menus[i].is_empty() {
                    stats.terminals += 1;
                    stats.terminal_fingerprints.insert(node.world.fingerprint());
                    if let Some(message) = self.check_terminal(node) {
                        return (stats, Some(Violation { message, trace: node.trace.clone() }));
                    }
                    continue;
                }
                if node.trace.len() >= self.config.max_depth {
                    stats.truncated = true;
                    continue;
                }
                for _ in &menus[i] {
                    let (next, verdict) = results.next().expect("one result per work item");
                    stats.transitions += 1;
                    if let Some(message) = verdict {
                        return (stats, Some(Violation { message, trace: next.trace }));
                    }
                    if !visited.insert(Self::key(&next)) {
                        stats.dedup_hits += 1;
                        continue;
                    }
                    stats.states += 1;
                    if stats.states >= self.config.max_states as u64 {
                        stats.truncated = true;
                        return (stats, None);
                    }
                    next_level.push(next);
                }
            }
            level = next_level;
        }
        (stats, None)
    }

    /// Computes `(apply(parent, action), check_state(..))` for every
    /// work item of one BFS level, returned **in item order**. Each item
    /// depends only on the frozen parent level, so workers claim indices
    /// off a shared cursor and the tagged results are re-sorted — the
    /// merge is deterministic regardless of thread interleaving.
    fn expand(
        &self,
        level: &[SearchNode],
        items: &[(usize, Action)],
        extra_workers: usize,
    ) -> Vec<(SearchNode, Option<String>)> {
        let evaluate = |&(i, action): &(usize, Action)| {
            let next = self.apply(&level[i], action);
            let verdict = self.check_state(&next, false);
            (next, verdict)
        };
        // The first few levels of every search are tiny; a fan-out there
        // costs more than the edges themselves.
        if extra_workers == 0 || items.len() < 8 {
            return items.iter().map(evaluate).collect();
        }
        let cursor = AtomicUsize::new(0);
        let worker = || {
            let mut out = Vec::new();
            loop {
                let j = cursor.fetch_add(1, Ordering::Relaxed);
                if j >= items.len() {
                    break;
                }
                let (next, verdict) = evaluate(&items[j]);
                out.push((j, next, verdict));
            }
            out
        };
        let mut tagged: Vec<(usize, SearchNode, Option<String>)> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..extra_workers).map(|_| scope.spawn(worker)).collect();
            tagged.extend(worker());
            for handle in handles {
                tagged.extend(handle.join().expect("model expansion worker panicked"));
            }
        });
        tagged.sort_unstable_by_key(|&(j, _, _)| j);
        tagged.into_iter().map(|(_, next, verdict)| (next, verdict)).collect()
    }

    /// Replays an action trace on a fresh world, re-checking every
    /// intermediate state. Returns the final world and the first
    /// property violation hit along the way (a genuine counterexample
    /// must reproduce its violation here).
    pub fn replay(&self, trace: &[Action]) -> (World, Option<String>) {
        self.replay_on(NullProbe, trace)
    }

    /// Like [`Explorer::replay`], but records every protocol transition
    /// of the replay through an `aria-probe` [`RingRecorder`] and returns
    /// the recording — so a checker counterexample exports in the same
    /// JSONL schema (and through the same tooling: timelines, summaries,
    /// `probe diff`) as a scenario run. The second element is the first
    /// property violation hit along the way, as in [`Explorer::replay`].
    pub fn replay_traced(&self, trace: &[Action]) -> (Trace, Option<String>) {
        let (world, violation) = self.replay_on(RingRecorder::default(), trace);
        let meta = TraceMeta {
            scenario: format!("model-{}n-{}j", self.config.nodes, self.config.jobs),
            seed: self.config.seed,
            nodes: self.config.nodes as u64,
            jobs: self.config.jobs as u64,
        };
        (world.into_probe().into_trace(meta), violation)
    }

    fn replay_on<P: Probe + Clone>(&self, probe: P, trace: &[Action]) -> (World<P>, Option<String>) {
        let mut node = self.root_with(probe);
        if let Some(message) = self.check_state(&node, true) {
            return (node.world, Some(message));
        }
        for &action in trace {
            node = self.apply(&node, action);
            if let Some(message) = self.check_state(&node, false) {
                return (node.world, Some(message));
            }
        }
        if self.enabled(&node).is_empty() {
            if let Some(message) = self.check_terminal(&node) {
                return (node.world, Some(message));
            }
        }
        (node.world, None)
    }

    fn root(&self) -> SearchNode {
        self.root_with(NullProbe)
    }

    fn root_with<P: Probe>(&self, probe: P) -> SearchNode<P> {
        let world = self.config.build_world_with(probe);
        SearchNode {
            world,
            shadow: Shadow::new(),
            drops_left: self.config.drops,
            dups_left: self.config.dups,
            trace: Vec::new(),
        }
    }

    /// The dedup key: world fingerprint, shadow fingerprint and the
    /// remaining fault budgets. (With correct handlers the shadow always
    /// equals the protocol's own `pending.best`, so it adds no states —
    /// it only separates states when the property is about to fail.)
    fn key(node: &SearchNode) -> (u64, u64, u32, u32) {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for byte in format!("{:?}", node.shadow).bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
        (node.world.fingerprint(), hash, node.drops_left, node.dups_left)
    }

    /// The actions explored from a state, after the partial-order
    /// reduction.
    fn enabled<P: Probe>(&self, node: &SearchNode<P>) -> Vec<Action> {
        let deliveries = node.world.pending_deliveries();
        // POR: explore a provably-inert delivery alone. Disabled while
        // duplication budget remains — a duplicate of the inert message
        // itself would be lost from the reduced successor.
        if self.config.por && node.dups_left == 0 {
            if let Some(inert) = deliveries.iter().find(|d| d.inert) {
                return vec![Action::Deliver { to: inert.to, msg: inert.msg }];
            }
        }
        let mut actions = Vec::new();
        for d in &deliveries {
            actions.push(Action::Deliver { to: d.to, msg: d.msg });
            if node.drops_left > 0 {
                actions.push(Action::Drop { to: d.to, msg: d.msg });
            }
            if node.dups_left > 0 {
                // Every message kind is duplicable: floods dedup via
                // their visited sets, ACCEPT/ASSIGN/ACK exercise the
                // idempotent handlers (a duplicated ASSIGN suppressing
                // instead of double-enqueueing is exactly what the
                // checker should be able to refute).
                actions.push(Action::Duplicate { to: d.to, msg: d.msg });
            }
        }
        if node.world.next_timer().is_some() {
            actions.push(Action::Timer);
        }
        actions
    }

    /// Applies one action, maintaining the offer shadow:
    ///
    /// * an ACCEPT delivered to the job's initiator while its window is
    ///   open lowers the shadow minimum (strict `<`, mirroring the
    ///   first-received-wins tie-break the protocol specifies);
    /// * a window that opened during the step seeds its shadow from the
    ///   initiator's own bid (nothing else can have been delivered yet);
    /// * a window that closed drops its shadow.
    fn apply<P: Probe + Clone>(&self, node: &SearchNode<P>, action: Action) -> SearchNode<P> {
        let mut next = node.clone();
        next.trace.push(action);
        match action {
            Action::Drop { .. } => next.drops_left -= 1,
            Action::Duplicate { .. } => next.dups_left -= 1,
            _ => {}
        }
        if let Action::Deliver { to, msg: Message::Accept { from, job, cost } } = action {
            if next.world.initiator_of(job) == Some(to) && next.world.offer_window_open(job) {
                let entry = next.shadow.entry(job).or_insert(None);
                let better = match *entry {
                    None => true,
                    Some((best, _)) => cost < best,
                };
                if better {
                    *entry = Some((cost, from));
                }
            }
        }
        next.world.step(action);
        for job in self.config.job_ids() {
            if next.world.offer_window_open(job) {
                next.shadow.entry(job).or_insert_with(|| next.world.offer_best(job));
            } else {
                next.shadow.remove(&job);
            }
        }
        next
    }

    /// Per-state safety checks. `root` skips the pre-submission phase
    /// where no job is registered yet.
    fn check_state<P: Probe>(&self, node: &SearchNode<P>, root: bool) -> Option<String> {
        if let Err(message) = node.world.try_check_invariants() {
            return Some(message);
        }
        // Flood hop bounds: a pending flood message always has between 1
        // and the configured budget of hops left (bounded termination).
        let aria = &node.world.config().aria;
        for d in node.world.pending_deliveries() {
            let bound = match d.msg {
                Message::Request { hops_left, .. } => Some((hops_left, aria.request_hops)),
                Message::Inform { hops_left, .. } => Some((hops_left, aria.inform_hops)),
                _ => None,
            };
            if let Some((hops_left, max)) = bound {
                if hops_left < 1 || hops_left > max {
                    return Some(format!(
                        "flood hop budget out of bounds: {} pending for {} with hops_left={} \
                         (limit {})",
                        d.msg, d.to, hops_left, max
                    ));
                }
            }
        }
        if !root {
            // Cheapest-offer discipline: inside an open window the
            // protocol's recorded best must equal the checker's
            // independent shadow of the eligible offers delivered so far.
            for job in self.config.job_ids() {
                if node.world.offer_window_open(job) {
                    let shadow = node.shadow.get(&job).copied().unwrap_or(None);
                    let best = node.world.offer_best(job);
                    if best != shadow {
                        return Some(format!(
                            "cheapest-offer violation for {job}: window records {best:?} but \
                             the delivered offers say {shadow:?}"
                        ));
                    }
                }
            }
        }
        // No duplicated execution: the collector's completion counter
        // must match the number of completed records, each completed
        // once, and never exceed the submitted jobs.
        let completed_records = node
            .world
            .metrics()
            .records()
            .values()
            .filter(|r| r.is_completed())
            .count() as u64;
        if node.world.completion_count() != completed_records
            || completed_records > self.config.jobs as u64
        {
            return Some(format!(
                "job duplication: {} completions over {} completed record(s) of {} job(s)",
                node.world.completion_count(),
                completed_records,
                self.config.jobs
            ));
        }
        if self.config.property == Property::SelfCheckNoExecution {
            for record in node.world.metrics().records().values() {
                if record.started_at.is_some() {
                    return Some(format!(
                        "self-check property: {} started executing (deliberately false)",
                        record.id
                    ));
                }
            }
        }
        None
    }

    /// Terminal-state checks: job conservation across every explored
    /// ordering — completed, abandoned or (with drops) explicitly lost,
    /// never silently vanished, never duplicated.
    fn check_terminal<P: Probe>(&self, node: &SearchNode<P>) -> Option<String> {
        let world = &node.world;
        let completed = world.completion_count();
        let abandoned = world.abandoned_jobs().len() as u64;
        let lost = world.lost_jobs().len() as u64;
        let submitted = self.config.jobs as u64;
        if completed + abandoned + lost != submitted {
            return Some(format!(
                "job conservation violated at terminal state: completed={completed} \
                 abandoned={abandoned} lost={lost}, submitted={submitted}"
            ));
        }
        if self.config.drops == 0 && lost != 0 {
            return Some(format!(
                "{lost} job(s) lost without any message loss injected"
            ));
        }
        for job in self.config.job_ids() {
            if world.is_completed(job) && world.holder_of(job).is_some() {
                return Some(format!("{job} completed but still sits in a queue"));
            }
            if world.offer_window_open(job) {
                return Some(format!("{job} still collects offers at a terminal state"));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_node_one_job_world_is_exhaustively_clean() {
        let explorer = Explorer::new(ModelConfig::default());
        let (stats, violation) = explorer.run();
        assert!(violation.is_none(), "unexpected violation:\n{}", violation.unwrap());
        assert!(!stats.truncated, "the 3-node/1-job world must be exhaustible");
        assert!(stats.states > 10, "only {} states — exploration did not branch", stats.states);
        assert!(stats.terminals >= 1);
        assert!(stats.dedup_hits > 0, "orderings must reconverge for dedup to matter");
    }

    #[test]
    fn por_preserves_the_terminal_states() {
        let with = Explorer::new(ModelConfig { por: true, ..ModelConfig::default() });
        let without = Explorer::new(ModelConfig { por: false, ..ModelConfig::default() });
        let (s1, v1) = with.run();
        let (s2, v2) = without.run();
        assert!(v1.is_none() && v2.is_none());
        assert!(!s1.truncated && !s2.truncated);
        assert_eq!(
            s1.terminal_fingerprints, s2.terminal_fingerprints,
            "the reduction must not change the reachable end states"
        );
        assert!(
            s1.states <= s2.states,
            "the reduction must not enlarge the search ({} > {})",
            s1.states,
            s2.states
        );
    }

    #[test]
    fn drops_are_survived_by_the_failsafe_accounting() {
        let explorer = Explorer::new(ModelConfig {
            drops: 1,
            max_states: 400_000,
            ..ModelConfig::default()
        });
        let (stats, violation) = explorer.run();
        assert!(violation.is_none(), "unexpected violation:\n{}", violation.unwrap());
        assert!(stats.states > 0);
    }

    #[test]
    fn duplicated_floods_do_not_break_suppression() {
        let explorer = Explorer::new(ModelConfig {
            dups: 1,
            max_states: 400_000,
            ..ModelConfig::default()
        });
        let (stats, violation) = explorer.run();
        assert!(violation.is_none(), "unexpected violation:\n{}", violation.unwrap());
        assert!(stats.states > 0);
    }

    #[test]
    fn self_check_property_fails_with_a_replayable_minimal_trace() {
        let config = ModelConfig {
            property: Property::SelfCheckNoExecution,
            ..ModelConfig::default()
        };
        let explorer = Explorer::new(config);
        let (_, violation) = explorer.run();
        let violation = violation.expect("the deliberately-false property must be caught");
        assert!(violation.message.contains("self-check property"));
        assert!(!violation.trace.is_empty());
        // The trace replays to the same violation on a fresh world.
        let (_, replayed) = explorer.replay(&violation.trace);
        assert_eq!(replayed.as_deref(), Some(violation.message.as_str()));
        // Minimality: chopping the last action must not violate.
        let (_, shorter) = explorer.replay(&violation.trace[..violation.trace.len() - 1]);
        assert!(
            shorter.is_none() || shorter.as_deref() != Some(violation.message.as_str()),
            "the trace has a redundant tail"
        );
    }

    #[test]
    fn counterexample_traces_export_in_the_probe_schema() {
        let config = ModelConfig {
            property: Property::SelfCheckNoExecution,
            ..ModelConfig::default()
        };
        let explorer = Explorer::new(config);
        let (_, violation) = explorer.run();
        let violation = violation.expect("the deliberately-false property must be caught");
        let (trace, replayed) = explorer.replay_traced(&violation.trace);
        assert_eq!(replayed.as_deref(), Some(violation.message.as_str()));
        assert!(!trace.entries.is_empty(), "a counterexample replay must record transitions");
        assert!(trace.meta.scenario.starts_with("model-"));
        // Round-trips through the versioned JSONL schema.
        let jsonl = aria_probe::schema::to_jsonl(&trace);
        let back = aria_probe::schema::from_jsonl(&jsonl).expect("schema-valid export");
        assert_eq!(back, trace);
    }

    #[test]
    fn run_parallel_is_bit_identical_to_run() {
        let cases = [
            // Exhaustive clean search: stats must match field for field.
            ModelConfig::default(),
            // Violation path: the same minimal counterexample must come
            // out first at any worker count.
            ModelConfig { property: Property::SelfCheckNoExecution, ..ModelConfig::default() },
            // Truncation path: the mid-level max_states cut must land on
            // the same edge.
            ModelConfig { drops: 1, max_states: 3_000, ..ModelConfig::default() },
        ];
        for config in cases {
            let explorer = Explorer::new(config);
            let serial = explorer.run();
            for workers in [2, 8] {
                let parallel = explorer.run_parallel(workers);
                assert_eq!(
                    serial, parallel,
                    "parallel exploration diverged at workers={workers} for {:?}",
                    explorer.config()
                );
            }
        }
    }

    #[test]
    fn two_jobs_race_without_violations() {
        let explorer = Explorer::new(ModelConfig {
            jobs: 2,
            nodes: 3,
            max_states: 400_000,
            ..ModelConfig::default()
        });
        let (stats, violation) = explorer.run();
        assert!(violation.is_none(), "unexpected violation:\n{}", violation.unwrap());
        assert!(stats.states > 100, "two racing floods must branch the search");
    }
}
