//! Cross-validation between the model checker and the event-queue driver.
//!
//! The checker and the production driver share `World::handle` but walk it
//! through different machinery (`step()` over a search frontier vs.
//! `EventQueue::pop`). These tests pin that the two machineries agree:
//! the driver's run is one of the interleavings the checker enumerates,
//! and replaying the driver's own delivery order through the checker's
//! `step()` path lands on a bit-for-bit identical terminal state and
//! statistics record.

use aria_model::{Explorer, ModelConfig};

#[test]
fn event_queue_driver_lands_inside_the_explored_terminal_set() {
    // Full enumeration (no reduction) so the terminal set is the complete
    // reachable one.
    let config = ModelConfig { por: false, ..ModelConfig::default() };
    let explorer = Explorer::new(config.clone());
    let (stats, violation) = explorer.run();
    assert!(violation.is_none(), "unexpected violation:\n{}", violation.unwrap());
    assert!(!stats.truncated, "the crosscheck world must be exhaustible");

    let mut driver = config.build_world();
    driver.run();
    assert!(
        stats.terminal_fingerprints.contains(&driver.fingerprint()),
        "the driver's terminal state {:#x} is not among the {} explored terminals",
        driver.fingerprint(),
        stats.terminal_fingerprints.len()
    );
}

#[test]
fn queue_order_replay_is_bit_for_bit_identical_to_the_driver() {
    let config = ModelConfig::default();

    // Record the event queue's own delivery order as an action trace.
    let mut stepped = config.build_world();
    let mut trace = Vec::new();
    while let Some(action) = stepped.next_queued_action() {
        trace.push(action);
        stepped.step(action);
    }

    // The production driver over the same initial world.
    let mut driver = config.build_world();
    driver.run();

    // The checker's replay of that trace, property-checked at every step.
    let explorer = Explorer::new(config);
    let (replayed, violation) = explorer.replay(&trace);
    assert_eq!(violation, None, "the driver ordering violated a property");

    assert_eq!(replayed.canonical_state(), driver.canonical_state());
    assert_eq!(replayed.fingerprint(), driver.fingerprint());
    // The statistics fingerprint must match too: the collector's full
    // per-job records and counters are identical, not just the topology.
    assert_eq!(
        format!("{:?}", replayed.metrics()),
        format!("{:?}", driver.metrics())
    );
}
