//! Property-based fuzzing of the checker itself: random small-world
//! configurations explored to a shallow depth must never trip a protocol
//! property. This widens the fixed-shape unit tests to arbitrary
//! node/job/seed/fault combinations within the model's intended range.

use aria_model::{Explorer, ModelConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No reachable state of any small world violates a protocol
    /// property, with or without the partial-order reduction and with
    /// small fault budgets.
    #[test]
    fn shallow_exploration_never_violates(
        nodes in 3usize..6,
        jobs in 1usize..3,
        seed in 0u64..50,
        drops in 0u32..2,
        dups in 0u32..2,
        por in any::<bool>(),
    ) {
        let config = ModelConfig {
            nodes,
            jobs,
            seed,
            drops,
            dups,
            por,
            // Shallow bounds keep each case fast; `truncated` reports
            // honestly whether the walk was partial.
            max_depth: 40,
            max_states: 4_000,
            ..ModelConfig::default()
        };
        let explorer = Explorer::new(config);
        let (stats, violation) = explorer.run();
        if let Some(violation) = violation {
            prop_assert!(false, "violation in a fuzzed world:\n{violation}");
        }
        prop_assert!(stats.states >= 1);
        prop_assert!(stats.max_depth <= 40);
    }

    /// Truncation bounds are respected: the checker never visits more
    /// states than allowed, so the CI gate has a hard runtime ceiling.
    #[test]
    fn state_budget_is_a_hard_ceiling(
        nodes in 3usize..6,
        jobs in 1usize..3,
        seed in 0u64..50,
    ) {
        let config = ModelConfig {
            nodes,
            jobs,
            seed,
            max_states: 500,
            ..ModelConfig::default()
        };
        let (stats, violation) = Explorer::new(config).run();
        prop_assert!(violation.is_none());
        prop_assert!(stats.states <= 500);
    }
}
