//! Property-based tests: the JSDL writer/parser round-trips arbitrary
//! job specifications, and the XML layer survives arbitrary text.

use aria_grid::{Architecture, JobId, JobRequirements, JobSpec, OperatingSystem};
use aria_jsdl::{xml, JobDefinition};
use aria_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_arch() -> impl Strategy<Value = Architecture> {
    proptest::sample::select(Architecture::ALL.to_vec())
}

fn arb_os() -> impl Strategy<Value = OperatingSystem> {
    proptest::sample::select(OperatingSystem::ALL.to_vec())
}

proptest! {
    /// Any JobSpec survives a write-then-parse round trip exactly.
    #[test]
    fn job_spec_round_trips(
        id in 0u64..1_000_000,
        arch in arb_arch(),
        os in arb_os(),
        mem_gb in 0u16..64,
        disk_gb in 0u16..64,
        ert_secs in 1u64..1_000_000,
        deadline_secs in proptest::option::of(0u64..10_000_000),
        name in proptest::option::of("[a-zA-Z0-9 <>&'\"_-]{1,30}"),
    ) {
        let req = JobRequirements::new(arch, os, mem_gb, disk_gb);
        let ert = SimDuration::from_secs(ert_secs);
        let spec = match deadline_secs {
            None => JobSpec::batch(JobId::new(id), req, ert),
            Some(d) => JobSpec::with_deadline(JobId::new(id), req, ert, SimTime::from_secs(d)),
        };
        let def = JobDefinition::from_job_spec(&spec, name.as_deref());
        let reparsed = JobDefinition::parse(&def.to_xml()).expect("own output parses");
        // `from_job_spec` canonicalizes the name exactly like the parser
        // (trim, blank -> None), so the round trip is an equality.
        let expected_name =
            name.as_deref().map(str::trim).filter(|n| !n.is_empty()).map(str::to_string);
        prop_assert_eq!(&def.name, &expected_name);
        prop_assert_eq!(def.clone(), reparsed.clone());
        let spec_again = reparsed.to_job_spec(JobId::new(id)).expect("convertible");
        prop_assert_eq!(spec_again, spec);
    }

    /// escape/parse round-trips arbitrary element text.
    #[test]
    fn xml_text_round_trips(text in "[ -~]{0,80}") {
        let doc = format!("<root>{}</root>", xml::escape(&text));
        let root = xml::parse(&doc).expect("escaped text is well-formed");
        prop_assert_eq!(root.text, text.trim());
    }

    /// escape/parse round-trips arbitrary attribute values.
    #[test]
    fn xml_attributes_round_trip(value in "[ -~]{0,60}") {
        let doc = format!(r#"<root attr="{}"/>"#, xml::escape(&value));
        let root = xml::parse(&doc).expect("escaped attribute is well-formed");
        prop_assert_eq!(root.attribute("attr"), Some(value.as_str()));
    }

    /// The parser never panics on arbitrary garbage — it returns errors.
    #[test]
    fn parser_is_panic_free(garbage in "[ -~<>&;/]{0,200}") {
        let _ = xml::parse(&garbage);
    }
}

/// Pinned regression for a recorded `job_spec_round_trips` failure: a
/// whitespace-only job name (`Some(" ")`). The parser trims element text,
/// so the name came back as `None` while the definition still carried
/// `Some(" ")`; `from_job_spec` now canonicalizes at construction.
#[test]
fn regression_whitespace_only_name_round_trips() {
    let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 0, 0);
    let spec = JobSpec::batch(JobId::new(0), req, SimDuration::from_secs(1));
    let def = JobDefinition::from_job_spec(&spec, Some(" "));
    assert_eq!(def.name, None, "blank names canonicalize to None");
    let reparsed = JobDefinition::parse(&def.to_xml()).expect("own output parses");
    assert_eq!(def, reparsed);
    assert_eq!(reparsed.to_job_spec(JobId::new(0)).expect("convertible"), spec);

    // A definition built with a blank name directly (bypassing the
    // canonicalizing constructor) must still round-trip: `to_xml` elides
    // the blank element rather than writing text the parser would drop.
    let hand_built = JobDefinition { name: Some("  ".into()), ..def.clone() };
    let reparsed = JobDefinition::parse(&hand_built.to_xml()).expect("own output parses");
    assert_eq!(reparsed.name, None);
}
