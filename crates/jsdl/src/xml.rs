//! A minimal, dependency-free XML reader — just enough for JSDL
//! documents: elements, attributes, text, comments, declarations,
//! namespace-prefixed names and the five predefined entities.
//!
//! Not a general-purpose XML parser (no DTDs, no CDATA, no processing
//! instructions beyond the prolog), but strict about what it does
//! accept: mismatched or unterminated tags are errors, not warnings.

use std::error::Error;
use std::fmt;

/// A parsed XML element: local name (namespace prefix stripped),
/// attributes, child elements and accumulated text content.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Local element name (after any `prefix:`).
    pub name: String,
    /// Attributes as `(local name, value)` pairs, in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements, in document order.
    pub children: Vec<Element>,
    /// Concatenated, whitespace-trimmed text directly inside the element.
    pub text: String,
}

impl Element {
    /// First child with the given local name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given local name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Descends through a path of child names.
    pub fn descend(&self, path: &[&str]) -> Option<&Element> {
        let mut here = self;
        for name in path {
            here = here.child(name)?;
        }
        Some(here)
    }

    /// Text of a child element, if present and non-empty.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        let text = &self.child(name)?.text;
        if text.is_empty() {
            None
        } else {
            Some(text)
        }
    }

    /// Value of an attribute by local name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Error raised when a document cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl XmlError {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        XmlError { message: message.into(), offset }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for XmlError {}

/// Parses a document and returns its root element.
///
/// # Errors
///
/// Returns [`XmlError`] on malformed input: unterminated or mismatched
/// tags, garbage outside the root element, bad attribute syntax, or an
/// unknown entity reference.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut parser = Parser { input, pos: 0 };
    parser.skip_prolog()?;
    let root = parser.element()?;
    parser.skip_misc()?;
    if parser.pos < parser.input.len() {
        return Err(XmlError::new("content after the root element", parser.pos));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.rest().starts_with(token) {
            self.bump(token.len());
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), XmlError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(XmlError::new(format!("expected `{token}`"), self.pos))
        }
    }

    /// Skips the `<?xml ...?>` declaration, comments and whitespace.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_whitespace();
        if self.rest().starts_with("<?xml") {
            match self.rest().find("?>") {
                Some(end) => self.bump(end + 2),
                None => return Err(XmlError::new("unterminated xml declaration", self.pos)),
            }
        }
        self.skip_misc()
    }

    /// Skips whitespace and comments.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_whitespace();
            if self.rest().starts_with("<!--") {
                match self.rest().find("-->") {
                    Some(end) => self.bump(end + 3),
                    None => return Err(XmlError::new("unterminated comment", self.pos)),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|&(_, c)| !(c.is_alphanumeric() || matches!(c, ':' | '_' | '-' | '.')))
            .map_or(rest.len(), |(i, _)| i);
        if end == 0 {
            return Err(XmlError::new("expected a name", self.pos));
        }
        let raw = &rest[..end];
        self.bump(end);
        // Strip any namespace prefix: JSDL documents qualify everything.
        Ok(raw.rsplit(':').next().expect("split is non-empty").to_string())
    }

    fn attribute(&mut self) -> Result<(String, String), XmlError> {
        let name = self.name()?;
        self.skip_whitespace();
        self.expect("=")?;
        self.skip_whitespace();
        let quote = match self.rest().chars().next() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(XmlError::new("expected a quoted attribute value", self.pos)),
        };
        self.bump(1);
        let rest = self.rest();
        let end = rest
            .find(quote)
            .ok_or_else(|| XmlError::new("unterminated attribute value", self.pos))?;
        let value = unescape(&rest[..end], self.pos)?;
        self.bump(end + 1);
        Ok((name, value))
    }

    fn element(&mut self) -> Result<Element, XmlError> {
        self.expect("<")?;
        let name = self.name()?;
        let mut element = Element { name, ..Element::default() };

        // Attributes until `>` or `/>`.
        loop {
            self.skip_whitespace();
            if self.eat("/>") {
                return Ok(element);
            }
            if self.eat(">") {
                break;
            }
            element.attributes.push(self.attribute()?);
        }

        // Content: text, children, comments, until `</name>`.
        let mut text = String::new();
        loop {
            if self.rest().is_empty() {
                return Err(XmlError::new(
                    format!("unterminated element <{}>", element.name),
                    self.pos,
                ));
            }
            if self.rest().starts_with("<!--") {
                self.skip_misc()?;
                continue;
            }
            if self.rest().starts_with("</") {
                self.bump(2);
                let closing = self.name()?;
                if closing != element.name {
                    return Err(XmlError::new(
                        format!("mismatched </{closing}> for <{}>", element.name),
                        self.pos,
                    ));
                }
                self.skip_whitespace();
                self.expect(">")?;
                element.text = text.trim().to_string();
                return Ok(element);
            }
            if self.rest().starts_with('<') {
                element.children.push(self.element()?);
                continue;
            }
            let rest = self.rest();
            let end = rest.find('<').unwrap_or(rest.len());
            text.push_str(&unescape(&rest[..end], self.pos)?);
            self.bump(end);
        }
    }
}

/// Resolves the five predefined entity references.
fn unescape(raw: &str, offset: usize) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| XmlError::new("unterminated entity reference", offset))?;
        match &rest[..=semi] {
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&amp;" => out.push('&'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            other => {
                return Err(XmlError::new(format!("unknown entity `{other}`"), offset));
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Escapes text for inclusion in an XML document.
pub fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_text() {
        let root = parse("<a><b>hello</b><c><d>1</d><d>2</d></c></a>").unwrap();
        assert_eq!(root.name, "a");
        assert_eq!(root.child_text("b"), Some("hello"));
        let c = root.child("c").unwrap();
        let ds: Vec<&str> = c.children_named("d").map(|d| d.text.as_str()).collect();
        assert_eq!(ds, ["1", "2"]);
    }

    #[test]
    fn strips_namespace_prefixes() {
        let root = parse(r#"<jsdl:JobDefinition xmlns:jsdl="urn:x"><jsdl:JobDescription/></jsdl:JobDefinition>"#)
            .unwrap();
        assert_eq!(root.name, "JobDefinition");
        assert_eq!(root.attribute("jsdl"), Some("urn:x")); // xmlns:jsdl -> local name jsdl
        assert!(root.child("JobDescription").is_some());
    }

    #[test]
    fn handles_prolog_comments_and_self_closing() {
        let doc = "<?xml version=\"1.0\"?>\n<!-- top --><a><!-- inner --><b/></a><!-- after -->";
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "a");
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn unescapes_entities_in_text_and_attributes() {
        let root = parse(r#"<a k="x &amp; y">1 &lt; 2</a>"#).unwrap();
        assert_eq!(root.text, "1 < 2");
        assert_eq!(root.attribute("k"), Some("x & y"));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = r#"<tag attr="a&b">'text'</tag>"#;
        let doc = format!("<a>{}</a>", escape(nasty));
        let root = parse(&doc).unwrap();
        assert_eq!(root.text, nasty);
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.to_string().contains("mismatched"), "{err}");
    }

    #[test]
    fn rejects_unterminated_elements() {
        assert!(parse("<a><b>").is_err());
        assert!(parse("<a").is_err());
        assert!(parse("<!-- only a comment -->").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse("<a/>extra").unwrap_err();
        assert!(err.to_string().contains("after the root"), "{err}");
    }

    #[test]
    fn rejects_unknown_entities() {
        assert!(parse("<a>&nbsp;</a>").is_err());
    }

    #[test]
    fn descend_walks_paths() {
        let root = parse("<a><b><c><d>deep</d></c></b></a>").unwrap();
        assert_eq!(root.descend(&["b", "c", "d"]).unwrap().text, "deep");
        assert!(root.descend(&["b", "x"]).is_none());
    }

    #[test]
    fn whitespace_only_text_is_empty() {
        let root = parse("<a>\n   <b/>\n</a>").unwrap();
        assert_eq!(root.text, "");
        assert_eq!(root.child_text("b"), None);
    }
}
