//! # aria-jsdl — JSDL-style job submission descriptions
//!
//! The ARiA protocol "does not specify the resource profiles and job
//! submission formats […]. Actual implementations may choose to use one
//! of the available job description schemas such as JSDL" (§III-A,
//! citing OGF GFD.56). This crate provides that front door: a
//! dependency-free parser and writer for the subset of the **Job
//! Submission Description Language** the ARiA resource model needs —
//! CPU architecture, operating system, memory and disk lower bounds —
//! plus two elements in an `aria` extension namespace carrying the
//! Estimated Running Time and the optional deadline.
//!
//! ## Example
//!
//! ```
//! use aria_jsdl::JobDefinition;
//! use aria_grid::JobId;
//!
//! let doc = r#"
//! <jsdl:JobDefinition xmlns:jsdl="http://schemas.ggf.org/jsdl/2005/11/jsdl">
//!   <jsdl:JobDescription>
//!     <jsdl:JobIdentification>
//!       <jsdl:JobName>render-frame-42</jsdl:JobName>
//!     </jsdl:JobIdentification>
//!     <jsdl:Resources>
//!       <jsdl:CPUArchitecture>
//!         <jsdl:CPUArchitectureName>x86_64</jsdl:CPUArchitectureName>
//!       </jsdl:CPUArchitecture>
//!       <jsdl:OperatingSystem>
//!         <jsdl:OperatingSystemType>
//!           <jsdl:OperatingSystemName>LINUX</jsdl:OperatingSystemName>
//!         </jsdl:OperatingSystemType>
//!       </jsdl:OperatingSystem>
//!       <jsdl:TotalPhysicalMemory>
//!         <jsdl:LowerBoundedRange>4294967296</jsdl:LowerBoundedRange>
//!       </jsdl:TotalPhysicalMemory>
//!       <jsdl:TotalDiskSpace>
//!         <jsdl:LowerBoundedRange>2147483648</jsdl:LowerBoundedRange>
//!       </jsdl:TotalDiskSpace>
//!     </jsdl:Resources>
//!     <aria:EstimatedRunningTime>9000</aria:EstimatedRunningTime>
//!   </jsdl:JobDescription>
//! </jsdl:JobDefinition>"#;
//!
//! let definition = JobDefinition::parse(doc)?;
//! assert_eq!(definition.name.as_deref(), Some("render-frame-42"));
//! let spec = definition.to_job_spec(JobId::new(1))?;
//! assert_eq!(spec.requirements.min_memory_gb, 4);
//! assert_eq!(spec.ert.as_secs(), 9000);
//! # Ok::<(), aria_jsdl::JsdlError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod model;
pub mod xml;

pub use model::{JobDefinition, JsdlError};
pub use xml::{Element, XmlError};
