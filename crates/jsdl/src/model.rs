//! The JSDL job model: mapping between GFD.56-style documents and the
//! ARiA resource model (`aria_grid::JobSpec`).

use crate::xml::{self, Element, XmlError};
use aria_grid::{Architecture, JobId, JobRequirements, JobSpec, OperatingSystem};
use aria_sim::{SimDuration, SimTime};
use std::error::Error;
use std::fmt;

/// Errors raised when reading or converting a JSDL document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsdlError {
    /// The document is not well-formed XML.
    Xml(XmlError),
    /// The document is well-formed but structurally not a JSDL job.
    Structure(String),
    /// A field value could not be interpreted.
    Value(String),
}

impl fmt::Display for JsdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsdlError::Xml(e) => write!(f, "{e}"),
            JsdlError::Structure(m) => write!(f, "invalid jsdl structure: {m}"),
            JsdlError::Value(m) => write!(f, "invalid jsdl value: {m}"),
        }
    }
}

impl Error for JsdlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JsdlError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for JsdlError {
    fn from(e: XmlError) -> Self {
        JsdlError::Xml(e)
    }
}

/// A parsed JSDL job definition: the subset of GFD.56 the ARiA resource
/// model consumes, plus the `aria` extension elements.
///
/// See the [crate-level example](crate) for the document shape.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDefinition {
    /// `JobIdentification/JobName`, if present.
    pub name: Option<String>,
    /// `Resources/CPUArchitecture/CPUArchitectureName`.
    pub arch: Architecture,
    /// `Resources/OperatingSystem/OperatingSystemType/OperatingSystemName`.
    pub os: OperatingSystem,
    /// `Resources/TotalPhysicalMemory/LowerBoundedRange`, in bytes.
    pub min_memory_bytes: u64,
    /// `Resources/TotalDiskSpace/LowerBoundedRange`, in bytes.
    pub min_disk_bytes: u64,
    /// `aria:EstimatedRunningTime`, in seconds on baseline hardware.
    pub ert: SimDuration,
    /// `aria:Deadline`, in seconds of absolute simulation time.
    pub deadline: Option<SimTime>,
}

const GIB: u64 = 1 << 30;

impl JobDefinition {
    /// Parses a JSDL document.
    ///
    /// # Errors
    ///
    /// [`JsdlError::Xml`] for malformed XML, [`JsdlError::Structure`] for
    /// missing mandatory elements, [`JsdlError::Value`] for
    /// unrecognized architecture/OS names or non-numeric bounds.
    pub fn parse(document: &str) -> Result<Self, JsdlError> {
        let root = xml::parse(document)?;
        if root.name != "JobDefinition" {
            return Err(JsdlError::Structure(format!(
                "root element is <{}>, expected <JobDefinition>",
                root.name
            )));
        }
        let description = root
            .child("JobDescription")
            .ok_or_else(|| JsdlError::Structure("missing <JobDescription>".into()))?;
        let resources = description
            .child("Resources")
            .ok_or_else(|| JsdlError::Structure("missing <Resources>".into()))?;

        let arch_name = resources
            .descend(&["CPUArchitecture", "CPUArchitectureName"])
            .map(|e| e.text.as_str())
            .ok_or_else(|| JsdlError::Structure("missing <CPUArchitectureName>".into()))?;
        let os_name = resources
            .descend(&["OperatingSystem", "OperatingSystemType", "OperatingSystemName"])
            .map(|e| e.text.as_str())
            .ok_or_else(|| JsdlError::Structure("missing <OperatingSystemName>".into()))?;

        let ert_secs = description
            .child_text("EstimatedRunningTime")
            .ok_or_else(|| JsdlError::Structure("missing <aria:EstimatedRunningTime>".into()))?;
        let ert_secs: u64 = ert_secs
            .parse()
            .map_err(|_| JsdlError::Value(format!("bad running time `{ert_secs}`")))?;
        let deadline = match description.child_text("Deadline") {
            None => None,
            Some(raw) => Some(SimTime::from_secs(
                raw.parse::<u64>()
                    .map_err(|_| JsdlError::Value(format!("bad deadline `{raw}`")))?,
            )),
        };

        Ok(JobDefinition {
            name: description
                .descend(&["JobIdentification", "JobName"])
                .map(|e| e.text.clone())
                .filter(|t| !t.is_empty()),
            arch: parse_architecture(arch_name)?,
            os: parse_operating_system(os_name)?,
            min_memory_bytes: lower_bound(resources, "TotalPhysicalMemory")?,
            min_disk_bytes: lower_bound(resources, "TotalDiskSpace")?,
            ert: SimDuration::from_secs(ert_secs),
            deadline,
        })
    }

    /// Converts the definition into an ARiA [`JobSpec`].
    ///
    /// Byte bounds are rounded *up* to whole gigabytes, matching the
    /// granularity of the paper's resource model.
    ///
    /// # Errors
    ///
    /// [`JsdlError::Value`] if a byte bound exceeds the resource model's
    /// `u16` gigabyte range.
    pub fn to_job_spec(&self, id: JobId) -> Result<JobSpec, JsdlError> {
        let to_gb = |bytes: u64, what: &str| -> Result<u16, JsdlError> {
            let gb = bytes.div_ceil(GIB);
            u16::try_from(gb)
                .map_err(|_| JsdlError::Value(format!("{what} bound of {bytes} bytes is absurd")))
        };
        let requirements = JobRequirements::new(
            self.arch,
            self.os,
            to_gb(self.min_memory_bytes, "memory")?,
            to_gb(self.min_disk_bytes, "disk")?,
        );
        Ok(match self.deadline {
            None => JobSpec::batch(id, requirements, self.ert),
            Some(deadline) => JobSpec::with_deadline(id, requirements, self.ert, deadline),
        })
    }

    /// Builds a definition from an ARiA [`JobSpec`].
    ///
    /// The name is canonicalized the same way [`JobDefinition::parse`]
    /// canonicalizes `<jsdl:JobName>` text — surrounding whitespace is
    /// trimmed and a blank name becomes `None` — so a definition built
    /// here compares equal to its own serialize/parse round trip.
    pub fn from_job_spec(spec: &JobSpec, name: Option<&str>) -> Self {
        JobDefinition {
            name: name.map(str::trim).filter(|n| !n.is_empty()).map(str::to_string),
            arch: spec.requirements.arch,
            os: spec.requirements.os,
            min_memory_bytes: spec.requirements.min_memory_gb as u64 * GIB,
            min_disk_bytes: spec.requirements.min_disk_gb as u64 * GIB,
            ert: spec.ert,
            deadline: spec.deadline,
        }
    }

    /// Serializes the definition as a JSDL document.
    ///
    /// The output round-trips through [`JobDefinition::parse`].
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        out.push_str(
            "<jsdl:JobDefinition xmlns:jsdl=\"http://schemas.ggf.org/jsdl/2005/11/jsdl\" \
             xmlns:aria=\"urn:aria:extensions:1\">\n",
        );
        out.push_str("  <jsdl:JobDescription>\n");
        // Written in canonical form (trimmed, blank elided) so that any
        // hand-built definition still round-trips through `parse`.
        if let Some(name) = self.name.as_deref().map(str::trim).filter(|n| !n.is_empty()) {
            out.push_str("    <jsdl:JobIdentification>\n");
            out.push_str(&format!(
                "      <jsdl:JobName>{}</jsdl:JobName>\n",
                xml::escape(name)
            ));
            out.push_str("    </jsdl:JobIdentification>\n");
        }
        out.push_str("    <jsdl:Resources>\n");
        out.push_str(&format!(
            "      <jsdl:CPUArchitecture><jsdl:CPUArchitectureName>{}</jsdl:CPUArchitectureName></jsdl:CPUArchitecture>\n",
            architecture_name(self.arch)
        ));
        out.push_str(&format!(
            "      <jsdl:OperatingSystem><jsdl:OperatingSystemType><jsdl:OperatingSystemName>{}</jsdl:OperatingSystemName></jsdl:OperatingSystemType></jsdl:OperatingSystem>\n",
            operating_system_name(self.os)
        ));
        out.push_str(&format!(
            "      <jsdl:TotalPhysicalMemory><jsdl:LowerBoundedRange>{}</jsdl:LowerBoundedRange></jsdl:TotalPhysicalMemory>\n",
            self.min_memory_bytes
        ));
        out.push_str(&format!(
            "      <jsdl:TotalDiskSpace><jsdl:LowerBoundedRange>{}</jsdl:LowerBoundedRange></jsdl:TotalDiskSpace>\n",
            self.min_disk_bytes
        ));
        out.push_str("    </jsdl:Resources>\n");
        out.push_str(&format!(
            "    <aria:EstimatedRunningTime>{}</aria:EstimatedRunningTime>\n",
            self.ert.as_secs()
        ));
        if let Some(deadline) = self.deadline {
            out.push_str(&format!(
                "    <aria:Deadline>{}</aria:Deadline>\n",
                deadline.as_secs()
            ));
        }
        out.push_str("  </jsdl:JobDescription>\n");
        out.push_str("</jsdl:JobDefinition>\n");
        out
    }
}

/// Reads `<element><LowerBoundedRange>N</LowerBoundedRange></element>`;
/// a missing element means "no requirement" (0 bytes).
fn lower_bound(resources: &Element, name: &str) -> Result<u64, JsdlError> {
    match resources.descend(&[name, "LowerBoundedRange"]) {
        None => Ok(0),
        Some(e) => e
            .text
            // JSDL ranges are xsd:double; accept integers and doubles.
            .parse::<f64>()
            .ok()
            .filter(|v| *v >= 0.0 && v.is_finite())
            .map(|v| v as u64)
            .ok_or_else(|| JsdlError::Value(format!("bad {name} bound `{}`", e.text))),
    }
}

/// Maps JSDL/CIM architecture names onto the paper's TOP500 set.
fn parse_architecture(name: &str) -> Result<Architecture, JsdlError> {
    let lower = name.to_ascii_lowercase();
    Ok(match lower.as_str() {
        "x86_64" | "amd64" | "x86-64" | "em64t" => Architecture::Amd64,
        "power" | "powerpc" | "ppc64" => Architecture::Power,
        "ia64" | "ia-64" | "itanium" => Architecture::Ia64,
        "sparc" | "sparc64" => Architecture::Sparc,
        "mips" | "mips64" => Architecture::Mips,
        "nec" | "sx" => Architecture::Nec,
        _ => {
            return Err(JsdlError::Value(format!("unknown CPU architecture `{name}`")));
        }
    })
}

fn architecture_name(arch: Architecture) -> &'static str {
    match arch {
        Architecture::Amd64 => "x86_64",
        Architecture::Power => "power",
        Architecture::Ia64 => "ia64",
        Architecture::Sparc => "sparc",
        Architecture::Mips => "mips",
        Architecture::Nec => "nec",
    }
}

/// Maps JSDL/CIM operating system names onto the paper's TOP500 set.
fn parse_operating_system(name: &str) -> Result<OperatingSystem, JsdlError> {
    let lower = name.to_ascii_lowercase();
    Ok(match lower.as_str() {
        "linux" => OperatingSystem::Linux,
        "solaris" | "sunos" => OperatingSystem::Solaris,
        "unix" | "aix" | "hp-ux" | "hpux" | "irix" | "unixware" => OperatingSystem::Unix,
        "windows" | "winnt" | "win2000" | "winxp" => OperatingSystem::Windows,
        "bsd" | "freebsd" | "netbsd" | "openbsd" | "bsdunix" => OperatingSystem::Bsd,
        _ => {
            return Err(JsdlError::Value(format!("unknown operating system `{name}`")));
        }
    })
}

fn operating_system_name(os: OperatingSystem) -> &'static str {
    match os {
        OperatingSystem::Linux => "LINUX",
        OperatingSystem::Solaris => "Solaris",
        OperatingSystem::Unix => "UNIX",
        OperatingSystem::Windows => "WINNT",
        OperatingSystem::Bsd => "FreeBSD",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> &'static str {
        r#"<?xml version="1.0"?>
<jsdl:JobDefinition xmlns:jsdl="http://schemas.ggf.org/jsdl/2005/11/jsdl" xmlns:aria="urn:aria:extensions:1">
  <jsdl:JobDescription>
    <jsdl:JobIdentification><jsdl:JobName>bio-seq-7</jsdl:JobName></jsdl:JobIdentification>
    <jsdl:Resources>
      <jsdl:CPUArchitecture><jsdl:CPUArchitectureName>power</jsdl:CPUArchitectureName></jsdl:CPUArchitecture>
      <jsdl:OperatingSystem><jsdl:OperatingSystemType><jsdl:OperatingSystemName>AIX</jsdl:OperatingSystemName></jsdl:OperatingSystemType></jsdl:OperatingSystem>
      <jsdl:TotalPhysicalMemory><jsdl:LowerBoundedRange>8589934592</jsdl:LowerBoundedRange></jsdl:TotalPhysicalMemory>
      <jsdl:TotalDiskSpace><jsdl:LowerBoundedRange>1073741824</jsdl:LowerBoundedRange></jsdl:TotalDiskSpace>
    </jsdl:Resources>
    <aria:EstimatedRunningTime>5400</aria:EstimatedRunningTime>
    <aria:Deadline>86400</aria:Deadline>
  </jsdl:JobDescription>
</jsdl:JobDefinition>"#
    }

    #[test]
    fn parses_a_full_document() {
        let def = JobDefinition::parse(sample_doc()).unwrap();
        assert_eq!(def.name.as_deref(), Some("bio-seq-7"));
        assert_eq!(def.arch, Architecture::Power);
        assert_eq!(def.os, OperatingSystem::Unix); // AIX maps to UNIX
        assert_eq!(def.min_memory_bytes, 8 * GIB);
        assert_eq!(def.min_disk_bytes, GIB);
        assert_eq!(def.ert, SimDuration::from_mins(90));
        assert_eq!(def.deadline, Some(SimTime::from_hours(24)));
    }

    #[test]
    fn converts_to_job_spec_with_ceiled_gigabytes() {
        let def = JobDefinition::parse(sample_doc()).unwrap();
        let spec = def.to_job_spec(JobId::new(3)).unwrap();
        assert_eq!(spec.id, JobId::new(3));
        assert_eq!(spec.requirements.min_memory_gb, 8);
        assert_eq!(spec.requirements.min_disk_gb, 1);
        assert!(spec.is_deadline());

        // 1 byte over 2 GiB must round UP to 3 GB.
        let mut partial = def.clone();
        partial.min_memory_bytes = 2 * GIB + 1;
        assert_eq!(partial.to_job_spec(JobId::new(4)).unwrap().requirements.min_memory_gb, 3);
    }

    #[test]
    fn xml_round_trips_through_parse() {
        let original = JobDefinition::parse(sample_doc()).unwrap();
        let reparsed = JobDefinition::parse(&original.to_xml()).unwrap();
        // OS name canonicalizes (AIX -> UNIX) but the model is identical.
        assert_eq!(original, reparsed);
    }

    #[test]
    fn from_job_spec_round_trips() {
        let req = JobRequirements::new(Architecture::Sparc, OperatingSystem::Bsd, 4, 16);
        let spec = JobSpec::with_deadline(
            JobId::new(9),
            req,
            SimDuration::from_hours(2),
            SimTime::from_hours(30),
        );
        let def = JobDefinition::from_job_spec(&spec, Some("round<trip>"));
        let reparsed = JobDefinition::parse(&def.to_xml()).unwrap();
        let spec_again = reparsed.to_job_spec(JobId::new(9)).unwrap();
        assert_eq!(spec_again, spec);
        assert_eq!(reparsed.name.as_deref(), Some("round<trip>"));
    }

    #[test]
    fn missing_resources_is_a_structure_error() {
        let doc = "<JobDefinition><JobDescription/></JobDefinition>";
        match JobDefinition::parse(doc) {
            Err(JsdlError::Structure(m)) => assert!(m.contains("Resources"), "{m}"),
            other => panic!("expected structure error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_root_is_a_structure_error() {
        let doc = "<NotAJob/>";
        assert!(matches!(JobDefinition::parse(doc), Err(JsdlError::Structure(_))));
    }

    #[test]
    fn unknown_arch_is_a_value_error() {
        let doc = sample_doc().replace("power", "quantum9000");
        assert!(matches!(JobDefinition::parse(&doc), Err(JsdlError::Value(_))));
    }

    #[test]
    fn missing_bounds_default_to_zero() {
        let doc = sample_doc()
            .replace(
                "<jsdl:TotalPhysicalMemory><jsdl:LowerBoundedRange>8589934592</jsdl:LowerBoundedRange></jsdl:TotalPhysicalMemory>",
                "",
            )
            .replace(
                "<jsdl:TotalDiskSpace><jsdl:LowerBoundedRange>1073741824</jsdl:LowerBoundedRange></jsdl:TotalDiskSpace>",
                "",
            );
        let def = JobDefinition::parse(&doc).unwrap();
        assert_eq!(def.min_memory_bytes, 0);
        assert_eq!(def.min_disk_bytes, 0);
        let spec = def.to_job_spec(JobId::new(1)).unwrap();
        assert_eq!(spec.requirements.min_memory_gb, 0);
    }

    #[test]
    fn double_valued_bounds_are_accepted() {
        // JSDL ranges are xsd:double.
        let doc = sample_doc().replace("8589934592", "8589934592.0");
        let def = JobDefinition::parse(&doc).unwrap();
        assert_eq!(def.min_memory_bytes, 8 * GIB);
    }

    #[test]
    fn negative_bounds_are_rejected() {
        let doc = sample_doc().replace("8589934592", "-5");
        assert!(matches!(JobDefinition::parse(&doc), Err(JsdlError::Value(_))));
    }

    #[test]
    fn batch_definition_omits_deadline() {
        let doc = sample_doc().replace("<aria:Deadline>86400</aria:Deadline>", "");
        let def = JobDefinition::parse(&doc).unwrap();
        assert_eq!(def.deadline, None);
        assert!(!def.to_job_spec(JobId::new(1)).unwrap().is_deadline());
        assert!(!def.to_xml().contains("Deadline"));
    }

    #[test]
    fn errors_display_their_cause() {
        let xml_err = JobDefinition::parse("<a").unwrap_err();
        assert!(xml_err.to_string().contains("xml error"));
        assert!(matches!(xml_err, JsdlError::Xml(_)));
    }
}
