//! The multiple-simultaneous-requests baseline (reference \[13\] of the
//! paper: Subramani et al., HPDC 2002).
//!
//! The paper's related work describes this decentralized comparator as
//! "submitting a job to the least loaded sites and subsequently revoking
//! it on all but the one that has commenced its execution", and calls
//! out its "evident drawback": many schedulers are loaded with jobs that
//! are frequently cancelled.
//!
//! This module implements that scheme over the same grid substrate as
//! ARiA so the two can be compared like-for-like: each job is placed in
//! the queues of the `k` least-loaded matching sites simultaneously;
//! when one replica starts executing, the others are revoked (with a
//! small notification latency). Placement, like the original, uses
//! queue-load information only — no cost bidding and no rescheduling.

use aria_grid::{JobId, JobSpec, NodeProfile, SchedulerQueue};
use aria_metrics::MetricsCollector;
use aria_sim::{EventQueue, SimDuration, SimRng, SimTime};
use aria_workload::{ArtModel, JobGenerator, ProfileGenerator, SubmissionSchedule};
use std::collections::BTreeMap;

use crate::config::PolicyMix;

#[derive(Debug, Clone)]
enum Event {
    Submit { job: JobSpec },
    Complete { node: usize },
    Revoke { node: usize, job: JobId },
    Sample,
}

/// A grid scheduled by multiple simultaneous requests with revocation.
///
/// # Example
///
/// ```
/// use aria_core::{MultiRequestScheduler, PolicyMix};
/// use aria_grid::Policy;
/// use aria_workload::{JobGenerator, SubmissionSchedule};
/// use aria_sim::{SimDuration, SimTime};
///
/// let mut grid = MultiRequestScheduler::new(
///     50,
///     PolicyMix::Uniform(Policy::Fcfs),
///     3, // replicas per job
///     SimTime::from_hours(12),
///     SimDuration::from_mins(5),
///     1,
/// );
/// let mut jobs = JobGenerator::paper_batch();
/// let schedule = SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_mins(1), 10);
/// grid.submit_schedule(&schedule, &mut jobs);
/// assert_eq!(grid.run().completed_count(), 10);
/// ```
#[derive(Debug)]
pub struct MultiRequestScheduler {
    profiles: Vec<NodeProfile>,
    queues: Vec<SchedulerQueue>,
    events: EventQueue<Event>,
    metrics: MetricsCollector,
    rng: SimRng,
    art: ArtModel,
    horizon: SimTime,
    sample_period: SimDuration,
    replicas: usize,
    revoke_latency: SimDuration,
    /// Nodes still holding a queued replica of each unstarted job.
    replica_sites: BTreeMap<JobId, Vec<usize>>,
    /// Replicas enqueued then cancelled (the scheme's wasted work).
    revoked_replicas: u64,
}

impl MultiRequestScheduler {
    /// Builds a grid with `nodes` nodes and `replicas` simultaneous
    /// requests per job; deterministic in the seed and using the same
    /// profile distributions as the ARiA [`crate::World`].
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(
        nodes: usize,
        policies: PolicyMix,
        replicas: usize,
        horizon: SimTime,
        sample_period: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(replicas > 0, "at least one replica is required");
        let mut rng = SimRng::seed_from(seed);
        let mut profile_rng = rng.fork(2);
        let generator = ProfileGenerator::paper();
        let profiles: Vec<NodeProfile> =
            (0..nodes).map(|_| generator.generate(&mut profile_rng)).collect();
        let queues: Vec<SchedulerQueue> =
            (0..nodes).map(|_| SchedulerQueue::new(policies.sample(&mut profile_rng))).collect();
        let mut events = EventQueue::new();
        events.schedule(SimTime::ZERO, Event::Sample);
        MultiRequestScheduler {
            profiles,
            queues,
            events,
            metrics: MetricsCollector::new(sample_period),
            rng,
            art: ArtModel::paper_baseline(),
            horizon,
            sample_period,
            replicas,
            revoke_latency: SimDuration::from_millis(300),
            replica_sites: BTreeMap::new(),
            revoked_replicas: 0,
        }
    }

    /// Node profiles (for feasibility resampling).
    pub fn profiles(&self) -> &[NodeProfile] {
        &self.profiles
    }

    /// Replicas that were enqueued and later revoked — the overload the
    /// paper criticizes this scheme for.
    pub fn revoked_replicas(&self) -> u64 {
        self.revoked_replicas
    }

    /// Schedules a job submission.
    pub fn submit_job(&mut self, at: SimTime, job: JobSpec) {
        self.events.schedule(at, Event::Submit { job });
    }

    /// Generates and schedules one feasible job per schedule instant.
    pub fn submit_schedule(&mut self, schedule: &SubmissionSchedule, jobs: &mut JobGenerator) {
        let mut workload_rng = self.rng.fork(3);
        let profiles = self.profiles.clone();
        for at in schedule.times() {
            let job = jobs.generate_feasible(at, &profiles, &mut workload_rng);
            self.submit_job(at, job);
        }
    }

    /// Runs to completion and returns the metrics.
    pub fn run(&mut self) -> &MetricsCollector {
        while let Some((now, event)) = self.events.pop() {
            match event {
                Event::Submit { job } => self.place(now, job),
                Event::Complete { node } => self.complete(now, node),
                Event::Revoke { node, job } => self.revoke(node, job),
                Event::Sample => self.sample(now),
            }
        }
        &self.metrics
    }

    /// Enqueues the job at the `replicas` least-loaded matching sites.
    fn place(&mut self, now: SimTime, job: JobSpec) {
        self.metrics.job_submitted(&job, now);
        let mut candidates: Vec<(SimDuration, usize)> = self
            .queues
            .iter()
            .zip(&self.profiles)
            .enumerate()
            .filter(|(_, (queue, profile))| {
                job.requirements.matches(profile) && queue.policy().is_batch() != job.is_deadline()
            })
            .map(|(i, (queue, _))| (queue.backlog(now), i))
            .collect();
        candidates.sort_by_key(|&(backlog, i)| (backlog, i));
        let sites: Vec<usize> =
            candidates.into_iter().take(self.replicas).map(|(_, i)| i).collect();
        if sites.is_empty() {
            return; // infeasible: the record stays incomplete
        }
        self.metrics.job_assigned(job.id, now, false);
        self.replica_sites.insert(job.id, sites.clone());
        for site in sites {
            let profile = self.profiles[site];
            self.queues[site].enqueue(job, now, &profile);
            self.try_start(now, site);
        }
    }

    fn try_start(&mut self, now: SimTime, node: usize) {
        loop {
            let Some(running) = self.queues[node].start_next(now) else {
                return;
            };
            let spec = running.spec;
            let started = running.started_at;
            let expected_end = running.expected_end;
            match self.replica_sites.remove(&spec.id) {
                Some(sites) => {
                    // First replica to reach the executor wins; revoke the
                    // queued copies elsewhere.
                    for other in sites {
                        if other != node {
                            self.events.schedule(
                                now + self.revoke_latency,
                                Event::Revoke { node: other, job: spec.id },
                            );
                        }
                    }
                    let ertp = expected_end.saturating_since(started);
                    let art = self.art.actual_running_time(spec.ert, ertp, &mut self.rng);
                    self.metrics.job_started(spec.id, node as u32, now);
                    self.events.schedule(now + art, Event::Complete { node });
                    return;
                }
                None => {
                    // A replica of a job that already started elsewhere
                    // slipped into execution before its revocation
                    // arrived: cancel it on the spot and try the next
                    // queued job.
                    self.revoked_replicas += 1;
                    self.queues[node].complete_running();
                }
            }
        }
    }

    fn revoke(&mut self, node: usize, job: JobId) {
        if self.queues[node].remove_waiting(job).is_some() {
            self.revoked_replicas += 1;
        }
    }

    fn complete(&mut self, now: SimTime, node: usize) {
        let finished = self.queues[node].complete_running().expect("running job completes");
        self.metrics.job_completed(finished.spec.id, now);
        self.try_start(now, node);
    }

    fn sample(&mut self, now: SimTime) {
        let idle = self.queues.iter().filter(|q| q.is_idle()).count();
        let queued = self.queues.iter().map(|q| q.waiting_len()).sum();
        self.metrics.sample_gauges(idle, queued);
        let next = now + self.sample_period;
        if next <= self.horizon {
            self.events.schedule(next, Event::Sample);
        }
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &MetricsCollector {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(replicas: usize, seed: u64) -> MultiRequestScheduler {
        MultiRequestScheduler::new(
            40,
            PolicyMix::paper_mixed(),
            replicas,
            SimTime::from_hours(12),
            SimDuration::from_mins(5),
            seed,
        )
    }

    fn submit(grid: &mut MultiRequestScheduler, count: usize, interval_secs: u64) {
        let mut jobs = JobGenerator::paper_batch();
        let schedule = SubmissionSchedule::new(
            SimTime::from_mins(1),
            SimDuration::from_secs(interval_secs),
            count,
        );
        grid.submit_schedule(&schedule, &mut jobs);
    }

    #[test]
    fn completes_every_job_exactly_once() {
        let mut grid = scheduler(3, 1);
        submit(&mut grid, 40, 30);
        let metrics = grid.run();
        assert_eq!(metrics.completed_count(), 40);
        for record in metrics.records().values() {
            assert!(record.is_completed());
        }
    }

    #[test]
    fn revocations_happen_under_replication() {
        let mut grid = scheduler(3, 2);
        submit(&mut grid, 60, 10);
        grid.run();
        assert!(
            grid.revoked_replicas() > 0,
            "3-way replication must cancel surplus replicas"
        );
        // Each job wastes at most replicas-1 queue slots.
        assert!(grid.revoked_replicas() <= 60 * 2);
    }

    #[test]
    fn single_replica_never_revokes() {
        let mut grid = scheduler(1, 3);
        submit(&mut grid, 30, 20);
        let metrics = grid.run();
        assert_eq!(metrics.completed_count(), 30);
        assert_eq!(grid.revoked_replicas(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut grid = scheduler(2, seed);
            submit(&mut grid, 25, 20);
            grid.run().completion_summary().mean()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn replication_does_not_lose_or_duplicate_completions() {
        for replicas in [1, 2, 4, 8] {
            let mut grid = scheduler(replicas, 11);
            submit(&mut grid, 50, 5);
            let metrics = grid.run();
            assert_eq!(
                metrics.completed_count(),
                50,
                "replicas={replicas} lost or duplicated completions"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        scheduler(0, 1);
    }
}
