//! Runtime effect tracer: the dynamic half of the effect-map analysis.
//!
//! `cargo xtask effects` (DESIGN.md §13) statically derives, per event
//! handler, the set of *effect classes* — named groups of [`World`]
//! fields — the handler may write, and commits the result as
//! `EFFECTS.json`. That map is what the sharded parallel runner
//! (ROADMAP item 2) will trust to prove handlers from different regions
//! cannot race. A static map is only as good as its analyzer, so this
//! module provides the soundness cross-check from the other side: run a
//! world event by event, fingerprint every tracked class before and
//! after each [`World::handle`] call, and record which classes each
//! handler *actually* mutated. [`EffectAudit::check_against`] then
//! asserts `observed ⊆ declared` — any touch the analyzer failed to
//! predict fails the audit (and CI) until the map is regenerated and
//! the new edge is reviewed.
//!
//! The fingerprints hash each class's `Debug` rendering (the derived
//! `Debug` of every tracked structure prints its full state, and the
//! repo-wide determinism rules keep that rendering a pure function of
//! state), so the tracer needs no per-field instrumentation and cannot
//! drift from the structs. Like [`World::run_checked`], tracing is
//! read-only between events: a traced run returns bit-for-bit the same
//! metrics as [`World::run`] — `tests/effects_map.rs` pins that over
//! the determinism goldens. Fingerprinting is O(world) per event; use
//! test-scale worlds only.
//!
//! Two classes are deliberately untracked: `scratch` (the `candidates`/
//! `picked` reusable buffers — meaningless across events by contract)
//! and `probe` (the observability sink — outside the simulation state
//! by construction, pinned separately by `tests/probe_golden.rs`).

use crate::world::{Event, World};
use aria_metrics::MetricsCollector;
use aria_probe::schema as probe_schema;
use aria_probe::Probe;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// The effect classes the tracer fingerprints, in fingerprint-array
/// order. Must stay in sync with the classes `cargo xtask effects`
/// derives (the analyzer's self-check and `tests/effects_map.rs` both
/// fail on drift).
pub const TRACKED_CLASSES: &[&str] = &[
    "accounting",
    "alive-index",
    "config",
    "event-queue",
    "fault",
    "flood-table",
    "job-table",
    "metrics",
    "node-state",
    "rng-fault",
    "rng-main",
    "topology",
];

/// Streaming FNV-1a over `Debug` output — no intermediate `String`.
struct Fnv(u64);

impl std::fmt::Write for Fnv {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for byte in s.bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        Ok(())
    }
}

/// FNV-1a fingerprint of a value's `Debug` rendering.
fn fingerprint(value: &dyn std::fmt::Debug) -> u64 {
    let mut fnv = Fnv(0xcbf2_9ce4_8422_2325);
    write!(fnv, "{value:?}").expect("fnv sink never fails");
    fnv.0
}

/// The kebab-case handler name of an event — the key the static map
/// files handlers under. One name per [`Event`] variant; adding a
/// variant without extending this match is a compile error, and the
/// analyzer derives the same names from the variant idents, so the two
/// sides cannot disagree silently.
pub(crate) fn handler_name(event: &Event) -> &'static str {
    match event {
        Event::Deliver { .. } => "deliver",
        Event::Submit { .. } => "submit",
        Event::AcceptWindowClosed { .. } => "accept-window-closed",
        Event::RetryRequest { .. } => "retry-request",
        Event::ExecutionComplete { .. } => "execution-complete",
        Event::InformTick { .. } => "inform-tick",
        Event::DispatchRetry { .. } => "dispatch-retry",
        Event::Join => "join",
        Event::Crash => "crash",
        Event::RecoverJob { .. } => "recover-job",
        Event::AssignTimeout { .. } => "assign-timeout",
        Event::PartitionStart { .. } => "partition-start",
        Event::PartitionEnd { .. } => "partition-end",
        Event::Sample => "sample",
    }
}

/// Observed per-handler write sets, accumulated by
/// [`World::run_effect_traced`].
#[derive(Debug, Default, Clone)]
pub struct EffectAudit {
    /// handler name → classes seen mutated across at least one event.
    observed: BTreeMap<&'static str, BTreeSet<&'static str>>,
    /// Events traced.
    events: u64,
}

impl EffectAudit {
    /// An empty audit.
    pub fn new() -> Self {
        EffectAudit::default()
    }

    /// Events traced so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The observed map: `(handler, mutated classes)`, sorted.
    pub fn observed(&self) -> Vec<(&'static str, Vec<&'static str>)> {
        self.observed.iter().map(|(h, cs)| (*h, cs.iter().copied().collect())).collect()
    }

    fn record(&mut self, handler: &'static str, before: &[u64], after: &[u64]) {
        self.events += 1;
        let touched = self.observed.entry(handler).or_default();
        for (i, class) in TRACKED_CLASSES.iter().enumerate() {
            if before[i] != after[i] {
                touched.insert(class);
            }
        }
    }

    /// Asserts every observed write is declared by the static map:
    /// `declared` is handler name → statically derived write classes
    /// (as read from `EFFECTS.json`). Returns every undeclared
    /// `(handler, class)` edge as one error string.
    pub fn check_against(
        &self,
        declared: &BTreeMap<String, BTreeSet<String>>,
    ) -> Result<(), String> {
        let mut drift = Vec::new();
        for (handler, classes) in &self.observed {
            let Some(allowed) = declared.get(*handler) else {
                drift.push(format!("handler `{handler}` missing from the static map"));
                continue;
            };
            for class in classes {
                if !allowed.contains(*class) {
                    drift.push(format!(
                        "handler `{handler}` mutated `{class}` — not in its declared write set"
                    ));
                }
            }
        }
        if drift.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "effect drift: observed writes outside EFFECTS.json \
                 (regenerate with `cargo xtask effects` and review the diff):\n  {}",
                drift.join("\n  ")
            ))
        }
    }

    /// Exports the audit as JSONL in the probe trace style: a header
    /// line, then one line per handler with its observed write classes.
    pub fn to_jsonl(&self) -> String {
        let mut out = probe_schema::effect_audit_header(self.events);
        out.push('\n');
        for (handler, classes) in &self.observed {
            let classes: Vec<&str> = classes.iter().copied().collect();
            out.push_str(&probe_schema::effect_audit_line(handler, &classes));
            out.push('\n');
        }
        out
    }
}

impl<P: Probe> World<P> {
    /// One fingerprint per [`TRACKED_CLASSES`] entry, in order.
    fn effect_fingerprints(&self) -> [u64; TRACKED_CLASSES.len()] {
        [
            // accounting
            fingerprint(&(&self.abandoned, &self.crashed, &self.lost, self.recovered, self.processed)),
            // alive-index
            fingerprint(&(&self.alive, self.idle_alive, self.queued_alive)),
            // config
            fingerprint(&self.config),
            // event-queue (popped before capture, so only handler
            // schedules show up as diffs)
            fingerprint(&self.events),
            // fault
            fingerprint(&(self.fault_active, self.fault_seq, self.partitions_open, &self.fault_log)),
            // flood-table
            fingerprint(&self.floods),
            // job-table
            fingerprint(&self.jobs),
            // metrics
            fingerprint(&self.metrics),
            // node-state
            fingerprint(&self.nodes),
            // rng-fault
            fingerprint(&self.fault_rng),
            // rng-main
            fingerprint(&self.rng),
            // topology
            fingerprint(&(&self.topology, &self.blatant)),
        ]
    }

    /// Runs to completion like [`World::run`], fingerprinting every
    /// tracked effect class around every drained event and recording
    /// the observed per-handler write sets into `audit`.
    ///
    /// Tracing is read-only, so a traced run produces bit-for-bit the
    /// same metrics as [`World::run`] — `tests/effects_map.rs` pins
    /// that equivalence over the determinism goldens. O(world) per
    /// event; test-scale worlds only.
    pub fn run_effect_traced(&mut self, audit: &mut EffectAudit) -> &MetricsCollector {
        while let Some((now, event)) = self.events.pop() {
            self.processed += 1;
            let handler = handler_name(&event);
            let before = self.effect_fingerprints();
            self.handle(now, event);
            let after = self.effect_fingerprints();
            audit.record(handler, &before, &after);
        }
        #[cfg(debug_assertions)]
        self.check_invariants();
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use aria_sim::{SimDuration, SimTime};
    use aria_workload::{JobGenerator, JobGeneratorConfig, SubmissionSchedule};

    fn traced_world(seed: u64) -> (World, EffectAudit) {
        let mut world = World::new(WorldConfig::small_test(20), seed);
        let mut jobs = JobGenerator::new(JobGeneratorConfig::paper_batch());
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(2), SimDuration::from_secs(30), 8);
        world.submit_schedule(&schedule, &mut jobs);
        let mut audit = EffectAudit::new();
        world.run_effect_traced(&mut audit);
        (world, audit)
    }

    #[test]
    fn traced_run_matches_untraced_run_bit_for_bit() {
        let (traced, audit) = traced_world(7);
        let mut plain = World::new(WorldConfig::small_test(20), 7);
        let mut jobs = JobGenerator::new(JobGeneratorConfig::paper_batch());
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(2), SimDuration::from_secs(30), 8);
        plain.submit_schedule(&schedule, &mut jobs);
        plain.run();
        assert!(audit.events() > 0);
        assert_eq!(traced.metrics().records(), plain.metrics().records());
        assert_eq!(traced.metrics().completed_count(), plain.metrics().completed_count());
        assert_eq!(traced.metrics().traffic(), plain.metrics().traffic());
        assert_eq!(
            traced.metrics().idle_series().values(),
            plain.metrics().idle_series().values()
        );
    }

    #[test]
    fn observed_classes_are_plausible() {
        let (_, audit) = traced_world(11);
        let observed: BTreeMap<_, _> = audit.observed().into_iter().collect();
        // Submission always draws the initiator and registers pending
        // state; delivery always moves protocol state somewhere.
        assert!(observed["submit"].contains(&"rng-main"));
        assert!(observed["submit"].contains(&"job-table"));
        assert!(!observed["deliver"].is_empty(), "deliveries must move protocol state");
        // A reliable small world never touches the fault layer.
        for classes in observed.values() {
            assert!(!classes.contains(&"rng-fault"));
            assert!(!classes.contains(&"config"));
            assert!(!classes.contains(&"topology"));
        }
    }

    #[test]
    fn check_against_flags_undeclared_edges_and_accepts_supersets() {
        let (_, audit) = traced_world(3);
        // Declaring everything passes.
        let mut declared: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (handler, _) in audit.observed() {
            declared.insert(
                handler.to_string(),
                TRACKED_CLASSES.iter().map(|c| c.to_string()).collect(),
            );
        }
        assert!(audit.check_against(&declared).is_ok());
        // Removing one observed class from one handler fails loudly.
        let (handler, classes) = &audit.observed()[0];
        declared.get_mut(*handler).unwrap().remove(classes[0]);
        let err = audit.check_against(&declared).unwrap_err();
        assert!(err.contains(*handler), "{err}");
        assert!(err.contains(classes[0]), "{err}");
        // A handler absent from the map fails too.
        declared.remove(*handler);
        assert!(audit.check_against(&declared).unwrap_err().contains("missing"));
    }

    #[test]
    fn jsonl_export_is_parseable_shaped() {
        let (_, audit) = traced_world(5);
        let jsonl = audit.to_jsonl();
        let mut lines = jsonl.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"schema\":\"aria-effect-audit\""), "{header}");
        for line in lines {
            assert!(line.starts_with("{\"handler\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
    }
}
