//! The gossip-dissemination baseline (reference \[25\] of the paper:
//! Erdil & Lewis, P2P 2007).
//!
//! The paper's related work contrasts ARiA's on-demand REQUEST floods
//! with protocols that "disseminat\[e\] the state of the available
//! resources across the grid; this information is cached by remote nodes
//! and used to optimally allocate incoming jobs". This module implements
//! that scheme over the same substrate: nodes periodically push load
//! digests to random overlay neighbors, every node accumulates a
//! (staleness-prone) cache of remote backlogs, and job submissions are
//! placed straight from the initiator's cache — no discovery round trip,
//! but decisions are made on old news.
//!
//! The comparison it enables: proactive state dissemination pays a
//! constant gossip bandwidth and places jobs instantly on cached (stale)
//! state, while ARiA pays per-job flood bandwidth for fresh offers plus
//! rescheduling. Node resource *profiles* (architecture, OS, capacities)
//! are static metadata assumed globally known here — in a deployment they
//! would ride along the same gossip messages once.

use aria_grid::{JobSpec, NodeProfile, SchedulerQueue};
use aria_metrics::{MetricsCollector, TrafficClass};
use aria_overlay::{builders, LatencyModel, Topology};
use aria_sim::{EventQueue, SimDuration, SimRng, SimTime};
use aria_workload::{ArtModel, JobGenerator, ProfileGenerator, SubmissionSchedule};
use std::collections::BTreeMap;

use crate::config::PolicyMix;

/// One cached observation of a remote node's load.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CacheEntry {
    /// The remote queue's estimated backlog when observed.
    backlog: SimDuration,
    /// When the observation was made (at the observed node).
    observed_at: SimTime,
}

/// A gossip digest: a bounded set of the sender's freshest observations.
type Digest = Vec<(usize, CacheEntry)>;

#[derive(Debug, Clone)]
enum Event {
    Submit { job: JobSpec },
    Complete { node: usize },
    GossipTick { node: usize },
    DeliverDigest { to: usize, digest: Digest },
    Sample,
}

/// A grid scheduled from gossip-disseminated load caches.
///
/// # Example
///
/// ```
/// use aria_core::{GossipScheduler, PolicyMix};
/// use aria_workload::{JobGenerator, SubmissionSchedule};
/// use aria_sim::{SimDuration, SimTime};
///
/// let mut grid = GossipScheduler::new(
///     50,
///     PolicyMix::paper_mixed(),
///     SimTime::from_hours(12),
///     SimDuration::from_mins(5),
///     1,
/// );
/// let mut jobs = JobGenerator::paper_batch();
/// let schedule = SubmissionSchedule::new(SimTime::from_mins(5), SimDuration::from_mins(1), 10);
/// grid.submit_schedule(&schedule, &mut jobs);
/// assert_eq!(grid.run().completed_count(), 10);
/// ```
#[derive(Debug)]
pub struct GossipScheduler {
    profiles: Vec<NodeProfile>,
    queues: Vec<SchedulerQueue>,
    caches: Vec<BTreeMap<usize, CacheEntry>>,
    topology: Topology,
    events: EventQueue<Event>,
    metrics: MetricsCollector,
    rng: SimRng,
    art: ArtModel,
    horizon: SimTime,
    sample_period: SimDuration,
    /// How often each node pushes a digest (anti-entropy period).
    gossip_period: SimDuration,
    /// Neighbors contacted per gossip round.
    fanout: usize,
    /// Entries carried per digest.
    digest_size: usize,
    latency: LatencyModel,
    /// Scratch buffer for per-round neighbor sampling (reused so the
    /// gossip hot loop does not allocate).
    peers: Vec<aria_overlay::NodeId>,
}

impl GossipScheduler {
    /// Builds a gossiping grid; deterministic in the seed, with the same
    /// node distributions as the ARiA [`crate::World`] and a degree-4
    /// random overlay for gossip peering.
    pub fn new(
        nodes: usize,
        policies: PolicyMix,
        horizon: SimTime,
        sample_period: SimDuration,
        seed: u64,
    ) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let mut overlay_rng = rng.fork(1);
        let mut profile_rng = rng.fork(2);
        let latency = LatencyModel::default();
        let topology = builders::random_regular(nodes, 4, &latency, &mut overlay_rng);
        let generator = ProfileGenerator::paper();
        let profiles: Vec<NodeProfile> =
            (0..nodes).map(|_| generator.generate(&mut profile_rng)).collect();
        let queues: Vec<SchedulerQueue> =
            (0..nodes).map(|_| SchedulerQueue::new(policies.sample(&mut profile_rng))).collect();

        let mut events = EventQueue::new();
        events.schedule(SimTime::ZERO, Event::Sample);
        let gossip_period = SimDuration::from_mins(1);
        let mut scheduler = GossipScheduler {
            profiles,
            queues,
            caches: vec![BTreeMap::new(); nodes],
            topology,
            events,
            metrics: MetricsCollector::new(sample_period),
            rng,
            art: ArtModel::paper_baseline(),
            horizon,
            sample_period,
            gossip_period,
            fanout: 2,
            digest_size: 16,
            latency,
            peers: Vec::new(),
        };
        // Stagger the gossip rounds like ARiA staggers INFORM ticks.
        for node in 0..nodes {
            let offset = SimDuration::from_millis(
                scheduler.rng.u64_range(0, gossip_period.as_millis().max(1)),
            );
            scheduler.events.schedule(SimTime::ZERO + offset, Event::GossipTick { node });
        }
        scheduler
    }

    /// Node profiles (for feasibility resampling).
    pub fn profiles(&self) -> &[NodeProfile] {
        &self.profiles
    }

    /// Schedules a job submission (to a random initiator at event time).
    pub fn submit_job(&mut self, at: SimTime, job: JobSpec) {
        self.events.schedule(at, Event::Submit { job });
    }

    /// Generates and schedules one feasible job per schedule instant.
    pub fn submit_schedule(&mut self, schedule: &SubmissionSchedule, jobs: &mut JobGenerator) {
        let mut workload_rng = self.rng.fork(3);
        let profiles = self.profiles.clone();
        for at in schedule.times() {
            let job = jobs.generate_feasible(at, &profiles, &mut workload_rng);
            self.submit_job(at, job);
        }
    }

    /// Runs to completion and returns the metrics.
    pub fn run(&mut self) -> &MetricsCollector {
        while let Some((now, event)) = self.events.pop() {
            match event {
                Event::Submit { job } => self.place(now, job),
                Event::Complete { node } => self.complete(now, node),
                Event::GossipTick { node } => self.gossip_tick(now, node),
                Event::DeliverDigest { to, digest } => self.merge_digest(to, digest),
                Event::Sample => self.sample(now),
            }
        }
        &self.metrics
    }

    /// Places a job from the initiator's cache: the cached matching node
    /// with the smallest *observed* backlog (ties: oldest id). Nodes the
    /// initiator has never heard of count as idle candidates only when
    /// the cache has no matching entry at all (cold-start fallback).
    fn place(&mut self, now: SimTime, job: JobSpec) {
        self.metrics.job_submitted(&job, now);
        let initiator = self.rng.index(self.queues.len());
        let matches = |i: usize| {
            job.requirements.matches(&self.profiles[i])
                && self.queues[i].policy().is_batch() != job.is_deadline()
        };
        let cached_best = self.caches[initiator]
            .iter()
            .filter(|(&i, _)| matches(i))
            .min_by_key(|(&i, entry)| (entry.backlog, i))
            .map(|(&i, _)| i);
        let target = cached_best.or_else(|| {
            // Cold start: the cache knows no matching node yet; fall back
            // to a random matching node (a real system would flood or
            // wait — this keeps the comparison fair to gossip).
            let candidates: Vec<usize> = (0..self.queues.len()).filter(|&i| matches(i)).collect();
            if candidates.is_empty() {
                None
            } else {
                Some(*self.rng.choose(&candidates))
            }
        });
        let Some(target) = target else {
            return; // infeasible: the record stays incomplete
        };
        // The placement travels as one ASSIGN-class message.
        self.metrics.record_message(TrafficClass::Assign);
        self.metrics.job_assigned(job.id, now, false);
        let profile = self.profiles[target];
        self.queues[target].enqueue(job, now, &profile);
        self.try_start(now, target);
    }

    fn try_start(&mut self, now: SimTime, node: usize) {
        let Some(running) = self.queues[node].start_next(now) else {
            return;
        };
        let spec = running.spec;
        let ertp = running.expected_end.saturating_since(running.started_at);
        let art = self.art.actual_running_time(spec.ert, ertp, &mut self.rng);
        self.metrics.job_started(spec.id, node as u32, now);
        self.events.schedule(now + art, Event::Complete { node });
    }

    fn complete(&mut self, now: SimTime, node: usize) {
        let finished = self.queues[node].complete_running().expect("running job completes");
        self.metrics.job_completed(finished.spec.id, now);
        self.try_start(now, node);
    }

    /// One gossip round: push the freshest `digest_size` observations
    /// (own state always included) to `fanout` random neighbors.
    fn gossip_tick(&mut self, now: SimTime, node: usize) {
        if now > self.horizon {
            return; // stop the periodic chain
        }
        // Refresh the node's own entry.
        let own = CacheEntry { backlog: self.queues[node].backlog(now), observed_at: now };
        self.caches[node].insert(node, own);

        let mut entries: Vec<(usize, CacheEntry)> =
            self.caches[node].iter().map(|(&i, &e)| (i, e)).collect();
        entries.sort_by_key(|&(i, e)| (std::cmp::Reverse(e.observed_at), i));
        entries.truncate(self.digest_size);

        let node_id = aria_overlay::NodeId::new(node as u32);
        // Reuse the scratch peer buffer; the draw sequence matches the
        // allocating sampler, so seeded runs are unchanged.
        let mut peers = std::mem::take(&mut self.peers);
        self.topology.sample_neighbors_into(node_id, self.fanout, None, &mut self.rng, &mut peers);
        for &neighbor in &peers {
            // Gossip digests are INFORM-sized state messages.
            self.metrics.record_message(TrafficClass::Inform);
            let delay = self.latency.sample(&mut self.rng);
            self.events.schedule(
                now + delay,
                Event::DeliverDigest { to: neighbor.index(), digest: entries.clone() },
            );
        }
        self.peers = peers;
        self.events.schedule(now + self.gossip_period, Event::GossipTick { node });
    }

    /// Anti-entropy merge: keep the freshest observation per node.
    fn merge_digest(&mut self, to: usize, digest: Digest) {
        for (node, entry) in digest {
            if node == to {
                continue; // a node is its own best source of truth
            }
            match self.caches[to].get(&node) {
                Some(existing) if existing.observed_at >= entry.observed_at => {}
                _ => {
                    self.caches[to].insert(node, entry);
                }
            }
        }
    }

    fn sample(&mut self, now: SimTime) {
        let idle = self.queues.iter().filter(|q| q.is_idle()).count();
        let queued = self.queues.iter().map(|q| q.waiting_len()).sum();
        self.metrics.sample_gauges(idle, queued);
        let next = now + self.sample_period;
        if next <= self.horizon {
            self.events.schedule(next, Event::Sample);
        }
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &MetricsCollector {
        &self.metrics
    }

    /// How many distinct remote nodes the average cache currently knows.
    pub fn avg_cache_coverage(&self) -> f64 {
        if self.caches.is_empty() {
            return 0.0;
        }
        self.caches.iter().map(BTreeMap::len).sum::<usize>() as f64 / self.caches.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(seed: u64) -> GossipScheduler {
        GossipScheduler::new(
            40,
            PolicyMix::paper_mixed(),
            SimTime::from_hours(12),
            SimDuration::from_mins(5),
            seed,
        )
    }

    fn submit(grid: &mut GossipScheduler, count: usize, interval_secs: u64) {
        let mut jobs = JobGenerator::paper_batch();
        let schedule = SubmissionSchedule::new(
            SimTime::from_mins(5),
            SimDuration::from_secs(interval_secs),
            count,
        );
        grid.submit_schedule(&schedule, &mut jobs);
    }

    #[test]
    fn completes_all_jobs() {
        let mut grid = scheduler(1);
        submit(&mut grid, 40, 30);
        assert_eq!(grid.run().completed_count(), 40);
    }

    #[test]
    fn gossip_spreads_state_across_the_grid() {
        let mut grid = scheduler(2);
        // No jobs: just let gossip run for a while.
        grid.run();
        // After 12h of one-minute rounds every cache should know a large
        // share of the 40-node grid.
        assert!(
            grid.avg_cache_coverage() > 30.0,
            "avg cache coverage {}",
            grid.avg_cache_coverage()
        );
    }

    #[test]
    fn gossip_traffic_is_constant_state_dissemination() {
        let mut grid = scheduler(3);
        submit(&mut grid, 20, 60);
        let metrics = grid.run();
        // Inform-class messages: fanout 2 per node per minute over 12h.
        let informs = metrics.traffic().messages(TrafficClass::Inform);
        let expected = 40 * 2 * 12 * 60;
        assert!(
            (informs as f64) > expected as f64 * 0.9 && (informs as f64) < expected as f64 * 1.1,
            "informs = {informs}, expected ≈ {expected}"
        );
        // One ASSIGN per placed job, no REQUEST floods at all.
        assert_eq!(metrics.traffic().messages(TrafficClass::Request), 0);
        assert_eq!(metrics.traffic().messages(TrafficClass::Assign), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut grid = scheduler(seed);
            submit(&mut grid, 25, 20);
            grid.run().completion_summary().mean()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn placements_respect_requirements() {
        let mut grid = scheduler(5);
        submit(&mut grid, 30, 20);
        grid.run();
        for record in grid.metrics().records().values() {
            assert!(record.is_completed());
            assert_eq!(record.reschedules, 0); // no rescheduling phase
        }
    }
}
