//! Tiered per-flood visited sets.
//!
//! A flood's duplicate-suppression set used to be a [`NodeBitset`] sized
//! to the whole world: O(N) words per live flood, which is exactly the
//! memory wall between the paper's 500 nodes and a 100k+ node grid.
//! Most floods only ever visit a few dozen nodes (the hop budget and
//! fan-out bound the reach long before the world does), so
//! [`VisitedSet`] stores members in an inline sorted array first and
//! spills to the bitset tier only past [`SMALL_CAP`] members:
//!
//! * **Small tier** — a fixed `[u32; SMALL_CAP]` kept sorted; membership
//!   is a binary search, insertion a short `copy_within`. No heap at all.
//! * **Spill tier** — the classic [`NodeBitset`], sized to the world at
//!   the moment the slot was (re)armed. A slot that once spilled keeps
//!   its word allocation across recycling, so paper-scale runs (where
//!   floods saturate the overlay) reuse a handful of bitsets exactly as
//!   before.
//!
//! Both tiers track an explicit population count, so `len`/`is_empty`
//! are O(1) — the invariant audit probes every live flood's set and must
//! not pay an O(N/64) word scan per probe.
//!
//! The set semantics (`insert` returns *fresh*, `contains`, O(1)
//! emptiness) are identical across tiers and to the old all-bitset
//! representation; the proptests at the bottom pin that equivalence, and
//! the 500-node goldens pin it end-to-end. Representation only — no RNG
//! draw or event ordering depends on the tier.

use aria_overlay::NodeId;

/// Members held inline before spilling to the bitset tier. Sized so the
/// common few-dozen-hop flood never allocates, while one slot stays a
/// cache-friendly couple of lines.
pub(crate) const SMALL_CAP: usize = 32;

/// A bitset over node indices, sized in 64-bit words.
///
/// Out-of-range queries answer `false` and out-of-range inserts grow the
/// set, so floods opened before an overlay join keep working after it.
/// The population count is tracked, making [`NodeBitset::is_empty`] O(1).
#[derive(Debug, Default, Clone)]
pub(crate) struct NodeBitset {
    words: Vec<u64>,
    /// Number of set bits (kept in lock-step by `insert`/`clear`).
    ones: u32,
}

impl NodeBitset {
    /// An empty set with capacity for `nodes` indices. Production sets
    /// start unallocated (a spill tier materializes lazily); the tests
    /// and the equivalence reference build sized sets directly.
    #[cfg(test)]
    pub fn with_capacity(nodes: usize) -> Self {
        NodeBitset { words: vec![0; nodes.div_ceil(64)], ones: 0 }
    }

    /// Whether `node` is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        let index = node.index();
        self.words.get(index / 64).is_some_and(|w| w & (1 << (index % 64)) != 0)
    }

    /// Inserts `node`, growing the set if needed. Returns `false` if the
    /// node was already present.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let index = node.index();
        if index / 64 >= self.words.len() {
            self.words.resize(index / 64 + 1, 0);
        }
        let word = &mut self.words[index / 64];
        let bit = 1 << (index % 64);
        let fresh = *word & bit == 0;
        *word |= bit;
        self.ones += u32::from(fresh);
        fresh
    }

    /// Empties the set, keeping its capacity (constant-time per word).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Whether the set contains no nodes at all (O(1): tracked count).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of members (O(1): tracked count).
    pub fn len(&self) -> usize {
        self.ones as usize
    }

    /// Re-sizes an *empty* set's capacity to `nodes` indices, so a
    /// recycled set matches the current world instead of re-growing word
    /// by word on its first out-of-range insert.
    pub fn reset_capacity(&mut self, nodes: usize) {
        debug_assert!(self.is_empty(), "reset_capacity on a non-empty set");
        self.words.resize(nodes.div_ceil(64), 0);
    }

    /// Capacity in indices (diagnostics and tests).
    #[cfg(test)]
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }
}

/// A flood's visited set: inline sorted small-set first, bitset past
/// [`SMALL_CAP`] members (see the module docs).
#[derive(Debug, Clone)]
pub(crate) struct VisitedSet {
    /// Population count across whichever tier is active (O(1) `len`).
    len: u32,
    /// Whether the bitset tier is authoritative.
    spilled: bool,
    /// World size recorded at (re)arm time; sizes the spill allocation.
    world: u32,
    /// The inline sorted tier: `small[..len]` ascending while not spilled.
    small: [u32; SMALL_CAP],
    /// The spill tier. Unallocated until the first spill; retained (and
    /// re-sized to the current world) across [`VisitedSet::reset`] so
    /// recycled flood slots reuse the words.
    bits: NodeBitset,
}

impl Default for VisitedSet {
    fn default() -> Self {
        VisitedSet::with_capacity(0)
    }
}

impl VisitedSet {
    /// An empty set for a world of `nodes` indices. Allocation-free: the
    /// bitset tier materializes only if the set spills.
    pub fn with_capacity(nodes: usize) -> Self {
        VisitedSet {
            len: 0,
            spilled: false,
            world: nodes as u32,
            small: [0; SMALL_CAP],
            bits: NodeBitset::default(),
        }
    }

    /// Re-arms a recycled set for a world of `nodes` indices: empties it
    /// and, if a spill allocation exists, re-sizes it to the *current*
    /// world up front (a recycled slot must not keep its pre-join
    /// capacity and re-grow on the first out-of-range insert).
    pub fn reset(&mut self, nodes: usize) {
        self.len = 0;
        self.spilled = false;
        self.world = nodes as u32;
        if !self.bits.words_unallocated() {
            self.bits.clear();
            self.bits.reset_capacity(nodes);
        }
    }

    /// Whether `node` is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        if self.spilled {
            return self.bits.contains(node);
        }
        self.small[..self.len as usize].binary_search(&node.raw()).is_ok()
    }

    /// Inserts `node`. Returns `false` if the node was already present.
    pub fn insert(&mut self, node: NodeId) -> bool {
        if self.spilled {
            let fresh = self.bits.insert(node);
            self.len += u32::from(fresh);
            return fresh;
        }
        let raw = node.raw();
        let len = self.len as usize;
        match self.small[..len].binary_search(&raw) {
            Ok(_) => false,
            Err(pos) if len < SMALL_CAP => {
                self.small.copy_within(pos..len, pos + 1);
                self.small[pos] = raw;
                self.len += 1;
                true
            }
            Err(_) => {
                self.spill();
                let fresh = self.bits.insert(node);
                debug_assert!(fresh, "spilled member was not in the small tier");
                self.len += 1;
                true
            }
        }
    }

    /// Moves every small-tier member into the bitset tier.
    fn spill(&mut self) {
        debug_assert!(!self.spilled);
        // Size to the world as recorded at arm time (an id beyond it —
        // post-join traffic — still grows the bitset on insert).
        self.bits.clear();
        self.bits.reset_capacity(self.world as usize);
        for &raw in &self.small[..self.len as usize] {
            self.bits.insert(NodeId::new(raw));
        }
        self.spilled = true;
    }

    /// Whether the set contains no nodes at all (O(1): tracked count).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of members (O(1): tracked count).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set has spilled to the bitset tier (diagnostics: the
    /// scale bench reports how many flood slots ever left the inline
    /// tier).
    pub fn is_spilled(&self) -> bool {
        self.spilled
    }

    /// Capacity of the spill allocation in indices (tests only; 0 while
    /// the set has never spilled).
    #[cfg(test)]
    pub fn spill_capacity(&self) -> usize {
        self.bits.capacity()
    }
}

impl NodeBitset {
    /// Whether the word vector was never allocated (fresh set that has
    /// not served as a spill tier yet).
    fn words_unallocated(&self) -> bool {
        self.words.is_empty() && self.ones == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bitset_inserts_and_contains() {
        let mut set = NodeBitset::with_capacity(100);
        assert!(!set.contains(NodeId::new(3)));
        assert!(set.insert(NodeId::new(3)));
        assert!(set.contains(NodeId::new(3)));
        assert!(set.insert(NodeId::new(64))); // second word
        assert!(set.contains(NodeId::new(64)));
        assert!(!set.contains(NodeId::new(65)));
    }

    #[test]
    fn bitset_double_visit_is_reported() {
        let mut set = NodeBitset::with_capacity(10);
        assert!(set.insert(NodeId::new(7)));
        assert!(!set.insert(NodeId::new(7)), "second insert must report a duplicate");
        assert!(set.contains(NodeId::new(7)));
    }

    #[test]
    fn bitset_out_of_range_is_absent_and_insert_grows() {
        let mut set = NodeBitset::with_capacity(10);
        // Beyond capacity: contains answers false rather than panicking
        // (floods opened before an overlay join see the new node ids).
        assert!(!set.contains(NodeId::new(1000)));
        assert!(set.insert(NodeId::new(1000)));
        assert!(set.contains(NodeId::new(1000)));
        assert!(!set.contains(NodeId::new(999)));
    }

    #[test]
    fn bitset_clear_keeps_capacity() {
        let mut set = NodeBitset::with_capacity(128);
        set.insert(NodeId::new(90));
        set.clear();
        assert!(!set.contains(NodeId::new(90)));
        assert!(set.insert(NodeId::new(90)));
    }

    #[test]
    fn bitset_is_empty_tracks_contents() {
        let mut set = NodeBitset::with_capacity(100);
        assert!(set.is_empty());
        set.insert(NodeId::new(64)); // a high word alone must count
        assert!(!set.is_empty());
        assert_eq!(set.len(), 1);
        set.clear();
        assert!(set.is_empty());
    }

    #[test]
    fn bitset_reset_capacity_resizes_an_empty_set() {
        let mut set = NodeBitset::with_capacity(64);
        assert_eq!(set.capacity(), 64);
        set.insert(NodeId::new(5));
        set.clear();
        set.reset_capacity(256);
        assert_eq!(set.capacity(), 256);
        assert!(set.is_empty());
        set.reset_capacity(64);
        assert_eq!(set.capacity(), 64);
    }

    #[test]
    fn visited_set_stays_inline_below_the_threshold() {
        let mut set = VisitedSet::with_capacity(100_000);
        for i in 0..SMALL_CAP as u32 {
            assert!(set.insert(NodeId::new(i * 3)));
        }
        assert!(!set.is_spilled(), "{SMALL_CAP} members must fit inline");
        assert_eq!(set.spill_capacity(), 0, "no heap until the spill");
        assert_eq!(set.len(), SMALL_CAP);
        assert!(set.contains(NodeId::new(0)));
        assert!(set.contains(NodeId::new((SMALL_CAP as u32 - 1) * 3)));
        assert!(!set.contains(NodeId::new(1)));
        assert!(!set.insert(NodeId::new(0)), "duplicate must be reported inline");
    }

    #[test]
    fn visited_set_spills_past_the_threshold_and_keeps_semantics() {
        let mut set = VisitedSet::with_capacity(1000);
        for i in 0..SMALL_CAP as u32 + 1 {
            assert!(set.insert(NodeId::new(i)));
        }
        assert!(set.is_spilled());
        assert_eq!(set.len(), SMALL_CAP + 1);
        assert_eq!(set.spill_capacity(), 1024, "spill sized to the world (word-rounded)");
        for i in 0..SMALL_CAP as u32 + 1 {
            assert!(set.contains(NodeId::new(i)));
            assert!(!set.insert(NodeId::new(i)), "duplicate after spill");
        }
        assert!(!set.contains(NodeId::new(999)));
    }

    #[test]
    fn visited_set_insert_beyond_world_grows_like_the_bitset() {
        let mut set = VisitedSet::with_capacity(64);
        for i in 0..SMALL_CAP as u32 + 1 {
            set.insert(NodeId::new(i));
        }
        // Post-join id beyond the armed world: answers false, then grows.
        assert!(!set.contains(NodeId::new(5000)));
        assert!(set.insert(NodeId::new(5000)));
        assert!(set.contains(NodeId::new(5000)));
    }

    #[test]
    fn visited_set_reset_resizes_a_spilled_slot_to_the_current_world() {
        let mut set = VisitedSet::with_capacity(64);
        for i in 0..SMALL_CAP as u32 + 1 {
            set.insert(NodeId::new(i));
        }
        assert_eq!(set.spill_capacity(), 64);
        // The world grew (joins) before the slot is recycled: the spill
        // allocation must be re-sized up front, not re-grown on demand.
        set.reset(256);
        assert!(set.is_empty());
        assert!(!set.is_spilled(), "reset returns to the inline tier");
        assert_eq!(set.spill_capacity(), 256);
        assert!(!set.contains(NodeId::new(3)), "reset must empty the set");
        assert!(set.insert(NodeId::new(3)));
    }

    #[test]
    fn visited_set_reset_of_inline_slot_stays_allocation_free() {
        let mut set = VisitedSet::with_capacity(64);
        set.insert(NodeId::new(1));
        set.reset(100_000);
        assert_eq!(set.spill_capacity(), 0, "no spill ever happened: no words");
        assert!(set.is_empty());
    }

    /// One step of the equivalence property below.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Insert(u32),
        Contains(u32),
        Reset(u16),
    }

    prop_compose! {
        fn arb_op()(kind in 0u8..7, raw in 0u32..6000, nodes in 1u16..2048) -> Op {
            match kind {
                0..=3 => Op::Insert(raw),
                4..=5 => Op::Contains(raw),
                _ => Op::Reset(nodes),
            }
        }
    }

    proptest! {
        /// Satellite-4 equivalence: the tiered set and the plain bitset
        /// must agree on insert-freshness, membership, count and
        /// emptiness under arbitrary interleavings of inserts, membership
        /// probes and recycling resets with world growth (overlay joins)
        /// in between.
        #[test]
        fn tiered_set_matches_the_bitset_reference(
            world in 1usize..2048,
            ops in proptest::collection::vec(arb_op(), 1..200),
        ) {
            let mut tiered = VisitedSet::with_capacity(world);
            let mut reference = NodeBitset::with_capacity(world);
            for op in ops {
                match op {
                    Op::Insert(raw) => {
                        let node = NodeId::new(raw);
                        prop_assert_eq!(tiered.insert(node), reference.insert(node));
                    }
                    Op::Contains(raw) => {
                        let node = NodeId::new(raw);
                        prop_assert_eq!(tiered.contains(node), reference.contains(node));
                    }
                    Op::Reset(nodes) => {
                        // A recycled slot in a (possibly re-sized) world.
                        tiered.reset(nodes as usize);
                        reference = NodeBitset::with_capacity(nodes as usize);
                    }
                }
                prop_assert_eq!(tiered.is_empty(), reference.is_empty());
                prop_assert_eq!(tiered.len(), reference.len());
            }
        }
    }
}
