//! The sans-io per-node protocol driver.
//!
//! [`NodeDriver`] is one grid node's complete ARiA state machine with
//! every I/O concern factored out: inputs are decoded wire messages,
//! timer fires and local job submissions; outputs are send-this-message,
//! start-this-timer and probe-record effects. The driver never touches a
//! socket, a clock or a wall-time source — the caller owns all of them:
//!
//! * the **live runtime** (`aria-node`) feeds it UDP datagrams decoded by
//!   `aria-codec` and timer fires from a monotonic-clock timer wheel,
//!   and executes `Send` outputs on a real socket;
//! * **tests** drive whole in-memory clusters of drivers through a
//!   deterministic message/timer queue (see the module tests), which is
//!   how sim-vs-live equivalence is pinned.
//!
//! ## Relation to the simulator
//!
//! The simulator's [`crate::World`] is *not* N drivers in a trench coat:
//! for speed it interns job specs in a global table, dedups floods in
//! world-wide visited sets and draws all randomness from one event-order
//! stream, none of which exists on a real network. What the two share is
//! the layer where protocol behaviour is decided: every admission,
//! comparison, retry and backoff decision in this file is a call into
//! [`crate::logic`], the same kernels the `World` handlers call. The
//! golden determinism/probe tests pin the simulator bit-for-bit, the
//! kernel unit tests pin the decisions, and the cluster tests below pin
//! that a network of drivers reaches the same outcomes (min-cost
//! winners, exactly-once completion) the simulator reaches.
//!
//! ## Live-specific behaviour
//!
//! Real transports are lossy, so the driver permanently runs what the
//! simulator only arms under an active [`crate::FaultPlan`]: ASSIGNs are
//! ACKed, unacknowledged ASSIGNs retransmit on the shared bounded
//! backoff schedule ([`crate::logic::assign_backoff`]), exhausted
//! retransmits fall back to the next-best recorded offer and then to the
//! §III-D failsafe. Flood dedup uses a per-node seen set plus a
//! visited list carried in the message (selective flooding, the paper's
//! reference \[28\]) instead of the simulator's global visited table.

use crate::config::AriaConfig;
use crate::logic;
use aria_grid::{Cost, JobId, JobSpec, NodeProfile, Policy, SchedulerQueue};
use aria_overlay::NodeId;
use aria_probe::{FloodKind, MsgKind, ProbeEvent};
use aria_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Globally unique flood identifier on the live network: the origin node
/// plus a per-origin sequence number. (The simulator's dense
/// [`crate::FloodId`] table indexes recycled slots; live floods from
/// different nodes must never collide, so the id carries its origin.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FloodUid {
    /// The node that seeded the flood.
    pub origin: NodeId,
    /// The origin's flood counter at seeding time.
    pub seq: u32,
}

/// A self-contained ARiA wire message (Table I plus membership and
/// harness control frames).
///
/// Unlike the simulator's interned [`crate::Message`], live messages
/// carry the full [`JobSpec`] where the paper's wire format carries the
/// job profile — there is no global job table to look payloads up in.
/// `visited` implements selective flooding: the nodes a flood already
/// traversed, so forwarding avoids them (bounded by
/// [`NodeDriver::MAX_VISITED`]).
#[derive(Debug, Clone, PartialEq)]
pub enum LiveMsg {
    /// REQUEST — flooded job advertisement (§III-B).
    Request {
        /// The job's initiator (offers and the final report go here).
        initiator: NodeId,
        /// The advertised job, full profile included.
        spec: JobSpec,
        /// Remaining hop budget.
        hops_left: u32,
        /// Flood this copy belongs to.
        flood: FloodUid,
        /// Nodes the flood already traversed (selective flooding).
        visited: Vec<NodeId>,
    },
    /// ACCEPT — cost offer to an initiator (REQUEST) or holder (INFORM).
    Accept {
        /// The offering node.
        from: NodeId,
        /// The job being bid on.
        job: JobId,
        /// The offered cost (lower is better).
        cost: Cost,
    },
    /// INFORM — flooded rescheduling advertisement (§III-D).
    Inform {
        /// The node currently holding the job.
        assignee: NodeId,
        /// The advertised job, full profile included.
        spec: JobSpec,
        /// The holder's current cost.
        cost: Cost,
        /// Remaining hop budget.
        hops_left: u32,
        /// Flood this copy belongs to.
        flood: FloodUid,
        /// Nodes the flood already traversed.
        visited: Vec<NodeId>,
    },
    /// ASSIGN — delegates a job to a node (may not decline, §III-A).
    Assign {
        /// The job's initiator, for failsafe tracking.
        initiator: NodeId,
        /// The delegated job, full profile included.
        spec: JobSpec,
    },
    /// ACK — assignee's delivery acknowledgement for an ASSIGN.
    Ack {
        /// The acknowledging assignee.
        from: NodeId,
        /// The job whose ASSIGN landed.
        job: JobId,
    },
    /// A node announcing itself to the overlay (static-bootstrap hello).
    Join {
        /// The joining node.
        node: NodeId,
    },
    /// A node announcing departure.
    Leave {
        /// The departing node.
        node: NodeId,
    },
    /// Periodic liveness beacon: "I am still here" (failure detection).
    Heartbeat {
        /// The beaconing node.
        node: NodeId,
    },
    /// Holder update to a job's initiator after a §III-D steal moved the
    /// job without the initiator in the loop, so failsafe delegation
    /// tracking follows the job.
    Holding {
        /// The job that moved.
        job: JobId,
        /// The node now holding it.
        node: NodeId,
    },
    /// Harness → node: submit a job at this node (it becomes initiator).
    Submit {
        /// The submitted job.
        spec: JobSpec,
    },
    /// Node → harness: a job finished executing here.
    Done {
        /// The completed job.
        job: JobId,
        /// The executing node.
        node: NodeId,
    },
    /// Harness → node: flush telemetry and exit the event loop.
    Shutdown,
}

impl LiveMsg {
    /// The probe-schema kind tag of a protocol message (control frames
    /// report as the closest small-message class, [`MsgKind::Ack`]).
    pub fn kind(&self) -> MsgKind {
        match self {
            LiveMsg::Request { .. } => MsgKind::Request,
            LiveMsg::Accept { .. } => MsgKind::Accept,
            LiveMsg::Inform { .. } => MsgKind::Inform,
            LiveMsg::Assign { .. } => MsgKind::Assign,
            LiveMsg::Ack { .. }
            | LiveMsg::Join { .. }
            | LiveMsg::Leave { .. }
            | LiveMsg::Heartbeat { .. }
            | LiveMsg::Holding { .. }
            | LiveMsg::Submit { .. }
            | LiveMsg::Done { .. }
            | LiveMsg::Shutdown => MsgKind::Ack,
        }
    }

    /// Whether this is a protocol message (subject to simulated loss at
    /// the codec boundary) rather than a harness control frame.
    /// Heartbeats are protocol: injected loss windows must be able to
    /// starve a failure detector, or partitions cannot be approximated.
    pub fn is_protocol(&self) -> bool {
        matches!(
            self,
            LiveMsg::Request { .. }
                | LiveMsg::Accept { .. }
                | LiveMsg::Inform { .. }
                | LiveMsg::Assign { .. }
                | LiveMsg::Ack { .. }
                | LiveMsg::Heartbeat { .. }
                | LiveMsg::Holding { .. }
        )
    }
}

/// A timer the driver asked its runtime to start. The runtime owes the
/// driver exactly one [`Input::Timer`] fire per request; cancellation is
/// the driver's problem (stale fires are recognized and ignored, the
/// same way the simulator treats stale events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timer {
    /// The initiator's ACCEPT collection window closed.
    AcceptWindow {
        /// The advertised job.
        job: JobId,
    },
    /// Re-flood a REQUEST that received no offers.
    RetryRequest {
        /// The unplaced job.
        job: JobId,
        /// The upcoming round number.
        round: u32,
    },
    /// An ASSIGN's ACK did not arrive in time.
    AssignTimeout {
        /// The delegated job.
        job: JobId,
        /// Epoch guard: a newer delegation invalidates older timers.
        epoch: u32,
    },
    /// The locally running job finished.
    ExecutionComplete {
        /// The running job.
        job: JobId,
    },
    /// Re-check the local dispatch queue (reservation windows).
    DispatchRetry,
    /// Periodic INFORM advertisement tick (§III-D).
    InformTick,
    /// Failsafe: re-discover a job whose delegation evaporated.
    Recover {
        /// The possibly-lost job.
        job: JobId,
    },
    /// Periodic failure-detector sweep + outgoing heartbeat fan-out.
    HeartbeatTick,
}

/// One input to the driver: a decoded message, a timer fire or a local
/// job submission.
#[derive(Debug, Clone, PartialEq)]
pub enum Input {
    /// A wire message arrived from `from`.
    Msg {
        /// The sending node.
        from: NodeId,
        /// The decoded message.
        msg: LiveMsg,
    },
    /// A previously requested timer fired.
    Timer(Timer),
    /// A job was submitted at this node (it becomes the initiator).
    Submit(JobSpec),
}

/// One effect the runtime must execute for the driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// Transmit `msg` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message to encode and transmit.
        msg: LiveMsg,
    },
    /// Start a timer firing `after` from now.
    StartTimer {
        /// Relative delay.
        after: SimDuration,
        /// The timer to deliver back via [`Input::Timer`].
        timer: Timer,
    },
    /// Record a telemetry event (the existing probe schema).
    Probe(ProbeEvent),
    /// A job finished executing on this node (harness notification).
    Completed {
        /// The finished job.
        job: JobId,
    },
    /// A job was abandoned after exhausting its discovery retry budget.
    Abandoned {
        /// The abandoned job.
        job: JobId,
    },
    /// A job is lost for good (failsafe disabled or initiator gone).
    Lost {
        /// The lost job.
        job: JobId,
    },
}

/// Failure-detection knobs: how often heartbeats go out and how many
/// silent periods demote a peer to suspect and then to dead.
///
/// The derived timeouts are `heartbeat_period * suspect_misses` and
/// `heartbeat_period * dead_misses`. Suspicion is telemetry-only (it
/// tolerates jitter without protocol consequences); death excludes the
/// peer from fan-out sampling and bid candidacy and triggers immediate
/// recovery of delegations to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipConfig {
    /// Heartbeat transmit + detector sweep period. `ZERO` disables the
    /// failure detector entirely (the pre-membership static behaviour).
    pub heartbeat_period: SimDuration,
    /// Silent periods before a peer is suspected.
    pub suspect_misses: u32,
    /// Silent periods before a suspected peer is declared dead.
    pub dead_misses: u32,
}

impl MembershipConfig {
    /// Silence after which a peer is suspected.
    pub fn suspect_after(&self) -> SimDuration {
        self.heartbeat_period * u64::from(self.suspect_misses)
    }

    /// Silence after which a peer is declared dead.
    pub fn dead_after(&self) -> SimDuration {
        self.heartbeat_period * u64::from(self.dead_misses)
    }
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            heartbeat_period: SimDuration::from_secs(1),
            suspect_misses: 3,
            dead_misses: 8,
        }
    }
}

/// Driver-level configuration: the shared protocol parameters plus the
/// failsafe knobs the simulator keeps on [`crate::WorldConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverConfig {
    /// Protocol parameters (§IV-E); the timing slice
    /// ([`AriaConfig::timing`]) is shared verbatim with the node
    /// runtime's config file.
    pub aria: AriaConfig,
    /// Whether the §III-D failsafe re-discovers evaporated delegations.
    pub failsafe: bool,
    /// How long until a delegation is presumed evaporated.
    pub failsafe_detection: SimDuration,
    /// Heartbeat/suspect/dead failure-detection knobs.
    pub membership: MembershipConfig,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            aria: AriaConfig::default(),
            failsafe: true,
            failsafe_detection: SimDuration::from_mins(5),
            membership: MembershipConfig::default(),
        }
    }
}

/// Liveness verdict the failure detector holds for a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeerState {
    /// Heard from recently.
    Alive,
    /// Missed enough heartbeats to worry; still sampled and assignable.
    Suspect,
    /// Missed enough heartbeats to act: excluded and recovered from.
    Dead,
}

/// Per-peer failure-detector bookkeeping.
#[derive(Debug, Clone, Copy)]
struct PeerHealth {
    last_seen: SimTime,
    state: PeerState,
}

/// An initiator's open offer-collection window.
#[derive(Debug, Clone)]
struct PendingRound {
    round: u32,
    best: Option<(Cost, NodeId)>,
}

/// An in-flight (unacknowledged) ASSIGN delegation.
#[derive(Debug, Clone, Copy)]
struct ArmedAssign {
    to: NodeId,
    attempt: u32,
    epoch: u32,
    reschedule: bool,
}

/// One grid node's complete sans-io protocol state machine.
pub struct NodeDriver {
    id: NodeId,
    profile: NodeProfile,
    queue: SchedulerQueue,
    cfg: DriverConfig,
    rng: SimRng,
    /// All known overlay members (flood seeding picks random subsets)
    /// with per-peer failure-detector state. Never contains this node.
    membership: BTreeMap<NodeId, PeerHealth>,
    /// Direct overlay neighbors (flood forwarding targets); filtered by
    /// liveness at sampling time.
    neighbors: Vec<NodeId>,
    /// Flood dedup: floods this node already processed, FIFO-bounded.
    seen: BTreeSet<FloodUid>,
    seen_order: VecDeque<FloodUid>,
    flood_seq: u32,
    /// Specs of jobs this node initiated or holds (the live substitute
    /// for the simulator's interned job table).
    specs: BTreeMap<JobId, JobSpec>,
    /// Initiator of each job this node learned about via ASSIGN.
    initiator_of: BTreeMap<JobId, NodeId>,
    /// Open offer windows for jobs this node is initiating.
    pending: BTreeMap<JobId, PendingRound>,
    /// Every offer recorded while a job's discovery/steal is in flight
    /// (retransmit-exhaustion fallback pops the next best from here).
    offers: BTreeMap<JobId, Vec<(Cost, NodeId)>>,
    /// Armed ASSIGN retransmit state per delegated job.
    armed: BTreeMap<JobId, ArmedAssign>,
    assign_epoch: u32,
    /// Jobs that finished executing here (idempotent-ASSIGN suppression).
    completed: BTreeSet<JobId>,
    /// ACKed delegations this initiator still tracks: job → current
    /// holder, updated by ACK/Holding, cleared by the executor's Done.
    /// When the holder is declared dead the job is recovered (§III-D).
    delegated: BTreeMap<JobId, NodeId>,
    /// Jobs this initiator knows completed remotely (Done received).
    settled: BTreeSet<JobId>,
    /// FIFO ring of terminal jobs; overflow purges their bookkeeping.
    retired_order: VecDeque<JobId>,
}

impl NodeDriver {
    /// Flood dedup memory: floods remembered per node before the oldest
    /// entries are forgotten.
    pub const MAX_SEEN: usize = 8192;
    /// Upper bound on the visited list carried by a flood message (the
    /// per-node seen sets still dedup anything the list no longer
    /// covers).
    pub const MAX_VISITED: usize = 256;
    /// Terminal-job memory: how many retired (completed, settled, lost
    /// or abandoned) jobs keep their spec/initiator/dedup bookkeeping.
    /// Within this retention window duplicate ASSIGNs are still
    /// suppressed; beyond it the oldest entries are purged so a
    /// long-haul soak cannot grow memory without bound.
    pub const MAX_RETIRED: usize = 4096;

    /// Builds a driver for node `id`. `peers` is the full known overlay
    /// membership (used to seed REQUEST floods at random members, like
    /// the simulator's §III-B "random subset of nodes of the overlay"),
    /// `neighbors` the direct overlay links floods forward along.
    pub fn new(
        id: NodeId,
        profile: NodeProfile,
        policy: Policy,
        cfg: DriverConfig,
        seed: u64,
        peers: Vec<NodeId>,
        neighbors: Vec<NodeId>,
    ) -> Self {
        let membership = peers
            .into_iter()
            .filter(|&n| n != id)
            .map(|n| (n, PeerHealth { last_seen: SimTime::ZERO, state: PeerState::Alive }))
            .collect();
        NodeDriver {
            id,
            profile,
            queue: SchedulerQueue::new(policy),
            cfg,
            rng: SimRng::seed_from(seed),
            membership,
            neighbors,
            seen: BTreeSet::new(),
            seen_order: VecDeque::new(),
            flood_seq: 0,
            specs: BTreeMap::new(),
            initiator_of: BTreeMap::new(),
            pending: BTreeMap::new(),
            offers: BTreeMap::new(),
            armed: BTreeMap::new(),
            assign_epoch: 0,
            completed: BTreeSet::new(),
            delegated: BTreeMap::new(),
            settled: BTreeSet::new(),
            retired_order: VecDeque::new(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Jobs completed on this node so far.
    pub fn completed_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.completed.iter().copied()
    }

    /// Initial outputs before any input arrives: the periodic INFORM
    /// tick when dynamic rescheduling is enabled, plus — when the
    /// failure detector is on — a `Join` broadcast (so peers that had
    /// declared this node dead readmit a restarted incarnation) and the
    /// first heartbeat tick. `now` baselines every peer's last-seen
    /// clock so nobody is declared dead for silence predating startup.
    pub fn start(&mut self, now: SimTime) -> Vec<Output> {
        let mut out = Vec::new();
        for health in self.membership.values_mut() {
            health.last_seen = now;
        }
        if self.cfg.aria.rescheduling {
            out.push(Output::StartTimer {
                after: self.cfg.aria.inform_period,
                timer: Timer::InformTick,
            });
        }
        let period = self.cfg.membership.heartbeat_period;
        if !period.is_zero() {
            for &peer in self.membership.keys() {
                out.push(Output::Send { to: peer, msg: LiveMsg::Join { node: self.id } });
            }
            out.push(Output::StartTimer { after: period, timer: Timer::HeartbeatTick });
        }
        out
    }

    /// Advances the state machine by one input and returns the effects
    /// the runtime must execute. `now` is the runtime's monotonic clock
    /// mapped to [`SimTime`] (live) or the simulated clock (tests).
    pub fn handle(&mut self, now: SimTime, input: Input) -> Vec<Output> {
        let mut out = Vec::new();
        match input {
            Input::Submit(spec) => self.submit(now, spec, &mut out),
            Input::Timer(timer) => self.timer(now, timer, &mut out),
            Input::Msg { from, msg } => self.message(now, from, msg, &mut out),
        }
        out
    }

    // --- submission & REQUEST phase (§III-B) -----------------------------

    fn submit(&mut self, now: SimTime, spec: JobSpec, out: &mut Vec<Output>) {
        let job = spec.id;
        self.specs.insert(job, spec);
        self.initiator_of.insert(job, self.id);
        out.push(Output::Probe(ProbeEvent::JobSubmitted { job, initiator: self.id }));
        self.start_round(now, job, 0, out);
    }

    fn start_round(&mut self, now: SimTime, job: JobId, round: u32, out: &mut Vec<Output>) {
        // A fresh discovery supersedes leftovers: recorded offers are
        // stale and any armed retransmit is obsolete (its pending
        // timeout goes stale through the disarm).
        self.offers.insert(job, Vec::new());
        self.armed.remove(&job);
        let spec = self.specs[&job];
        let own_bid = if logic::can_bid(&self.profile, self.queue.policy(), &spec) {
            Some((self.queue.cost_of_candidate(&spec, now, &self.profile), self.id))
        } else {
            None
        };
        self.pending.insert(job, PendingRound { round, best: own_bid });

        let flood = self.next_flood();
        // Dead peers are excluded from flood seeding: their bids cannot
        // arrive and assigning to them is recovery work waiting to
        // happen. Suspects stay in — suspicion tolerates jitter.
        let mut candidates: Vec<NodeId> = self
            .membership
            .iter()
            .filter(|(_, h)| h.state != PeerState::Dead)
            .map(|(&n, _)| n)
            .collect();
        self.rng.sample_in_place(&mut candidates, self.cfg.aria.request_fanout);
        let seeds = candidates;
        for &seed in &seeds {
            out.push(Output::Send {
                to: seed,
                msg: LiveMsg::Request {
                    initiator: self.id,
                    spec,
                    hops_left: self.cfg.aria.request_hops,
                    flood,
                    visited: vec![self.id],
                },
            });
        }
        out.push(Output::Probe(ProbeEvent::RequestRound {
            job,
            initiator: self.id,
            round,
            flood: flood.seq,
            seeds: seeds.len() as u32,
        }));
        out.push(Output::StartTimer {
            after: self.cfg.aria.accept_window,
            timer: Timer::AcceptWindow { job },
        });
    }

    // --- timers ----------------------------------------------------------

    fn timer(&mut self, now: SimTime, timer: Timer, out: &mut Vec<Output>) {
        match timer {
            Timer::AcceptWindow { job } => self.close_window(now, job, out),
            Timer::RetryRequest { job, round } => {
                if !self.completed.contains(&job) && !self.pending.contains_key(&job) {
                    self.start_round(now, job, round, out);
                }
            }
            Timer::AssignTimeout { job, epoch } => self.assign_timeout(now, job, epoch, out),
            Timer::ExecutionComplete { job } => self.complete_execution(now, job, out),
            Timer::DispatchRetry => self.try_start(now, out),
            Timer::InformTick => self.inform_tick(now, out),
            Timer::Recover { job } => self.recover(now, job, out),
            Timer::HeartbeatTick => self.heartbeat_tick(now, out),
        }
    }

    fn close_window(&mut self, now: SimTime, job: JobId, out: &mut Vec<Output>) {
        let Some(pending) = self.pending.remove(&job) else {
            return;
        };
        // The best bidder may have been declared dead while the window
        // was open; fall back to the next-best live offer, then to the
        // ordinary empty-window retry path.
        let winner = match pending.best {
            Some((_cost, w)) if w == self.id || !self.is_dead(w) => Some(w),
            Some(_) => self.pop_live_offer(job, None).map(|(_, next)| next),
            None => None,
        };
        match winner {
            Some(winner) => {
                out.push(Output::Probe(ProbeEvent::Assigned {
                    job,
                    by: self.id,
                    to: winner,
                    reschedule: false,
                }));
                if winner == self.id {
                    self.enqueue_job(now, job, out);
                } else {
                    let spec = self.specs[&job];
                    self.arm_assign(job, winner, false, out);
                    out.push(Output::Send {
                        to: winner,
                        msg: LiveMsg::Assign { initiator: self.id, spec },
                    });
                }
            }
            None => match logic::next_round(pending.round, self.cfg.aria.max_request_rounds) {
                Some(round) => {
                    out.push(Output::Probe(ProbeEvent::RetryScheduled {
                        job,
                        initiator: self.id,
                        round,
                    }));
                    out.push(Output::StartTimer {
                        after: self.cfg.aria.request_retry,
                        timer: Timer::RetryRequest { job, round },
                    });
                }
                None => {
                    out.push(Output::Probe(ProbeEvent::JobAbandoned { job, initiator: self.id }));
                    out.push(Output::Abandoned { job });
                    self.retire(job);
                }
            },
        }
    }

    fn assign_timeout(&mut self, now: SimTime, job: JobId, epoch: u32, out: &mut Vec<Output>) {
        let Some(a) = self.armed.get(&job).copied() else {
            return; // ACKed, superseded, or recovered — stand down
        };
        if a.epoch != epoch {
            return; // a newer delegation owns the timer now
        }
        if self.completed.contains(&job) || self.holds(job) {
            self.armed.remove(&job);
            return;
        }
        // A dead assignee short-circuits the remaining retransmit
        // budget: the failure detector already out-waited any backoff,
        // so go straight to the recorded-offer fallback / failsafe.
        if !self.is_dead(a.to) && logic::may_retransmit(a.attempt, self.cfg.aria.assign_max_retries)
        {
            let attempt = a.attempt + 1;
            self.armed.insert(job, ArmedAssign { attempt, ..a });
            out.push(Output::Probe(ProbeEvent::AssignRetransmit { job, to: a.to, attempt }));
            let initiator = self.initiator_of.get(&job).copied().unwrap_or(self.id);
            let spec = self.specs[&job];
            out.push(Output::Send { to: a.to, msg: LiveMsg::Assign { initiator, spec } });
            out.push(Output::StartTimer {
                after: logic::assign_backoff(self.cfg.aria.assign_ack_timeout, attempt),
                timer: Timer::AssignTimeout { job, epoch },
            });
            return;
        }
        // Retries exhausted (or the target died): delegation abandoned.
        self.armed.remove(&job);
        self.delegation_failed(now, job, a.to, a.reschedule, out);
    }

    /// Pops the best recorded offer for `job` from a node that is not
    /// `exclude` and not declared dead (this node itself always counts
    /// as live).
    fn pop_live_offer(&mut self, job: JobId, exclude: Option<NodeId>) -> Option<(Cost, NodeId)> {
        let mut list = self.offers.remove(&job)?;
        let mut found = None;
        while let Some((cost, next)) = logic::pop_best_offer(&mut list) {
            if Some(next) != exclude && (next == self.id || !self.is_dead(next)) {
                found = Some((cost, next));
                break;
            }
        }
        self.offers.insert(job, list);
        found
    }

    /// The delegation of `job` to `failed` is abandoned (retransmit
    /// budget exhausted, or the target was declared dead): fall back to
    /// the next-best live recorded offer, then to the §III-D failsafe.
    fn delegation_failed(
        &mut self,
        now: SimTime,
        job: JobId,
        failed: NodeId,
        reschedule: bool,
        out: &mut Vec<Output>,
    ) {
        if self.completed.contains(&job) || self.settled.contains(&job) || self.holds(job) {
            return;
        }
        if let Some((_cost, next)) = self.pop_live_offer(job, Some(failed)) {
            out.push(Output::Probe(ProbeEvent::Assigned {
                job,
                by: self.id,
                to: next,
                reschedule,
            }));
            if next == self.id {
                self.enqueue_job(now, job, out);
            } else {
                let initiator = self.initiator_of.get(&job).copied().unwrap_or(self.id);
                let spec = self.specs[&job];
                self.arm_assign(job, next, reschedule, out);
                out.push(Output::Send { to: next, msg: LiveMsg::Assign { initiator, spec } });
            }
            return;
        }
        // No viable offer left: the failsafe is the last resort.
        if self.cfg.failsafe {
            out.push(Output::StartTimer {
                after: self.cfg.failsafe_detection,
                timer: Timer::Recover { job },
            });
        } else {
            out.push(Output::Probe(ProbeEvent::JobLost { job }));
            out.push(Output::Lost { job });
            self.retire(job);
        }
    }

    fn recover(&mut self, now: SimTime, job: JobId, out: &mut Vec<Output>) {
        if self.completed.contains(&job)
            || self.settled.contains(&job)
            || self.holds(job)
            || self.pending.contains_key(&job)
        {
            return; // demonstrably fine, or discovery already underway
        }
        match self.initiator_of.get(&job) {
            Some(&initiator) if initiator == self.id => {
                out.push(Output::Probe(ProbeEvent::RecoveryStarted { job, initiator }));
                self.start_round(now, job, 0, out);
            }
            _ => {
                out.push(Output::Probe(ProbeEvent::JobLost { job }));
                out.push(Output::Lost { job });
                self.retire(job);
            }
        }
    }

    // --- failure detection & membership ----------------------------------

    /// One detector sweep: demote silent peers (alive → suspect → dead,
    /// with the suspect probe always preceding the dead probe), recover
    /// delegations to the newly dead, then heartbeat every known peer —
    /// dead ones included, so a healed partition or restarted peer hears
    /// us and readmits both sides cheaply.
    fn heartbeat_tick(&mut self, now: SimTime, out: &mut Vec<Output>) {
        let m = self.cfg.membership;
        if m.heartbeat_period.is_zero() {
            return;
        }
        let suspect_after = m.suspect_after();
        let dead_after = m.dead_after();
        let mut newly_dead = Vec::new();
        for (&peer, health) in self.membership.iter_mut() {
            if health.state == PeerState::Dead {
                continue;
            }
            let silent = now.saturating_since(health.last_seen);
            if silent >= dead_after {
                if health.state == PeerState::Alive {
                    out.push(Output::Probe(ProbeEvent::PeerSuspected { peer, by: self.id }));
                }
                health.state = PeerState::Dead;
                out.push(Output::Probe(ProbeEvent::PeerDead { peer, by: self.id }));
                newly_dead.push(peer);
            } else if silent >= suspect_after && health.state == PeerState::Alive {
                health.state = PeerState::Suspect;
                out.push(Output::Probe(ProbeEvent::PeerSuspected { peer, by: self.id }));
            }
        }
        for peer in newly_dead {
            self.peer_died(now, peer, out);
        }
        for &peer in self.membership.keys() {
            out.push(Output::Send { to: peer, msg: LiveMsg::Heartbeat { node: self.id } });
        }
        out.push(Output::StartTimer { after: m.heartbeat_period, timer: Timer::HeartbeatTick });
    }

    /// Any message from a peer proves it is alive: refresh its last-seen
    /// clock, readmit it if it was dead, admit it if it was unknown.
    fn note_alive(&mut self, now: SimTime, peer: NodeId, out: &mut Vec<Output>) {
        if peer == self.id {
            return;
        }
        match self.membership.get_mut(&peer) {
            Some(health) => {
                let was_dead = health.state == PeerState::Dead;
                health.last_seen = now;
                health.state = PeerState::Alive;
                if was_dead {
                    out.push(Output::Probe(ProbeEvent::PeerRejoined { peer, by: self.id }));
                }
            }
            None => {
                self.membership
                    .insert(peer, PeerHealth { last_seen: now, state: PeerState::Alive });
                out.push(Output::Probe(ProbeEvent::NodeJoined { node: peer }));
            }
        }
    }

    /// Declares a peer dead out of band (graceful `Leave`); the detector
    /// path goes through [`Self::heartbeat_tick`].
    fn mark_dead(&mut self, now: SimTime, peer: NodeId, out: &mut Vec<Output>) {
        let Some(health) = self.membership.get_mut(&peer) else {
            return;
        };
        if health.state == PeerState::Dead {
            return;
        }
        health.state = PeerState::Dead;
        out.push(Output::Probe(ProbeEvent::PeerDead { peer, by: self.id }));
        self.peer_died(now, peer, out);
    }

    /// A peer was declared dead: every delegation pointed at it is
    /// recovered now instead of waiting out retransmit/failsafe timers.
    fn peer_died(&mut self, now: SimTime, peer: NodeId, out: &mut Vec<Output>) {
        // Un-ACKed ASSIGNs armed at this node: immediate offer fallback.
        let armed_jobs: Vec<JobId> = self
            .armed
            .iter()
            .filter(|(_, a)| a.to == peer)
            .map(|(&job, _)| job)
            .collect();
        for job in armed_jobs {
            let a = self.armed.remove(&job).expect("collected above");
            self.delegation_failed(now, job, a.to, a.reschedule, out);
        }
        // ACKed delegations tracked by this initiator: failsafe now.
        let held: Vec<JobId> = self
            .delegated
            .iter()
            .filter(|&(_, &holder)| holder == peer)
            .map(|(&job, _)| job)
            .collect();
        for job in held {
            self.delegated.remove(&job);
            self.recover(now, job, out);
        }
    }

    fn is_dead(&self, node: NodeId) -> bool {
        self.membership.get(&node).is_some_and(|h| h.state == PeerState::Dead)
    }

    /// The job's executor reported completion: stop tracking it.
    fn settle(&mut self, job: JobId) {
        self.delegated.remove(&job);
        self.offers.remove(&job);
        if self.settled.insert(job) {
            self.retire(job);
        }
    }

    /// Marks a job terminal (completed, settled, lost or abandoned) and
    /// bounds per-job bookkeeping: the FIFO ring keeps the most recent
    /// [`Self::MAX_RETIRED`] terminal jobs — their completed/settled
    /// entries still suppress duplicates — and purges everything about
    /// jobs evicted past the window.
    fn retire(&mut self, job: JobId) {
        if self.retired_order.contains(&job) {
            return;
        }
        self.retired_order.push_back(job);
        if self.retired_order.len() > Self::MAX_RETIRED {
            if let Some(old) = self.retired_order.pop_front() {
                self.specs.remove(&old);
                self.initiator_of.remove(&old);
                self.pending.remove(&old);
                self.offers.remove(&old);
                self.armed.remove(&old);
                self.completed.remove(&old);
                self.delegated.remove(&old);
                self.settled.remove(&old);
            }
        }
    }

    fn inform_tick(&mut self, now: SimTime, out: &mut Vec<Output>) {
        if !self.cfg.aria.rescheduling {
            return;
        }
        let candidates = self.queue.inform_candidates(now, self.cfg.aria.inform_batch);
        for job in candidates {
            let Some(spec) = self.specs.get(&job).copied() else {
                continue;
            };
            let cost =
                self.queue.cost_of_waiting(job, now).expect("inform candidate has a cost");
            let flood = self.next_flood();
            out.push(Output::Probe(ProbeEvent::InformRound {
                job,
                node: self.id,
                flood: flood.seq,
                cost_ms: cost.as_millis(),
            }));
            let msg = LiveMsg::Inform {
                assignee: self.id,
                spec,
                cost,
                hops_left: self.cfg.aria.inform_hops,
                flood,
                visited: vec![self.id],
            };
            self.forward(msg, self.cfg.aria.inform_fanout, &[self.id], out);
        }
        out.push(Output::StartTimer {
            after: self.cfg.aria.inform_period,
            timer: Timer::InformTick,
        });
    }

    // --- message handling ------------------------------------------------

    fn message(&mut self, now: SimTime, from: NodeId, msg: LiveMsg, out: &mut Vec<Output>) {
        // Any inbound traffic is proof of life for its sender (a `Leave`
        // immediately overrides this below).
        self.note_alive(now, from, out);
        match msg {
            LiveMsg::Request { initiator, spec, hops_left, flood, visited } => {
                let fresh = self.record_flood(flood);
                out.push(Output::Probe(ProbeEvent::FloodHop {
                    kind: FloodKind::Request,
                    job: spec.id,
                    flood: flood.seq,
                    node: self.id,
                    hops_left,
                    duplicate: !fresh,
                }));
                if !fresh {
                    return;
                }
                let bids = logic::can_bid(&self.profile, self.queue.policy(), &spec);
                if bids {
                    let cost = self.queue.cost_of_candidate(&spec, now, &self.profile);
                    out.push(Output::Probe(ProbeEvent::BidSent {
                        kind: FloodKind::Request,
                        job: spec.id,
                        from: self.id,
                        to: initiator,
                        cost_ms: cost.as_millis(),
                    }));
                    out.push(Output::Send {
                        to: initiator,
                        msg: LiveMsg::Accept { from: self.id, job: spec.id, cost },
                    });
                }
                if logic::should_forward(bids, self.cfg.aria.forward_on_match, hops_left) {
                    let forwarded = LiveMsg::Request {
                        initiator,
                        spec,
                        hops_left: hops_left - 1,
                        flood,
                        visited: Vec::new(), // filled by forward()
                    };
                    self.forward(forwarded, self.cfg.aria.request_fanout, &visited, out);
                }
            }
            LiveMsg::Inform { assignee, spec, cost, hops_left, flood, visited } => {
                let fresh = self.record_flood(flood);
                out.push(Output::Probe(ProbeEvent::FloodHop {
                    kind: FloodKind::Inform,
                    job: spec.id,
                    flood: flood.seq,
                    node: self.id,
                    hops_left,
                    duplicate: !fresh,
                }));
                if !fresh {
                    return;
                }
                let bids = logic::can_bid(&self.profile, self.queue.policy(), &spec);
                if bids {
                    let my_cost = self.queue.cost_of_candidate(&spec, now, &self.profile);
                    if logic::undercuts(my_cost, cost, self.cfg.aria.reschedule_threshold) {
                        out.push(Output::Probe(ProbeEvent::BidSent {
                            kind: FloodKind::Inform,
                            job: spec.id,
                            from: self.id,
                            to: assignee,
                            cost_ms: my_cost.as_millis(),
                        }));
                        out.push(Output::Send {
                            to: assignee,
                            msg: LiveMsg::Accept { from: self.id, job: spec.id, cost: my_cost },
                        });
                    }
                }
                if logic::should_forward(bids, self.cfg.aria.forward_on_match, hops_left) {
                    let forwarded = LiveMsg::Inform {
                        assignee,
                        spec,
                        cost,
                        hops_left: hops_left - 1,
                        flood,
                        visited: Vec::new(),
                    };
                    self.forward(forwarded, self.cfg.aria.inform_fanout, &visited, out);
                }
            }
            LiveMsg::Accept { from, job, cost } => self.accept(now, from, job, cost, out),
            LiveMsg::Assign { initiator, spec } => self.assigned(now, from, initiator, spec, out),
            LiveMsg::Ack { from, job } => {
                if let Some(a) = self.armed.get(&job) {
                    if a.to == from {
                        self.armed.remove(&job);
                        out.push(Output::Probe(ProbeEvent::AckReceived { job, from }));
                        // The initiator keeps tracking ACKed delegations
                        // until the executor's Done settles them, so a
                        // holder dying post-ACK is recoverable.
                        if self.initiator_of.get(&job) == Some(&self.id)
                            && !self.settled.contains(&job)
                            && !self.completed.contains(&job)
                        {
                            self.delegated.insert(job, from);
                        }
                    }
                }
            }
            LiveMsg::Join { node } => self.note_alive(now, node, out),
            LiveMsg::Leave { node } => self.mark_dead(now, node, out),
            LiveMsg::Heartbeat { .. } => {} // note_alive above did the work
            LiveMsg::Holding { job, node } => {
                // Holder update for a job this node initiated: failsafe
                // tracking follows the job through §III-D steals.
                if self.initiator_of.get(&job) == Some(&self.id)
                    && !self.settled.contains(&job)
                    && !self.completed.contains(&job)
                {
                    self.delegated.insert(job, node);
                }
            }
            LiveMsg::Submit { spec } => self.submit(now, spec, out),
            // The executor of a delegated job reports completion to the
            // job's initiator (Shutdown is intercepted by the runtime).
            LiveMsg::Done { job, .. } => self.settle(job),
            LiveMsg::Shutdown => {}
        }
    }

    fn accept(&mut self, now: SimTime, from: NodeId, job: JobId, cost: Cost, out: &mut Vec<Output>) {
        // Offer for a job this node initiated and is still collecting?
        if let Some(pending) = self.pending.get_mut(&job) {
            let better = logic::better_offer(pending.best, cost);
            if better {
                pending.best = Some((cost, from));
            }
            // Remember every offer: the retransmit-exhaustion fallback
            // pops the next best (always on, live transports are lossy).
            self.offers.entry(job).or_default().push((cost, from));
            out.push(Output::Probe(ProbeEvent::OfferReceived {
                job,
                initiator: self.id,
                from,
                cost_ms: cost.as_millis(),
                best: better,
            }));
            return;
        }
        // Otherwise: a rescheduling offer for a job this node holds.
        if !self.cfg.aria.rescheduling {
            return;
        }
        let Some(current) = self.queue.cost_of_waiting(job, now) else {
            return; // already moved, started, or never here: stale offer
        };
        if !logic::undercuts(cost, current, self.cfg.aria.reschedule_threshold) {
            return; // conditions changed; the move no longer pays off
        }
        self.queue.remove_waiting(job).expect("cost_of_waiting implies waiting");
        let initiator = self.initiator_of.get(&job).copied().unwrap_or(self.id);
        let spec = self.specs[&job];
        out.push(Output::Probe(ProbeEvent::Assigned {
            job,
            by: self.id,
            to: from,
            reschedule: true,
        }));
        self.offers.insert(job, Vec::new());
        self.arm_assign(job, from, true, out);
        out.push(Output::Send { to: from, msg: LiveMsg::Assign { initiator, spec } });
    }

    /// Delivers an ASSIGN idempotently and always ACKs: a duplicate (the
    /// job is already queued, running or completed here, or this node
    /// reopened discovery for it) is suppressed instead of
    /// double-enqueued, and the re-ACK stands the assigner's retransmit
    /// timer down even when the original ACK was lost.
    fn assigned(
        &mut self,
        now: SimTime,
        from: NodeId,
        initiator: NodeId,
        spec: JobSpec,
        out: &mut Vec<Output>,
    ) {
        let job = spec.id;
        self.specs.insert(job, spec);
        self.initiator_of.insert(job, initiator);
        if self.completed.contains(&job)
            || self.settled.contains(&job)
            || self.pending.contains_key(&job)
            || self.holds(job)
        {
            out.push(Output::Probe(ProbeEvent::DuplicateSuppressed {
                kind: MsgKind::Assign,
                job,
                node: self.id,
            }));
            out.push(Output::Send { to: from, msg: LiveMsg::Ack { from: self.id, job } });
            return;
        }
        self.enqueue_job(now, job, out);
        out.push(Output::Send { to: from, msg: LiveMsg::Ack { from: self.id, job } });
        if initiator != self.id && initiator != from {
            // A steal moved the job here without the initiator in the
            // loop: tell it who holds the job now.
            out.push(Output::Send {
                to: initiator,
                msg: LiveMsg::Holding { job, node: self.id },
            });
        }
    }

    // --- local execution -------------------------------------------------

    fn enqueue_job(&mut self, now: SimTime, job: JobId, out: &mut Vec<Output>) {
        let spec = self.specs[&job];
        self.queue.enqueue(spec, now, &self.profile);
        out.push(Output::Probe(ProbeEvent::Enqueued {
            job,
            node: self.id,
            depth: self.queue.waiting_len() as u32,
        }));
        self.try_start(now, out);
    }

    fn try_start(&mut self, now: SimTime, out: &mut Vec<Output>) {
        let Some(running) = self.queue.start_next(now) else {
            if let Some(at) = self.queue.next_dispatch_at(now) {
                out.push(Output::StartTimer {
                    after: at.saturating_since(now),
                    timer: Timer::DispatchRetry,
                });
            }
            return;
        };
        let job = running.spec.id;
        // Live nodes "execute" for the profile-scaled expected running
        // time: there is no ART error model on a real node — the actual
        // time is whatever the execution takes.
        let runtime = running.expected_end.saturating_since(running.started_at);
        out.push(Output::Probe(ProbeEvent::Started { job, node: self.id }));
        out.push(Output::StartTimer { after: runtime, timer: Timer::ExecutionComplete { job } });
    }

    fn complete_execution(&mut self, now: SimTime, job: JobId, out: &mut Vec<Output>) {
        let finished = self.queue.complete_running().expect("completion timer for running job");
        debug_assert_eq!(finished.spec.id, job, "completion timer job mismatch");
        self.completed.insert(job);
        self.offers.remove(&job);
        out.push(Output::Probe(ProbeEvent::Completed { job, node: self.id }));
        out.push(Output::Completed { job });
        // Tell the initiator so it stops tracking the delegation (and
        // never tries to recover an already-finished job).
        if let Some(&initiator) = self.initiator_of.get(&job) {
            if initiator != self.id {
                out.push(Output::Send {
                    to: initiator,
                    msg: LiveMsg::Done { job, node: self.id },
                });
            }
        }
        self.retire(job);
        self.try_start(now, out);
    }

    // --- flood plumbing --------------------------------------------------

    fn next_flood(&mut self) -> FloodUid {
        let flood = FloodUid { origin: self.id, seq: self.flood_seq };
        self.flood_seq = self.flood_seq.wrapping_add(1);
        self.record_flood(flood);
        flood
    }

    /// Marks a flood as seen; returns `true` when it was fresh.
    fn record_flood(&mut self, flood: FloodUid) -> bool {
        if !self.seen.insert(flood) {
            return false;
        }
        self.seen_order.push_back(flood);
        if self.seen_order.len() > Self::MAX_SEEN {
            if let Some(evicted) = self.seen_order.pop_front() {
                self.seen.remove(&evicted);
            }
        }
        true
    }

    /// Forwards a flood message to up to `fanout` random neighbors not
    /// yet visited (selective flooding, \[28\]). `visited` is the list
    /// carried by the incoming copy; the outgoing copies carry it
    /// extended with this node, bounded by [`Self::MAX_VISITED`].
    fn forward(
        &mut self,
        msg: LiveMsg,
        fanout: usize,
        visited: &[NodeId],
        out: &mut Vec<Output>,
    ) {
        let mut candidates: Vec<NodeId> = self
            .neighbors
            .iter()
            .copied()
            .filter(|n| *n != self.id && !visited.contains(n) && !self.is_dead(*n))
            .collect();
        self.rng.sample_in_place(&mut candidates, fanout);
        if candidates.is_empty() {
            return;
        }
        let mut next_visited = visited.to_vec();
        if next_visited.len() < Self::MAX_VISITED {
            next_visited.push(self.id);
        }
        for &target in &candidates {
            let copy = match &msg {
                LiveMsg::Request { initiator, spec, hops_left, flood, .. } => LiveMsg::Request {
                    initiator: *initiator,
                    spec: *spec,
                    hops_left: *hops_left,
                    flood: *flood,
                    visited: next_visited.clone(),
                },
                LiveMsg::Inform { assignee, spec, cost, hops_left, flood, .. } => LiveMsg::Inform {
                    assignee: *assignee,
                    spec: *spec,
                    cost: *cost,
                    hops_left: *hops_left,
                    flood: *flood,
                    visited: next_visited.clone(),
                },
                _ => unreachable!("only REQUEST/INFORM flood"),
            };
            out.push(Output::Send { to: target, msg: copy });
        }
    }

    /// Arms the ACK/retransmit machinery for an ASSIGN about to be sent.
    fn arm_assign(&mut self, job: JobId, to: NodeId, reschedule: bool, out: &mut Vec<Output>) {
        self.assign_epoch = self.assign_epoch.wrapping_add(1);
        let epoch = self.assign_epoch;
        self.armed.insert(job, ArmedAssign { to, attempt: 0, epoch, reschedule });
        out.push(Output::StartTimer {
            after: self.cfg.aria.assign_ack_timeout,
            timer: Timer::AssignTimeout { job, epoch },
        });
    }

    /// Whether this node currently holds the job (waiting or running).
    fn holds(&self, job: JobId) -> bool {
        self.queue.is_waiting(job)
            || self.queue.running().is_some_and(|r| r.spec.id == job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_grid::{Architecture, JobRequirements, OperatingSystem, PerfIndex};
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// A queued cluster event, min-ordered by (time, sequence).
    struct Ev {
        at: SimTime,
        seq: u64,
        node: usize,
        /// Process-incarnation stamp: events queued for an earlier
        /// incarnation of `node` are dropped (a SIGKILL loses timers
        /// and in-flight datagrams alike).
        epoch: u32,
        input: Input,
    }

    impl PartialEq for Ev {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl Eq for Ev {}
    impl PartialOrd for Ev {
        // det:allow(float-ord): delegates to Ord over (SimTime, u64) integer keys
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Ev {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we pop earliest first.
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    fn profile(perf: f64) -> NodeProfile {
        NodeProfile::new(
            Architecture::Amd64,
            OperatingSystem::Linux,
            64,
            1000,
            PerfIndex::new(perf).unwrap(),
        )
    }

    fn spec(id: u64, mins: u64) -> JobSpec {
        JobSpec::batch(
            JobId::new(id),
            JobRequirements {
                arch: Architecture::Amd64,
                os: OperatingSystem::Linux,
                min_memory_gb: 1,
                min_disk_gb: 1,
            },
            SimDuration::from_mins(mins),
        )
    }

    /// A deterministic in-memory cluster: N drivers, one global
    /// time-ordered queue carrying messages (fixed link latency) and
    /// timers. This is exactly the live runtime's event loop with the
    /// socket and clock replaced by the queue — the harness the
    /// loopback test then runs over real UDP.
    struct Cluster {
        drivers: Vec<NodeDriver>,
        queue: BinaryHeap<Ev>,
        seq: u64,
        now: SimTime,
        /// Process liveness per node: a killed node receives nothing and
        /// fires no timers until restarted.
        alive: Vec<bool>,
        /// Incarnation counter per node; bumped on restart.
        epoch: Vec<u32>,
        completed: Vec<(JobId, NodeId)>,
        lost: Vec<JobId>,
        abandoned: Vec<JobId>,
        assigned: Vec<(JobId, NodeId, bool)>,
        retransmits: u32,
        /// Membership probe events: (observing node, event).
        membership_events: Vec<(NodeId, ProbeEvent)>,
        /// Non-heartbeat sends addressed to currently-dead processes
        /// (resettable; exclusion tests zero it after detection).
        sends_to_down: u32,
        /// Drop the first ASSIGN copy addressed to each entry.
        drop_first_assign_to: Vec<NodeId>,
    }

    impl Cluster {
        const LATENCY: SimDuration = SimDuration::from_millis(5);

        fn new(n: u32, cfg: DriverConfig) -> Self {
            let drivers = (0..n).map(|i| Self::make_driver(n, i, cfg, 1000 + u64::from(i))).collect();
            Cluster {
                drivers,
                queue: BinaryHeap::new(),
                seq: 0,
                now: SimTime::ZERO,
                alive: vec![true; n as usize],
                epoch: vec![0; n as usize],
                completed: Vec::new(),
                lost: Vec::new(),
                abandoned: Vec::new(),
                assigned: Vec::new(),
                retransmits: 0,
                membership_events: Vec::new(),
                sends_to_down: 0,
                drop_first_assign_to: Vec::new(),
            }
        }

        fn make_driver(n: u32, i: u32, cfg: DriverConfig, seed: u64) -> NodeDriver {
            // Ring + full peer list: every node forwards along a couple
            // of neighbors, floods seed anywhere.
            let peers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
            let neighbors = vec![
                NodeId::new((i + 1) % n),
                NodeId::new((i + n - 1) % n),
                NodeId::new((i + 2) % n),
            ];
            NodeDriver::new(
                NodeId::new(i),
                profile(1.0 + f64::from(i % 2) * 0.5),
                Policy::Fcfs,
                cfg,
                seed,
                peers,
                neighbors,
            )
        }

        fn push(&mut self, at: SimTime, node: usize, input: Input) {
            self.queue.push(Ev { at, seq: self.seq, node, epoch: self.epoch[node], input });
            self.seq += 1;
        }

        fn submit(&mut self, at: SimTime, node: u32, spec: JobSpec) {
            self.push(at, node as usize, Input::Submit(spec));
        }

        fn start(&mut self) {
            for i in 0..self.drivers.len() {
                let outputs = self.drivers[i].start(self.now);
                self.apply(i, outputs);
            }
        }

        /// SIGKILL analog: the node stops processing anything. Queued
        /// events addressed to it die with the incarnation.
        fn kill(&mut self, node: usize) {
            self.alive[node] = false;
        }

        /// Restart analog: a fresh driver (empty state, new RNG stream)
        /// boots at `at` under the same node id.
        fn restart(&mut self, at: SimTime, node: usize, cfg: DriverConfig, seed: u64) {
            let n = self.drivers.len() as u32;
            self.drivers[node] = Self::make_driver(n, node as u32, cfg, seed);
            self.alive[node] = true;
            self.epoch[node] = self.epoch[node].wrapping_add(1);
            let prev = self.now;
            self.now = at;
            let outputs = self.drivers[node].start(at);
            self.apply(node, outputs);
            self.now = prev.max(at);
        }

        fn apply(&mut self, node: usize, outputs: Vec<Output>) {
            let now = self.now;
            for output in outputs {
                match output {
                    Output::Send { to, msg } => {
                        if matches!(msg, LiveMsg::Assign { .. }) {
                            if let Some(slot) =
                                self.drop_first_assign_to.iter().position(|&n| n == to)
                            {
                                self.drop_first_assign_to.remove(slot);
                                continue; // injected loss: first copy gone
                            }
                        }
                        if !self.alive[to.index()]
                            && !matches!(
                                msg,
                                LiveMsg::Heartbeat { .. } | LiveMsg::Join { .. } | LiveMsg::Done { .. }
                            )
                        {
                            self.sends_to_down += 1;
                        }
                        let from = self.drivers[node].id();
                        self.push(
                            now + Self::LATENCY,
                            to.index(),
                            Input::Msg { from, msg },
                        );
                    }
                    Output::StartTimer { after, timer } => {
                        self.push(now + after, node, Input::Timer(timer));
                    }
                    Output::Probe(ev) => {
                        if let ProbeEvent::Assigned { job, to, reschedule, .. } = ev {
                            self.assigned.push((job, to, reschedule));
                        }
                        if let ProbeEvent::AssignRetransmit { .. } = ev {
                            self.retransmits += 1;
                        }
                        if matches!(
                            ev,
                            ProbeEvent::PeerSuspected { .. }
                                | ProbeEvent::PeerDead { .. }
                                | ProbeEvent::PeerRejoined { .. }
                        ) {
                            self.membership_events.push((self.drivers[node].id(), ev));
                        }
                    }
                    Output::Completed { job } => {
                        self.completed.push((job, self.drivers[node].id()));
                    }
                    Output::Lost { job } => self.lost.push(job),
                    Output::Abandoned { job } => self.abandoned.push(job),
                }
            }
        }

        /// Drains the queue up to `horizon`; events scheduled past it
        /// stay queued for a later `run` call. Events addressed to a
        /// dead process, or to a node that restarted since they were
        /// queued, are dropped.
        fn run(&mut self, horizon: SimTime) {
            while self.queue.peek().is_some_and(|ev| ev.at <= horizon) {
                let Ev { at, node, epoch, input, .. } = self.queue.pop().expect("peeked");
                if !self.alive[node] || self.epoch[node] != epoch {
                    continue;
                }
                self.now = at;
                let outputs = self.drivers[node].handle(at, input);
                self.apply(node, outputs);
            }
            self.now = self.now.max(horizon);
        }

        fn saw_membership_event(&self, by: u32, want: &ProbeEvent) -> bool {
            self.membership_events
                .iter()
                .any(|(observer, ev)| observer.index() == by as usize && ev == want)
        }
    }

    fn fast_cfg() -> DriverConfig {
        DriverConfig {
            aria: AriaConfig {
                accept_window: SimDuration::from_millis(300),
                request_retry: SimDuration::from_secs(2),
                assign_ack_timeout: SimDuration::from_millis(200),
                ..AriaConfig::default()
            },
            failsafe: true,
            failsafe_detection: SimDuration::from_secs(2),
            membership: MembershipConfig::default(),
        }
    }

    /// `fast_cfg` with an aggressive failure detector: suspect after
    /// 1.5 s of silence, dead after 4 s.
    fn churn_cfg() -> DriverConfig {
        DriverConfig {
            membership: MembershipConfig {
                heartbeat_period: SimDuration::from_millis(500),
                suspect_misses: 3,
                dead_misses: 8,
            },
            ..fast_cfg()
        }
    }

    #[test]
    fn cluster_completes_every_job_exactly_once() {
        let mut cluster = Cluster::new(5, fast_cfg());
        cluster.start();
        for j in 0..10u64 {
            cluster.submit(SimTime::from_millis(j * 50), (j % 5) as u32, spec(j, 5));
        }
        cluster.run(SimTime::from_hours(2));
        assert!(cluster.lost.is_empty(), "lost: {:?}", cluster.lost);
        assert!(cluster.abandoned.is_empty(), "abandoned: {:?}", cluster.abandoned);
        let mut done: Vec<u64> = cluster.completed.iter().map(|(j, _)| j.raw()).collect();
        done.sort_unstable();
        assert_eq!(done, (0..10).collect::<Vec<_>>(), "exactly-once completion");
    }

    /// The initial-assignment decision matches the simulator's: the
    /// winner of a discovery round quotes the global minimum cost among
    /// reachable bidders (ties break to the earliest offer, exactly
    /// [`logic::better_offer`]'s rule — the same kernel `World` calls).
    #[test]
    fn winner_quotes_the_minimum_cost() {
        let mut cluster = Cluster::new(5, fast_cfg());
        cluster.start();
        // Load nodes 0-3 with local work so their quotes differ; node 4
        // stays idle and must win the later submission.
        for j in 0..4u64 {
            cluster.submit(SimTime::ZERO, j as u32, spec(j, 30));
        }
        cluster.run(SimTime::from_secs(10));
        let probe_spec = spec(99, 5);
        let quotes: Vec<(Cost, NodeId)> = cluster
            .drivers
            .iter()
            .map(|d| {
                (
                    d.queue.cost_of_candidate(&probe_spec, cluster.now, &d.profile),
                    d.id(),
                )
            })
            .collect();
        let best = quotes.iter().map(|&(c, _)| c).min().unwrap();
        let at = cluster.now;
        cluster.assigned.clear();
        cluster.submit(at, 0, probe_spec);
        cluster.run(SimTime::from_hours(2));
        let (_job, winner, _) = cluster
            .assigned
            .iter()
            .find(|(j, _, _)| j.raw() == 99)
            .copied()
            .expect("job 99 was assigned");
        let (winner_cost, _) = quotes.iter().find(|&&(_, id)| id == winner).unwrap();
        assert_eq!(
            *winner_cost, best,
            "assignment went to {winner:?} quoting {winner_cost}, but the minimum was {best}"
        );
    }

    #[test]
    fn dropped_assign_retransmits_and_still_completes() {
        let mut cluster = Cluster::new(5, fast_cfg());
        cluster.start();
        // Make node 0 busy so the job is delegated remotely, then drop
        // the first ASSIGN copy to every possible winner.
        cluster.submit(SimTime::ZERO, 0, spec(0, 60));
        cluster.run(SimTime::from_secs(5));
        cluster.drop_first_assign_to = (0..5).map(NodeId::new).collect();
        let at = cluster.now;
        cluster.submit(at, 0, spec(1, 5));
        cluster.run(SimTime::from_hours(3));
        assert!(cluster.retransmits >= 1, "the lost ASSIGN must retransmit");
        assert!(cluster.lost.is_empty(), "lost: {:?}", cluster.lost);
        assert!(
            cluster.completed.iter().any(|(j, _)| j.raw() == 1),
            "job 1 completes after the retransmit"
        );
    }

    #[test]
    fn duplicate_assign_is_suppressed_and_reacked() {
        let cfg = fast_cfg();
        let peers = vec![NodeId::new(0), NodeId::new(1)];
        let mut driver = NodeDriver::new(
            NodeId::new(1),
            profile(1.0),
            Policy::Fcfs,
            cfg,
            7,
            peers.clone(),
            peers,
        );
        let s = spec(3, 10);
        let assign = LiveMsg::Assign { initiator: NodeId::new(0), spec: s };
        let now = SimTime::from_secs(1);
        let first =
            driver.handle(now, Input::Msg { from: NodeId::new(0), msg: assign.clone() });
        assert!(first.iter().any(|o| matches!(o, Output::Send { msg: LiveMsg::Ack { .. }, .. })));
        assert!(first
            .iter()
            .any(|o| matches!(o, Output::Probe(ProbeEvent::Enqueued { .. }))));
        let dup = driver.handle(now, Input::Msg { from: NodeId::new(0), msg: assign });
        assert!(dup
            .iter()
            .any(|o| matches!(o, Output::Probe(ProbeEvent::DuplicateSuppressed { .. }))));
        assert!(dup.iter().any(|o| matches!(o, Output::Send { msg: LiveMsg::Ack { .. }, .. })));
        assert!(
            !dup.iter().any(|o| matches!(o, Output::Probe(ProbeEvent::Enqueued { .. }))),
            "duplicate must not double-enqueue"
        );
    }

    #[test]
    fn flood_dedup_is_bounded() {
        let cfg = DriverConfig::default();
        let peers = vec![NodeId::new(0)];
        let mut driver =
            NodeDriver::new(NodeId::new(0), profile(1.0), Policy::Fcfs, cfg, 7, peers.clone(), peers);
        let total = NodeDriver::MAX_SEEN as u32 + 100;
        for i in 0..total {
            driver.record_flood(FloodUid { origin: NodeId::new(9), seq: i });
        }
        assert_eq!(driver.seen.len(), NodeDriver::MAX_SEEN);
        assert_eq!(driver.seen_order.len(), NodeDriver::MAX_SEEN);
        // Every flood inside the retention window still dedups — no
        // false re-forward of anything recent.
        for i in 100..total {
            assert!(
                !driver.record_flood(FloodUid { origin: NodeId::new(9), seq: i }),
                "flood {i} inside the retention window must still dedup"
            );
        }
        // ...and the bound held through the re-checks.
        assert_eq!(driver.seen.len(), NodeDriver::MAX_SEEN);
    }

    /// Terminal-job bookkeeping (specs, completions, delegation state)
    /// is bounded by [`NodeDriver::MAX_RETIRED`]: a soak that executes
    /// far more jobs than the ring holds can't grow memory without
    /// bound, yet recent jobs still suppress duplicate ASSIGNs.
    #[test]
    fn job_bookkeeping_is_bounded() {
        let cfg = fast_cfg();
        let peers = vec![NodeId::new(0), NodeId::new(1)];
        let mut driver = NodeDriver::new(
            NodeId::new(1),
            profile(1.0),
            Policy::Fcfs,
            cfg,
            7,
            peers.clone(),
            peers,
        );
        let total = NodeDriver::MAX_RETIRED as u64 + 500;
        let mut now = SimTime::ZERO;
        for j in 0..total {
            now += SimDuration::from_secs(1);
            let assign = LiveMsg::Assign { initiator: NodeId::new(0), spec: spec(j, 1) };
            let out = driver.handle(now, Input::Msg { from: NodeId::new(0), msg: assign });
            // Fire the execution-complete timer the enqueue scheduled.
            let timers: Vec<Timer> = out
                .iter()
                .filter_map(|o| match o {
                    Output::StartTimer { timer: t @ Timer::ExecutionComplete { .. }, .. } => {
                        Some(*t)
                    }
                    _ => None,
                })
                .collect();
            for t in timers {
                now += SimDuration::from_mins(2);
                driver.handle(now, Input::Timer(t));
            }
        }
        let cap = NodeDriver::MAX_RETIRED + 1;
        assert!(driver.specs.len() <= cap, "specs grew to {}", driver.specs.len());
        assert!(driver.completed.len() <= cap, "completed grew to {}", driver.completed.len());
        assert!(
            driver.initiator_of.len() <= cap,
            "initiator_of grew to {}",
            driver.initiator_of.len()
        );
        // A recent job (inside the ring) still dedups on re-delivery.
        let recent = total - 1;
        let dup = driver.handle(
            now,
            Input::Msg {
                from: NodeId::new(0),
                msg: LiveMsg::Assign { initiator: NodeId::new(0), spec: spec(recent, 1) },
            },
        );
        assert!(
            dup.iter()
                .any(|o| matches!(o, Output::Probe(ProbeEvent::DuplicateSuppressed { .. }))),
            "recently retired job must still suppress duplicates"
        );
    }

    // --- churn: failure detection, exclusion, rejoin ----------------------

    /// A SIGKILLed node is suspected, then declared dead, by every
    /// survivor; afterwards no REQUEST flood or ASSIGN is addressed to
    /// the corpse and the surviving cluster still completes everything.
    #[test]
    fn killed_node_is_declared_dead_and_excluded() {
        let mut cluster = Cluster::new(5, churn_cfg());
        cluster.start();
        cluster.run(SimTime::from_secs(2));
        cluster.kill(4);
        // dead_after = 4s; give the sweep plenty of slack.
        cluster.run(SimTime::from_secs(12));
        let victim = NodeId::new(4);
        for by in 0..4u32 {
            let observer = NodeId::new(by);
            assert!(
                cluster.saw_membership_event(
                    by,
                    &ProbeEvent::PeerSuspected { peer: victim, by: observer }
                ),
                "node {by} never suspected the victim"
            );
            assert!(
                cluster
                    .saw_membership_event(by, &ProbeEvent::PeerDead { peer: victim, by: observer }),
                "node {by} never declared the victim dead"
            );
        }
        // From here on, protocol traffic must avoid the corpse.
        cluster.sends_to_down = 0;
        let at = cluster.now;
        for j in 0..6u64 {
            cluster.submit(at + SimDuration::from_millis(j * 50), (j % 4) as u32, spec(j, 5));
        }
        cluster.run(at + SimDuration::from_hours(2));
        assert_eq!(
            cluster.sends_to_down, 0,
            "protocol traffic was addressed to a node already declared dead"
        );
        assert!(cluster.lost.is_empty(), "lost: {:?}", cluster.lost);
        assert!(cluster.abandoned.is_empty(), "abandoned: {:?}", cluster.abandoned);
        let mut done: Vec<u64> = cluster.completed.iter().map(|(j, _)| j.raw()).collect();
        done.sort_unstable();
        assert_eq!(done, (0..6).collect::<Vec<_>>(), "exactly-once completion");
        assert!(
            cluster.completed.iter().all(|&(_, on)| on != victim),
            "a dead node completed work"
        );
    }

    /// The assignee dies *after* ACKing: the initiator's failure
    /// detector notices, recovers the delegation (§III-D path), and the
    /// job completes elsewhere exactly once.
    #[test]
    fn killed_assignee_recovers_via_peer_death() {
        let mut cluster = Cluster::new(3, churn_cfg());
        cluster.start();
        cluster.run(SimTime::from_secs(1));
        // Saturate every node with a long job; the fast node (1, perf
        // 1.5) then quotes the lowest completion time for the short
        // job, so node 0 must delegate it remotely.
        let at = cluster.now;
        for j in 0..3u64 {
            cluster.submit(at + SimDuration::from_millis(j * 500), 0, spec(100 + j, 60));
        }
        cluster.run(at + SimDuration::from_secs(3));
        let at = cluster.now;
        cluster.submit(at, 0, spec(1, 5));
        cluster.run(at + SimDuration::from_secs(2));
        let (_j, assignee, _) = cluster
            .assigned
            .iter()
            .find(|(j, _, _)| j.raw() == 1)
            .copied()
            .expect("job 1 was assigned");
        assert_ne!(assignee, NodeId::new(0), "job 1 should have been delegated");
        cluster.kill(assignee.index());
        cluster.run(cluster.now + SimDuration::from_hours(3));
        assert!(cluster.lost.is_empty(), "lost: {:?}", cluster.lost);
        let finishers: Vec<NodeId> = cluster
            .completed
            .iter()
            .filter(|(j, _)| j.raw() == 1)
            .map(|&(_, on)| on)
            .collect();
        assert_eq!(finishers.len(), 1, "job 1 must complete exactly once: {finishers:?}");
        assert_ne!(finishers[0], assignee, "the dead assignee can't have finished it");
    }

    /// A restarted node rejoins: every survivor emits `peer-rejoined`,
    /// and the fresh incarnation receives (and completes) new work.
    #[test]
    fn restarted_node_rejoins_and_receives_work() {
        let mut cluster = Cluster::new(5, churn_cfg());
        cluster.start();
        cluster.run(SimTime::from_secs(2));
        cluster.kill(4);
        cluster.run(SimTime::from_secs(12));
        let victim = NodeId::new(4);
        for by in 0..4u32 {
            assert!(
                cluster
                    .saw_membership_event(by, &ProbeEvent::PeerDead { peer: victim, by: NodeId::new(by) }),
                "node {by} never declared the victim dead"
            );
        }
        cluster.restart(SimTime::from_secs(12), 4, churn_cfg(), 9004);
        cluster.run(SimTime::from_secs(16));
        for by in 0..4u32 {
            assert!(
                cluster.saw_membership_event(
                    by,
                    &ProbeEvent::PeerRejoined { peer: victim, by: NodeId::new(by) }
                ),
                "node {by} never readmitted the restarted victim"
            );
        }
        // New work flows to the rejoined node: long jobs submitted at a
        // 1 s spacing saturate nodes 0-3 so node 4 must win some.
        let at = cluster.now;
        for j in 0..6u64 {
            cluster.submit(at + SimDuration::from_secs(j), (j % 4) as u32, spec(j, 10));
        }
        cluster.run(at + SimDuration::from_hours(2));
        assert!(cluster.lost.is_empty(), "lost: {:?}", cluster.lost);
        assert!(cluster.abandoned.is_empty(), "abandoned: {:?}", cluster.abandoned);
        let mut done: Vec<u64> = cluster.completed.iter().map(|(j, _)| j.raw()).collect();
        done.sort_unstable();
        assert_eq!(done, (0..6).collect::<Vec<_>>(), "exactly-once completion");
        assert!(
            cluster.completed.iter().any(|&(_, on)| on == victim),
            "the rejoined node never received work: {:?}",
            cluster.completed
        );
    }

    /// An ASSIGN in flight to a peer the detector later declares dead
    /// must not burn the whole retransmit budget: peer-death
    /// short-circuits straight to the recorded-offer fallback.
    #[test]
    fn dead_assignee_short_circuits_retransmits() {
        let mut cluster = Cluster::new(3, {
            let mut cfg = churn_cfg();
            // Slow ACK timeout so detection (4 s) beats the first
            // retransmit attempt window comfortably.
            cfg.aria.assign_ack_timeout = SimDuration::from_secs(6);
            cfg
        });
        cluster.start();
        cluster.run(SimTime::from_secs(1));
        // Saturate every node so the short job is delegated remotely.
        let at = cluster.now;
        for j in 0..3u64 {
            cluster.submit(at + SimDuration::from_millis(j * 500), 0, spec(100 + j, 60));
        }
        cluster.run(at + SimDuration::from_secs(3));
        // Drop the first ASSIGN copy to everyone, and kill whichever
        // node wins right after the window closes: the ASSIGN is never
        // ACKed and the assignee never comes back.
        cluster.drop_first_assign_to = (0..3).map(NodeId::new).collect();
        let at = cluster.now;
        cluster.submit(at, 0, spec(1, 5));
        cluster.run(at + SimDuration::from_millis(400));
        let (_j, assignee, _) = cluster
            .assigned
            .iter()
            .find(|(j, _, _)| j.raw() == 1)
            .copied()
            .expect("job 1 was assigned");
        assert_ne!(assignee, NodeId::new(0));
        // Only the victim's first copy matters; keep later recovery
        // re-assigns (of the saturating jobs) clean.
        cluster.drop_first_assign_to.clear();
        cluster.kill(assignee.index());
        cluster.run(cluster.now + SimDuration::from_hours(3));
        assert_eq!(
            cluster.retransmits, 0,
            "peer-death must pre-empt the retransmit ladder"
        );
        assert!(cluster.lost.is_empty(), "lost: {:?}", cluster.lost);
        let finishers: Vec<NodeId> = cluster
            .completed
            .iter()
            .filter(|(j, _)| j.raw() == 1)
            .map(|&(_, on)| on)
            .collect();
        assert_eq!(finishers.len(), 1, "job 1 completes exactly once: {finishers:?}");
        assert_ne!(finishers[0], assignee);
    }
}
