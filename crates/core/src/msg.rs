//! The ARiA wire messages (Table I of the paper).

use aria_grid::{Cost, JobId, JobSpec};
use aria_metrics::TrafficClass;
use aria_overlay::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one flood (a REQUEST round or one INFORM advertisement).
///
/// The selective flooding protocol suppresses duplicates per flood: a
/// node processes each flood at most once. Retransmissions of a job's
/// REQUEST use a fresh flood id so the new round reaches nodes again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FloodId(pub u64);

impl fmt::Display for FloodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flood-{}", self.0)
    }
}

/// An ARiA protocol message.
///
/// Field layout follows Table I; `hops_left` and `flood` are transport
/// bookkeeping for the bounded selective flood (the paper's hop limits
/// live in the protocol configuration, §IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// REQUEST — `initiator address · job UUID · job profile`.
    ///
    /// Broadcast by a job's initiator to discover candidate executors.
    Request {
        /// The node the job was submitted to.
        initiator: NodeId,
        /// Full job description (requirements + ERT + deadline).
        job: JobSpec,
        /// Remaining hop budget.
        hops_left: u32,
        /// Flood this message belongs to.
        flood: FloodId,
    },
    /// ACCEPT — `node address · job UUID · cost`.
    ///
    /// A cost offer, sent to the initiator (REQUEST replies) or to the
    /// current assignee (INFORM replies).
    Accept {
        /// The offering node.
        from: NodeId,
        /// The job being bid on.
        job: JobId,
        /// The offered cost (lower is better).
        cost: Cost,
    },
    /// INFORM — `assignee address · job UUID · job profile · cost`.
    ///
    /// Rescheduling advertisement flooded by the job's current assignee.
    Inform {
        /// The node currently holding the job.
        assignee: NodeId,
        /// Full job description.
        job: JobSpec,
        /// The assignee's current cost for the job.
        cost: Cost,
        /// Remaining hop budget.
        hops_left: u32,
        /// Flood this message belongs to.
        flood: FloodId,
    },
    /// ASSIGN — `initiator address · job UUID · job profile`.
    ///
    /// Delegates a job to a node. Receivers may not decline (§III-A).
    Assign {
        /// The job's initiator (for tracking and failsafe mechanisms).
        initiator: NodeId,
        /// Full job description.
        job: JobSpec,
    },
}

impl Message {
    /// The traffic class of this message, for bandwidth accounting
    /// (REQUEST/INFORM/ASSIGN = 1 KiB, ACCEPT = 128 B; §V-E).
    pub fn traffic_class(&self) -> TrafficClass {
        match self {
            Message::Request { .. } => TrafficClass::Request,
            Message::Accept { .. } => TrafficClass::Accept,
            Message::Inform { .. } => TrafficClass::Inform,
            Message::Assign { .. } => TrafficClass::Assign,
        }
    }

    /// The job this message concerns.
    pub fn job_id(&self) -> JobId {
        match self {
            Message::Request { job, .. }
            | Message::Inform { job, .. }
            | Message::Assign { job, .. } => job.id,
            Message::Accept { job, .. } => *job,
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Request { initiator, job, hops_left, flood } => {
                write!(f, "REQUEST[{} from {initiator} ttl={hops_left} {flood}]", job.id)
            }
            Message::Accept { from, job, cost } => {
                write!(f, "ACCEPT[{job} from {from} cost={cost}]")
            }
            Message::Inform { assignee, job, cost, hops_left, flood } => {
                write!(f, "INFORM[{} held by {assignee} cost={cost} ttl={hops_left} {flood}]", job.id)
            }
            Message::Assign { initiator, job } => {
                write!(f, "ASSIGN[{} initiator={initiator}]", job.id)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_grid::{Architecture, JobRequirements, OperatingSystem};
    use aria_sim::SimDuration;

    fn job() -> JobSpec {
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        JobSpec::batch(JobId::new(5), req, SimDuration::from_hours(1))
    }

    #[test]
    fn traffic_classes_match_table() {
        let j = job();
        let request =
            Message::Request { initiator: NodeId::new(0), job: j, hops_left: 9, flood: FloodId(1) };
        let accept = Message::Accept {
            from: NodeId::new(1),
            job: j.id,
            cost: Cost::from_ettc(SimDuration::from_hours(1)),
        };
        let inform = Message::Inform {
            assignee: NodeId::new(2),
            job: j,
            cost: Cost::from_ettc(SimDuration::from_hours(2)),
            hops_left: 8,
            flood: FloodId(2),
        };
        let assign = Message::Assign { initiator: NodeId::new(0), job: j };
        assert_eq!(request.traffic_class(), TrafficClass::Request);
        assert_eq!(accept.traffic_class(), TrafficClass::Accept);
        assert_eq!(inform.traffic_class(), TrafficClass::Inform);
        assert_eq!(assign.traffic_class(), TrafficClass::Assign);
    }

    #[test]
    fn job_id_is_uniform_across_variants() {
        let j = job();
        let msgs = [
            Message::Request { initiator: NodeId::new(0), job: j, hops_left: 9, flood: FloodId(1) },
            Message::Accept { from: NodeId::new(1), job: j.id, cost: Cost::from_nal(-5) },
            Message::Inform {
                assignee: NodeId::new(2),
                job: j,
                cost: Cost::from_nal(-5),
                hops_left: 8,
                flood: FloodId(2),
            },
            Message::Assign { initiator: NodeId::new(0), job: j },
        ];
        for m in msgs {
            assert_eq!(m.job_id(), JobId::new(5));
        }
    }

    #[test]
    fn display_mentions_message_kind() {
        let j = job();
        let m = Message::Assign { initiator: NodeId::new(0), job: j };
        assert!(m.to_string().starts_with("ASSIGN["));
        assert!(FloodId(3).to_string().contains('3'));
    }
}
