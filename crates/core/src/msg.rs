//! The ARiA wire messages (Table I of the paper).

use aria_grid::{Cost, JobId};
use aria_metrics::TrafficClass;
use aria_overlay::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one flood (a REQUEST round or one INFORM advertisement).
///
/// The selective flooding protocol suppresses duplicates per flood: a
/// node processes each flood at most once. Retransmissions of a job's
/// REQUEST use a fresh flood id so the new round reaches nodes again.
///
/// Flood ids index the world's dense flood table and are recycled once a
/// flood's last in-flight message lands, so the id space stays as small
/// as the peak number of concurrent floods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FloodId(pub u32);

impl fmt::Display for FloodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flood-{}", self.0)
    }
}

/// An ARiA protocol message.
///
/// Field layout follows Table I; `hops_left` and `flood` are transport
/// bookkeeping for the bounded selective flood (the paper's hop limits
/// live in the protocol configuration, §IV-E).
///
/// On the wire the paper's REQUEST/INFORM/ASSIGN carry the full job
/// profile; the simulator interns each profile once in the world's job
/// table at submission and ships only the [`JobId`], so a forwarded flood
/// hop copies a handful of words instead of the whole spec. Traffic
/// accounting still charges the paper's full message sizes (§V-E).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// REQUEST — `initiator address · job UUID · job profile`.
    ///
    /// Broadcast by a job's initiator to discover candidate executors.
    Request {
        /// The node the job was submitted to.
        initiator: NodeId,
        /// The advertised job.
        job: JobId,
        /// Remaining hop budget.
        hops_left: u32,
        /// Flood this message belongs to.
        flood: FloodId,
    },
    /// ACCEPT — `node address · job UUID · cost`.
    ///
    /// A cost offer, sent to the initiator (REQUEST replies) or to the
    /// current assignee (INFORM replies).
    Accept {
        /// The offering node.
        from: NodeId,
        /// The job being bid on.
        job: JobId,
        /// The offered cost (lower is better).
        cost: Cost,
    },
    /// INFORM — `assignee address · job UUID · job profile · cost`.
    ///
    /// Rescheduling advertisement flooded by the job's current assignee.
    Inform {
        /// The node currently holding the job.
        assignee: NodeId,
        /// The advertised job.
        job: JobId,
        /// The assignee's current cost for the job.
        cost: Cost,
        /// Remaining hop budget.
        hops_left: u32,
        /// Flood this message belongs to.
        flood: FloodId,
    },
    /// ASSIGN — `initiator address · job UUID · job profile`.
    ///
    /// Delegates a job to a node. Receivers may not decline (§III-A).
    Assign {
        /// The job's initiator (for tracking and failsafe mechanisms).
        initiator: NodeId,
        /// The delegated job.
        job: JobId,
    },
    /// ACK — `node address · job UUID`.
    ///
    /// Delivery acknowledgement for an ASSIGN, sent by the assignee back
    /// to the assigner. Not part of the paper's Table I: on its reliable
    /// transport ASSIGNs cannot be lost, so ACKs are only emitted when a
    /// [`crate::fault::FaultPlan`] is active and the retransmit layer is
    /// armed.
    Ack {
        /// The acknowledging assignee.
        from: NodeId,
        /// The job whose ASSIGN landed.
        job: JobId,
    },
}

impl Message {
    /// The traffic class of this message, for bandwidth accounting
    /// (REQUEST/INFORM/ASSIGN = 1 KiB, ACCEPT = 128 B; §V-E). ACKs are
    /// tiny control replies and are charged like ACCEPTs.
    pub fn traffic_class(&self) -> TrafficClass {
        match self {
            Message::Request { .. } => TrafficClass::Request,
            Message::Accept { .. } | Message::Ack { .. } => TrafficClass::Accept,
            Message::Inform { .. } => TrafficClass::Inform,
            Message::Assign { .. } => TrafficClass::Assign,
        }
    }

    /// The job this message concerns.
    pub fn job_id(&self) -> JobId {
        match self {
            Message::Request { job, .. }
            | Message::Inform { job, .. }
            | Message::Assign { job, .. }
            | Message::Accept { job, .. }
            | Message::Ack { job, .. } => *job,
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Request { initiator, job, hops_left, flood } => {
                write!(f, "REQUEST[{job} from {initiator} ttl={hops_left} {flood}]")
            }
            Message::Accept { from, job, cost } => {
                write!(f, "ACCEPT[{job} from {from} cost={cost}]")
            }
            Message::Inform { assignee, job, cost, hops_left, flood } => {
                write!(f, "INFORM[{job} held by {assignee} cost={cost} ttl={hops_left} {flood}]")
            }
            Message::Assign { initiator, job } => {
                write!(f, "ASSIGN[{job} initiator={initiator}]")
            }
            Message::Ack { from, job } => {
                write!(f, "ACK[{job} from {from}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JOB: JobId = JobId::new(5);

    #[test]
    fn traffic_classes_match_table() {
        let request =
            Message::Request { initiator: NodeId::new(0), job: JOB, hops_left: 9, flood: FloodId(1) };
        let accept = Message::Accept {
            from: NodeId::new(1),
            job: JOB,
            cost: Cost::from_ettc(aria_sim::SimDuration::from_hours(1)),
        };
        let inform = Message::Inform {
            assignee: NodeId::new(2),
            job: JOB,
            cost: Cost::from_ettc(aria_sim::SimDuration::from_hours(2)),
            hops_left: 8,
            flood: FloodId(2),
        };
        let assign = Message::Assign { initiator: NodeId::new(0), job: JOB };
        let ack = Message::Ack { from: NodeId::new(3), job: JOB };
        assert_eq!(request.traffic_class(), TrafficClass::Request);
        assert_eq!(accept.traffic_class(), TrafficClass::Accept);
        assert_eq!(inform.traffic_class(), TrafficClass::Inform);
        assert_eq!(assign.traffic_class(), TrafficClass::Assign);
        // ACKs ride the small-control-message class.
        assert_eq!(ack.traffic_class(), TrafficClass::Accept);
    }

    #[test]
    fn job_id_is_uniform_across_variants() {
        let msgs = [
            Message::Request { initiator: NodeId::new(0), job: JOB, hops_left: 9, flood: FloodId(1) },
            Message::Accept { from: NodeId::new(1), job: JOB, cost: Cost::from_nal(-5) },
            Message::Inform {
                assignee: NodeId::new(2),
                job: JOB,
                cost: Cost::from_nal(-5),
                hops_left: 8,
                flood: FloodId(2),
            },
            Message::Assign { initiator: NodeId::new(0), job: JOB },
            Message::Ack { from: NodeId::new(3), job: JOB },
        ];
        for m in msgs {
            assert_eq!(m.job_id(), JOB);
        }
    }

    #[test]
    fn messages_stay_small() {
        // The point of interning job specs: a flood hop copies a few
        // words, not a whole profile.
        assert!(std::mem::size_of::<Message>() <= 32, "{}", std::mem::size_of::<Message>());
    }

    #[test]
    fn display_mentions_message_kind() {
        let m = Message::Assign { initiator: NodeId::new(0), job: JOB };
        assert!(m.to_string().starts_with("ASSIGN["));
        assert!(FloodId(3).to_string().contains('3'));
    }
}
