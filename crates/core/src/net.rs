//! The network model: every nondeterministic choice point of the
//! protocol's transport, behind one dispatch enum.
//!
//! The [`crate::World`] handlers never touch the RNG for transport
//! decisions directly; they ask the configured [`NetModel`] instead.
//! This is the seam the bounded model checker (`aria-model`) relies on:
//!
//! * [`NetModel::Sampled`] reproduces the paper's simulation bit-for-bit
//!   — random initiator placement, random fanout subsets and sampled
//!   link/reply latencies, drawing from the world RNG in exactly the
//!   call sequence the pre-refactor code used. The event queue's
//!   `(time, seq)` order then fixes one delivery ordering per seed.
//! * [`NetModel::Lockstep`] makes every choice a pure function of the
//!   state and zeroes all transport latencies, so a world stepped under
//!   it consumes **no RNG during delivery**. All remaining
//!   nondeterminism is the *order* in which pending messages and timers
//!   are acted on — which is exactly the axis the checker enumerates —
//!   and two independent deliveries commute at state level.

use aria_grid::JobId;
use aria_overlay::{LatencyModel, NodeId};
use aria_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Which network model resolves the protocol's transport choice points
/// (initiator placement, flood fanout sampling, latencies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum NetModel {
    /// The paper-faithful randomized transport (default everywhere).
    #[default]
    Sampled,
    /// Deterministic, zero-latency transport for exhaustive exploration:
    /// the initiator is `job id mod alive-count`, fanout picks the first
    /// `k` candidates, and every message is deliverable the instant it is
    /// sent.
    Lockstep,
}

impl NetModel {
    /// Picks the node a submitted job lands on, out of the alive
    /// candidates (non-empty, in ascending node order).
    pub(crate) fn pick_initiator(
        self,
        rng: &mut SimRng,
        candidates: &[NodeId],
        job: JobId,
    ) -> NodeId {
        match self {
            NetModel::Sampled => *rng.choose(candidates),
            NetModel::Lockstep => candidates[(job.raw() % candidates.len() as u64) as usize],
        }
    }

    /// Fills `picked` with up to `fanout` flood targets drawn from
    /// `candidates`.
    pub(crate) fn pick_targets(
        self,
        rng: &mut SimRng,
        candidates: &[NodeId],
        fanout: usize,
        picked: &mut Vec<NodeId>,
    ) {
        match self {
            NetModel::Sampled => rng.choose_multiple_into(candidates, fanout, picked),
            NetModel::Lockstep => {
                picked.clear();
                picked.extend_from_slice(&candidates[..fanout.min(candidates.len())]);
            }
        }
    }

    /// One-way latency of a flood hop along an overlay link whose
    /// modelled latency is `link`.
    pub(crate) fn flood_latency(self, link: SimDuration) -> SimDuration {
        match self {
            NetModel::Sampled => link,
            NetModel::Lockstep => SimDuration::ZERO,
        }
    }

    /// Latency of a routed point-to-point reply (ACCEPT/ASSIGN), timed
    /// as `reply_hops` sampled link traversals under [`NetModel::Sampled`].
    pub(crate) fn reply_latency(
        self,
        rng: &mut SimRng,
        latency: &LatencyModel,
        reply_hops: u32,
    ) -> SimDuration {
        match self {
            NetModel::Sampled => {
                let mut total = SimDuration::ZERO;
                for _ in 0..reply_hops {
                    total += latency.sample(rng);
                }
                total
            }
            NetModel::Lockstep => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn lockstep_draws_no_rng_and_is_a_pure_function() {
        let net = NetModel::Lockstep;
        let mut rng = SimRng::seed_from(1);
        let before = format!("{rng:?}");
        let candidates = nodes(5);

        assert_eq!(net.pick_initiator(&mut rng, &candidates, JobId::new(7)), NodeId::new(2));
        let mut picked = Vec::new();
        net.pick_targets(&mut rng, &candidates, 3, &mut picked);
        assert_eq!(picked, nodes(3));
        net.pick_targets(&mut rng, &candidates, 9, &mut picked);
        assert_eq!(picked, candidates, "fanout beyond the candidate count takes them all");
        assert_eq!(net.flood_latency(SimDuration::from_secs(3)), SimDuration::ZERO);
        assert_eq!(
            net.reply_latency(&mut rng, &LatencyModel::default(), 4),
            SimDuration::ZERO
        );
        assert_eq!(format!("{rng:?}"), before, "lockstep must not consume RNG");
    }

    #[test]
    fn sampled_matches_the_direct_rng_calls() {
        let net = NetModel::Sampled;
        let candidates = nodes(12);
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        assert_eq!(
            net.pick_initiator(&mut a, &candidates, JobId::new(0)),
            *b.choose(&candidates)
        );
        let (mut pa, mut pb) = (Vec::new(), Vec::new());
        net.pick_targets(&mut a, &candidates, 4, &mut pa);
        b.choose_multiple_into(&candidates, 4, &mut pb);
        assert_eq!(pa, pb);
        assert_eq!(net.flood_latency(SimDuration::from_millis(40)), SimDuration::from_millis(40));
        let model = LatencyModel::default();
        let lat = net.reply_latency(&mut a, &model, 4);
        let mut expect = SimDuration::ZERO;
        for _ in 0..4 {
            expect += model.sample(&mut b);
        }
        assert_eq!(lat, expect);
    }
}
