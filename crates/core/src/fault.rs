//! Deterministic transport fault injection.
//!
//! The paper's evaluation (§IV) assumes a reliable transport: the only
//! failure it injects is whole-node crashes with §III-D failsafe
//! recovery. [`FaultPlan`] adds the missing lossy-network dimension —
//! per-message loss, duplicate delivery, latency jitter and scheduled
//! overlay partitions — while keeping every schedule replayable:
//!
//! * All probabilistic draws come from a **dedicated fault RNG stream**
//!   forked from the world seed, so a fault schedule is a pure function
//!   of `(config, seed)` and never perturbs the protocol's own draws.
//! * [`FaultPlan::none`] (the default) is **bit-for-bit inert**: the
//!   world skips the fault path entirely (no RNG fork, no draws, no
//!   bookkeeping), so the determinism/invariant/probe goldens and the
//!   `bench_core` numbers are unchanged.
//! * Every fault that *fires* is assigned a sequential **injection
//!   index** and recorded in the world's fault log. The chaos harness
//!   (`cargo xtask chaos`) shrinks a failing schedule by re-running with
//!   a [`FaultPlan::keep`] allow-list: only the listed injection indices
//!   take effect, every other firing is vetoed after its RNG draw. Any
//!   subset is therefore itself a deterministic, replayable schedule.
//!
//! Partitions are modelled as a parity cut: while a
//! [`PartitionWindow`] is open, every message crossing between
//! even-index and odd-index nodes is dropped (and logged as a
//! [`FaultKind::Partition`] injection). The split is deterministic by
//! construction — no RNG is involved in *which* nodes separate, only
//! the window timing chosen by the plan author.

use aria_grid::JobId;
use aria_overlay::NodeId;
use aria_probe::MsgKind;
use aria_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A scheduled overlay partition: the parity cut opens at `start` and
/// heals `duration` later.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// When the cut opens.
    pub start: SimTime,
    /// How long it stays open.
    pub duration: SimDuration,
}

impl PartitionWindow {
    /// When the cut heals.
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// A replayable transport fault schedule (see the module docs).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-message loss probability in `[0, 1]`.
    pub loss: f64,
    /// Per-message duplicate-delivery probability in `[0, 1]`.
    pub duplicate: f64,
    /// Maximum extra per-message latency, drawn uniformly from
    /// `[0, jitter_ms]` milliseconds.
    pub jitter_ms: u64,
    /// Scheduled overlay partitions (parity cut, see module docs).
    pub partitions: Vec<PartitionWindow>,
    /// Shrinker allow-list: when `Some`, only the listed injection
    /// indices (sorted) take effect; every other firing is vetoed
    /// *after* its RNG draw, so the trajectory stays a deterministic
    /// function of `(config, seed, keep)`.
    pub keep: Option<Vec<u64>>,
}

impl FaultPlan {
    /// The reliable-transport plan: no faults, bit-for-bit identical to
    /// a world without the fault layer.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether this plan can inject anything at all. The world gates
    /// every fault-path branch (including the fault RNG fork) on this,
    /// which is what makes [`FaultPlan::none`] zero-overhead.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.loss > 0.0
            || self.duplicate > 0.0
            || self.jitter_ms > 0
            || !self.partitions.is_empty()
    }

    /// Whether the injection at `index` is allowed to take effect.
    #[must_use]
    pub fn keeps(&self, index: u64) -> bool {
        match &self.keep {
            None => true,
            Some(kept) => kept.binary_search(&index).is_ok(),
        }
    }

    /// Which side of the parity cut `node` is on.
    #[must_use]
    pub fn side(node: NodeId) -> bool {
        node.index() % 2 == 1
    }

    /// Whether a message from `from` to `to` crosses the cut.
    #[must_use]
    pub fn crosses_cut(from: NodeId, to: NodeId) -> bool {
        FaultPlan::side(from) != FaultPlan::side(to)
    }
}

/// What kind of fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The message was dropped by the lossy link.
    Loss,
    /// A second copy of the message was delivered.
    Duplicate,
    /// The message was dropped because it crossed an open partition cut.
    Partition,
}

impl FaultKind {
    /// Stable lower-case name (used in the chaos harness output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Loss => "loss",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Partition => "partition",
        }
    }
}

/// One fault that fired, as recorded in the world's fault log. The
/// chaos harness shrinks over the `index` values and prints the minimal
/// surviving list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRecord {
    /// Sequential injection index (the shrinker's handle).
    pub index: u64,
    /// What fired.
    pub kind: FaultKind,
    /// When it fired.
    pub at: SimTime,
    /// The message's destination node.
    pub to: NodeId,
    /// The message kind affected.
    pub msg: MsgKind,
    /// The job the message was about.
    pub job: JobId,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{index} {kind} {msg}[job {job:?}] -> {to:?} at {at}",
            index = self.index,
            kind = self.kind.name(),
            msg = self.msg.name(),
            job = self.job,
            to = self.to,
            at = self.at,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_default() {
        let plan = FaultPlan::none();
        assert_eq!(plan, FaultPlan::default());
        assert!(!plan.is_active());
        assert!(plan.keeps(0), "no allow-list means everything fires");
    }

    #[test]
    fn any_single_knob_activates_the_plan() {
        assert!(FaultPlan { loss: 0.1, ..FaultPlan::none() }.is_active());
        assert!(FaultPlan { duplicate: 0.1, ..FaultPlan::none() }.is_active());
        assert!(FaultPlan { jitter_ms: 5, ..FaultPlan::none() }.is_active());
        let window =
            PartitionWindow { start: SimTime::from_mins(1), duration: SimDuration::from_mins(2) };
        assert!(FaultPlan { partitions: vec![window], ..FaultPlan::none() }.is_active());
        assert_eq!(window.end(), SimTime::from_mins(3));
    }

    #[test]
    fn keep_list_vetoes_everything_not_listed() {
        let plan = FaultPlan { loss: 1.0, keep: Some(vec![2, 5]), ..FaultPlan::none() };
        assert!(!plan.keeps(0));
        assert!(plan.keeps(2));
        assert!(!plan.keeps(3));
        assert!(plan.keeps(5));
    }

    #[test]
    fn the_parity_cut_separates_even_from_odd() {
        let even = NodeId::new(4);
        let odd = NodeId::new(7);
        assert!(FaultPlan::crosses_cut(even, odd));
        assert!(!FaultPlan::crosses_cut(even, NodeId::new(0)));
        assert!(!FaultPlan::crosses_cut(odd, NodeId::new(1)));
    }
}
